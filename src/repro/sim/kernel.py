"""The simulation event loop.

:class:`Simulator` owns the clock and delegates the pending-event set
to a pluggable scheduler (see :mod:`repro.sim.scheduler`).  Events are
processed in (time, sequence) order, so two events scheduled for the
same instant run in the order they were scheduled — this makes every
simulation run fully deterministic regardless of which scheduler backs
the queue.
"""

from repro.sim.errors import SimulationError, StaleScheduleError
from repro.sim.events import Event, Timeout
from repro.sim.process import Process
from repro.sim.scheduler import CalendarScheduler


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock (seconds by convention
        throughout this repository).
    scheduler:
        Event-queue backend; defaults to a fresh
        :class:`~repro.sim.scheduler.CalendarScheduler`.  Pass a
        :class:`~repro.sim.scheduler.HeapScheduler` to reproduce the
        pre-calendar kernel (used by the P6 A/B benchmark).
    """

    __slots__ = ("_now", "_scheduler", "_active_process")

    def __init__(self, start_time=0.0, scheduler=None):
        self._now = float(start_time)
        self._scheduler = scheduler if scheduler is not None else CalendarScheduler()
        self._active_process = None

    @property
    def now(self):
        """Current simulated time, in seconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def processed_events(self):
        """Count of processed entries (for diagnostics and tests)."""
        return self._scheduler.processed

    @property
    def pending(self):
        """Count of live scheduled entries (cancelled ones excluded)."""
        return self._scheduler.pending

    # ------------------------------------------------------------------
    # Factory helpers
    # ------------------------------------------------------------------

    def event(self, name=None):
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay, value=None, daemon=False):
        """Create a :class:`Timeout` triggering ``delay`` seconds from now.

        ``daemon`` timeouts do not keep an unbounded ``run()`` alive —
        use them for background polling loops.
        """
        return Timeout(self, delay, value=value, daemon=daemon)

    def spawn(self, generator, name=None):
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Scheduling (kernel internal, used by events/processes)
    # ------------------------------------------------------------------

    def _push(self, delay, action, daemon=False):
        if delay < 0:
            raise StaleScheduleError(f"cannot schedule {delay} seconds in the past")
        return self._scheduler.push(self._now + delay, action, daemon)

    def _schedule_event(self, event, delay=0.0, daemon=False):
        """Queue a triggered event's callbacks to run after ``delay``.

        Returns the scheduler entry so the caller can lazily cancel it.
        """
        return self._push(delay, event._process, daemon=daemon)

    def _schedule_call(self, func, delay=0.0):
        """Queue a bare callable (used for process kick-off and resume)."""
        return self._push(delay, func)

    def _cancel_entry(self, entry):
        """Lazily cancel a scheduled entry (no-op once it has run)."""
        return self._scheduler.cancel(entry)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self):
        """Process the single next entry; returns False when empty."""
        entry = self._scheduler.pop()
        if entry is None:
            return False
        if entry.time < self._now:
            raise SimulationError("event queue corrupted: time went backwards")
        self._now = entry.time
        # Mark consumed so a late cancel() of this entry is a no-op.
        action, entry.action = entry.action, None
        action()
        return True

    def run(self, until=None):
        """Run the simulation.

        Parameters
        ----------
        until:
            If ``None``, run until no non-daemon events remain (daemon
            work — background pollers — never keeps the run alive).
            If a number, run until the clock reaches that time (events
            at exactly ``until`` are *not* processed; the clock is left
            at ``until``).  If an :class:`Event`, run until that event
            has triggered, and return its value (raising its exception
            if it failed).
        """
        if until is None:
            scheduler = self._scheduler
            while scheduler.nondaemon_pending > 0 and self.step():
                pass
            return None
        if isinstance(until, Event):
            return self._run_until_event(until)
        return self._run_until_time(float(until))

    def _run_until_time(self, deadline):
        if deadline < self._now:
            raise ValueError(f"cannot run until {deadline}; clock is at {self._now}")
        scheduler = self._scheduler
        while True:
            when = scheduler.peek_time()
            if when is None or when >= deadline:
                break
            self.step()
        self._now = deadline
        return None

    def _run_until_event(self, event):
        while not event.triggered:
            if not self.step():
                raise SimulationError(f"simulation ran out of events before {event!r} triggered")
        # Drain same-instant callbacks so observers see a settled state.
        while self._scheduler.peek_time() == self._now:
            self.step()
        if event.ok:
            return event.value
        raise event.value

    def run_process(self, generator, name=None):
        """Spawn ``generator`` and run until it finishes; return its value."""
        return self.run(self.spawn(generator, name=name))

    def __repr__(self):
        return f"<Simulator t={self._now:g} pending={self.pending}>"
