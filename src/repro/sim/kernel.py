"""The simulation event loop.

:class:`Simulator` owns the clock and the pending-event heap.  Events
are processed in (time, sequence) order, so two events scheduled for
the same instant run in the order they were scheduled — this makes
every simulation run fully deterministic.
"""

import heapq

from repro.sim.errors import SimulationError, StaleScheduleError
from repro.sim.events import Event, Timeout
from repro.sim.process import Process


class _HeapEntry:
    """Heap node ordered by (time, sequence number).

    ``daemon`` entries never keep the simulation alive: an unbounded
    ``run()`` stops once only daemon work remains (used by background
    pollers that would otherwise make run-to-completion diverge).
    """

    __slots__ = ("time", "seq", "action", "daemon")

    def __init__(self, time, seq, action, daemon=False):
        self.time = time
        self.seq = seq
        self.action = action
        self.daemon = daemon

    def __lt__(self, other):
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock (seconds by convention
        throughout this repository).
    """

    def __init__(self, start_time=0.0):
        self._now = float(start_time)
        self._heap = []
        self._seq = 0
        self._active_process = None
        self._processed_events = 0
        self._nondaemon_pending = 0

    @property
    def now(self):
        """Current simulated time, in seconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def processed_events(self):
        """Count of processed heap entries (for diagnostics and tests)."""
        return self._processed_events

    # ------------------------------------------------------------------
    # Factory helpers
    # ------------------------------------------------------------------

    def event(self, name=None):
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay, value=None, daemon=False):
        """Create a :class:`Timeout` triggering ``delay`` seconds from now.

        ``daemon`` timeouts do not keep an unbounded ``run()`` alive —
        use them for background polling loops.
        """
        return Timeout(self, delay, value=value, daemon=daemon)

    def spawn(self, generator, name=None):
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Scheduling (kernel internal, used by events/processes)
    # ------------------------------------------------------------------

    def _push(self, delay, action, daemon=False):
        if delay < 0:
            raise StaleScheduleError(f"cannot schedule {delay} seconds in the past")
        self._seq += 1
        heapq.heappush(self._heap, _HeapEntry(self._now + delay, self._seq, action, daemon))
        if not daemon:
            self._nondaemon_pending += 1

    def _schedule_event(self, event, delay=0.0, daemon=False):
        """Queue a triggered event's callbacks to run after ``delay``."""
        self._push(delay, event._process, daemon=daemon)

    def _schedule_call(self, func, delay=0.0):
        """Queue a bare callable (used for process kick-off and resume)."""
        self._push(delay, func)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self):
        """Process the single next heap entry; returns False when empty."""
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        if entry.time < self._now:
            raise SimulationError("event heap corrupted: time went backwards")
        self._now = entry.time
        self._processed_events += 1
        if not entry.daemon:
            self._nondaemon_pending -= 1
        entry.action()
        return True

    def run(self, until=None):
        """Run the simulation.

        Parameters
        ----------
        until:
            If ``None``, run until no non-daemon events remain (daemon
            work — background pollers — never keeps the run alive).
            If a number, run until the clock reaches that time (events
            at exactly ``until`` are *not* processed; the clock is left
            at ``until``).  If an :class:`Event`, run until that event
            has triggered, and return its value (raising its exception
            if it failed).
        """
        if until is None:
            while self._nondaemon_pending > 0 and self.step():
                pass
            return None
        if isinstance(until, Event):
            return self._run_until_event(until)
        return self._run_until_time(float(until))

    def _run_until_time(self, deadline):
        if deadline < self._now:
            raise ValueError(f"cannot run until {deadline}; clock is at {self._now}")
        while self._heap and self._heap[0].time < deadline:
            self.step()
        self._now = deadline
        return None

    def _run_until_event(self, event):
        while not event.triggered:
            if not self.step():
                raise SimulationError(f"simulation ran out of events before {event!r} triggered")
        # Drain same-instant callbacks so observers see a settled state.
        while self._heap and self._heap[0].time == self._now:
            self.step()
        if event.ok:
            return event.value
        raise event.value

    def run_process(self, generator, name=None):
        """Spawn ``generator`` and run until it finishes; return its value."""
        return self.run(self.spawn(generator, name=name))

    def __repr__(self):
        return f"<Simulator t={self._now:g} pending={len(self._heap)}>"
