"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on
by yielding it.  Events carry a value on success or an exception on
failure.  :class:`Timeout` is an event that the kernel triggers after a
fixed delay; :class:`AllOf` and :class:`AnyOf` compose events.
"""

from repro.sim.errors import EventAlreadyTriggered

_UNSET = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Events move through three states: *pending* (created, not yet
    triggered), *triggered* (``succeed``/``fail`` called, callbacks
    scheduled), and *processed* (callbacks have run).  A process waits
    on an event by yielding it; the kernel resumes the process with the
    event's value, or throws the event's exception into it.
    """

    __slots__ = ("_sim", "_name", "_callbacks", "_value", "_ok")

    def __init__(self, sim, name=None):
        self._sim = sim
        self._name = name
        self._callbacks = []
        self._value = _UNSET
        self._ok = None

    @property
    def sim(self):
        """The simulator this event belongs to."""
        return self._sim

    @property
    def triggered(self):
        """True once succeed() or fail() has been called."""
        return self._value is not _UNSET

    @property
    def ok(self):
        """True if the event succeeded, False if it failed, None if pending."""
        return self._ok

    @property
    def value(self):
        """The success value or failure exception; raises if pending."""
        if self._value is _UNSET:
            raise AttributeError("event has not been triggered")
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``.

        Returns the event itself so callers can write
        ``return event.succeed(x)``.
        """
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._sim._schedule_event(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception.

        The exception will be thrown into every process waiting on the
        event.  Returns the event itself.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self._sim._schedule_event(self)
        return self

    def add_callback(self, callback):
        """Register ``callback(event)`` to run when the event is processed.

        If the event has already been processed the callback is invoked
        via a zero-delay schedule so that callback ordering remains
        deterministic.
        """
        if self._callbacks is None:
            # Already processed: deliver asynchronously but immediately.
            self._sim._schedule_call(lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def _process(self):
        """Run and clear the callback list (kernel use only)."""
        callbacks, self._callbacks = self._callbacks, None
        for callback in callbacks:
            callback(self)

    def __repr__(self):
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        label = self._name or self.__class__.__name__
        return f"<{label} {state} at t={self._sim.now:g}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` time units.

    A ``daemon`` timeout does not keep an unbounded ``run()`` alive;
    background polling loops sleep on daemon timeouts so that the
    simulation can still run to completion.
    """

    __slots__ = ("_delay", "_handle")

    def __init__(self, sim, delay, value=None, daemon=False):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim, name=f"Timeout({delay:g})")
        self._delay = delay
        self._ok = True
        self._value = value
        self._handle = sim._schedule_event(self, delay=delay, daemon=daemon)

    @property
    def delay(self):
        """The delay this timeout was created with."""
        return self._delay

    def cancel(self):
        """Lazily cancel the pending trigger; returns True if it was live.

        A cancelled timeout never runs its callbacks and never keeps an
        unbounded ``run()`` alive.  Cancelling after the timeout has
        fired (or twice) is a harmless no-op — the kernel just skips
        the dead queue entry, so losers of ``AnyOf`` races can always
        be cancelled unconditionally.
        """
        handle = self._handle
        if handle is None:
            return False
        self._handle = None
        return self._sim._cancel_entry(handle)

    def succeed(self, value=None):
        raise EventAlreadyTriggered("Timeout triggers itself")

    def fail(self, exception):
        raise EventAlreadyTriggered("Timeout triggers itself")


class _ConditionEvent(Event):
    """Shared machinery for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim, events):
        super().__init__(sim, name=self.__class__.__name__)
        self._events = tuple(events)
        self._pending = len(self._events)
        if not self._events:
            self.succeed(self._result())
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _result(self):
        """Value the composite succeeds with; subclass hook."""
        raise NotImplementedError

    def _on_child(self, event):
        raise NotImplementedError


class AllOf(_ConditionEvent):
    """Succeeds when every child event has succeeded.

    The value is a dict mapping each child event to its value.  Fails
    with the first child failure.
    """

    __slots__ = ()

    def _result(self):
        return {event: event.value for event in self._events if event.ok}

    def _on_child(self, event):
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._result())


class AnyOf(_ConditionEvent):
    """Succeeds as soon as any child event succeeds.

    The value is a dict with the single triggering event and its value.
    Fails only if *all* children fail (with the last failure).
    """

    __slots__ = ()

    def _result(self):
        return {event: event.value for event in self._events if event.triggered and event.ok}

    def _on_child(self, event):
        if self.triggered:
            return
        if event.ok:
            self.succeed({event: event.value})
            return
        self._pending -= 1
        if self._pending == 0:
            self.fail(event.value)
