"""Pluggable event schedulers for the simulation kernel.

Two implementations share one interface (``push`` / ``pop`` /
``peek_time`` / ``cancel`` plus the ``processed`` / ``nondaemon_pending``
/ ``pending`` counters):

- :class:`CalendarScheduler` — the default.  A calendar queue keyed by
  *exact* event time: a dict maps each distinct instant to a FIFO
  bucket of entries, and a small binary heap of raw floats tracks the
  earliest instant.  Pushing to an instant that already has a bucket is
  a dict lookup plus a deque append — no heap traffic — which makes the
  dominant event classes (zero-delay process resumes, event callbacks,
  same-instant fan-out batches) O(1).  Only the *first* event at a new
  instant pays one heap operation, and that heap compares plain floats
  at C speed instead of calling a Python ``__lt__``.
- :class:`HeapScheduler` — the pre-calendar binary heap of
  ``(time, seq)``-ordered entries with a Python ``__lt__``.  Kept so the
  P6 benchmark can A/B identical workloads against the old kernel.

Ordering is identical between the two: entries at the same instant run
in the order they were scheduled.  The global sequence number only ever
increases, so appending to a per-instant FIFO bucket preserves the
(time, seq) tie-break exactly — chaos seeds depend on this.

Both schedulers support *lazy cancellation*: ``cancel(entry)`` marks the
entry dead in place (``action = None``) and fixes the non-daemon count
immediately; ``pop``/``peek_time`` skip dead entries without counting
them as processed.  Timeouts that lose a race (e.g. a request's guard
timeout when the reply wins) stop paying heap churn and stop keeping
``run()`` alive.
"""

import heapq
from collections import deque


class _Entry:
    """A scheduled action.  ``action is None`` marks a cancelled or
    already-consumed entry."""

    __slots__ = ("time", "seq", "action", "daemon")

    def __init__(self, time, seq, action, daemon):
        self.time = time
        self.seq = seq
        self.action = action
        self.daemon = daemon

    def __lt__(self, other):
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class CalendarScheduler:
    """Bucketed event scheduler with O(1) common-case push/pop.

    Invariant: a time appears in the ``_times`` heap exactly when its
    bucket exists in ``_buckets``, and exactly once.
    """

    __slots__ = ("_buckets", "_times", "_seq", "processed", "nondaemon_pending", "_live")

    def __init__(self):
        self._buckets = {}
        self._times = []
        self._seq = 0
        self.processed = 0
        self.nondaemon_pending = 0
        self._live = 0

    @property
    def pending(self):
        """Count of live (not cancelled, not yet popped) entries."""
        return self._live

    def push(self, time, action, daemon):
        """Schedule ``action`` at ``time``; returns a cancellable handle."""
        self._seq += 1
        entry = _Entry(time, self._seq, action, daemon)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = deque((entry,))
            heapq.heappush(self._times, time)
        else:
            bucket.append(entry)
        if not daemon:
            self.nondaemon_pending += 1
        self._live += 1
        return entry

    def cancel(self, entry):
        """Lazily cancel ``entry``; safe to call after it has run."""
        if entry.action is None:
            return False
        entry.action = None
        if not entry.daemon:
            self.nondaemon_pending -= 1
        self._live -= 1
        return True

    def _prune(self):
        """Drop cancelled heads / empty buckets; return the next live time."""
        times = self._times
        buckets = self._buckets
        while times:
            time = times[0]
            bucket = buckets[time]
            while bucket and bucket[0].action is None:
                bucket.popleft()
            if bucket:
                return time
            heapq.heappop(times)
            del buckets[time]
        return None

    def peek_time(self):
        """Time of the next live entry, or None when empty."""
        return self._prune()

    def pop(self):
        """Pop the next live entry (folding the bookkeeping), or None."""
        time = self._prune()
        if time is None:
            return None
        bucket = self._buckets[time]
        entry = bucket.popleft()
        if not bucket:
            heapq.heappop(self._times)
            del self._buckets[time]
        self.processed += 1
        if not entry.daemon:
            self.nondaemon_pending -= 1
        self._live -= 1
        return entry


class HeapScheduler:
    """The pre-calendar binary-heap scheduler (kept for A/B benchmarks).

    Every push/pop walks the heap comparing ``_Entry`` objects via a
    Python-level ``__lt__`` — ~log2(N) method calls per operation, which
    is exactly the churn the calendar queue removes.
    """

    __slots__ = ("_heap", "_seq", "processed", "nondaemon_pending", "_live")

    def __init__(self):
        self._heap = []
        self._seq = 0
        self.processed = 0
        self.nondaemon_pending = 0
        self._live = 0

    @property
    def pending(self):
        return self._live

    def push(self, time, action, daemon):
        self._seq += 1
        entry = _Entry(time, self._seq, action, daemon)
        heapq.heappush(self._heap, entry)
        if not daemon:
            self.nondaemon_pending += 1
        self._live += 1
        return entry

    def cancel(self, entry):
        if entry.action is None:
            return False
        entry.action = None
        if not entry.daemon:
            self.nondaemon_pending -= 1
        self._live -= 1
        return True

    def peek_time(self):
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry.action is not None:
                return entry.time
            heapq.heappop(heap)
        return None

    def pop(self):
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry.action is None:
                continue
            self.processed += 1
            if not entry.daemon:
                self.nondaemon_pending -= 1
            self._live -= 1
            return entry
        return None
