"""Exception types raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for all errors raised by the simulation kernel."""


class StopProcess(SimulationError):
    """Raised inside a process generator to terminate it early.

    Returning from the generator is the normal way to finish; raising
    ``StopProcess(value)`` is equivalent to ``return value`` but can be
    raised from helper functions called by the process body.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(SimulationError):
    """Thrown into a process that another process interrupted.

    The interrupted process receives this exception at its current
    ``yield`` statement.  ``cause`` carries whatever object the
    interrupter supplied (often a reason string).
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class EventAlreadyTriggered(SimulationError):
    """Raised when succeed()/fail() is called on a triggered event."""


class StaleScheduleError(SimulationError):
    """Raised when an event is scheduled in the past."""
