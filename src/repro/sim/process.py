"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  The generator models a
thread of control: each ``yield event`` suspends the process until the
event triggers, at which point the kernel resumes the generator with
the event's value (or throws its exception).  A process is itself an
:class:`~repro.sim.events.Event` that triggers when the generator
finishes, so processes can be joined by yielding them.
"""

from repro.sim.errors import Interrupt, StopProcess
from repro.sim.events import Event


class Process(Event):
    """A simulated thread of control driven by a generator.

    Do not instantiate directly; use :meth:`Simulator.spawn`.

    The wrapped generator may yield:

    - any :class:`Event` (including :class:`Timeout` and other
      processes) — the process suspends until the event triggers;
    - ``None`` — the process is rescheduled at the current time after
      other pending events (a cooperative yield).

    The process-as-event succeeds with the generator's return value,
    or fails with any exception the generator raises.
    """

    __slots__ = ("_generator", "_waiting_on", "_interrupts")

    def __init__(self, sim, generator, name=None):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on = None
        self._interrupts = []
        # Kick off the generator at the current simulated time.
        sim._schedule_call(self._resume_first)

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def waiting_on(self):
        """The event this process is currently suspended on, if any."""
        return self._waiting_on

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at its next resume.

        Interrupting a finished process is an error; interrupting a
        process multiple times queues the interrupts in order.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self!r}")
        if self is self._sim.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        self._interrupts.append(Interrupt(cause))
        self._sim._schedule_call(self._deliver_interrupt)

    def _deliver_interrupt(self):
        if not self._interrupts or not self.is_alive:
            return
        interrupt = self._interrupts.pop(0)
        # Detach from whatever we were waiting on; the event may still
        # trigger later, in which case _on_event finds us detached.
        self._waiting_on = None
        self._step(interrupt, throw=True)

    def _resume_first(self):
        self._step(None)

    def _on_event(self, event):
        if self._waiting_on is not event:
            # We were interrupted away from this event; ignore it.
            return
        self._waiting_on = None
        if event.ok:
            self._step(event.value)
        else:
            self._step(event.value, throw=True)

    def _step(self, value, throw=False):
        """Advance the generator one yield and act on what it produces."""
        self._sim._active_process = self
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self.fail(exc)
            return
        finally:
            self._sim._active_process = None
        self._wait_for(target)

    def _wait_for(self, target):
        if target is None:
            # Cooperative yield: resume after currently-queued events.
            self._sim._schedule_call(lambda: self._step(None))
            return
        if isinstance(target, Event):
            if target.sim is not self._sim:
                self._step(
                    RuntimeError("cannot wait on an event from another simulator"),
                    throw=True,
                )
                return
            self._waiting_on = target
            target.add_callback(self._on_event)
            return
        self._step(
            TypeError(f"process yielded {target!r}; expected an Event or None"),
            throw=True,
        )
