"""Deterministic discrete-event simulation kernel.

This package provides the substrate on which the rest of the
reproduction runs: a simulated clock, generator-based processes, and
the synchronization primitives (events, timeouts, queues, semaphores)
that the network, cluster, and Legion layers are built from.

The kernel is intentionally small and self-contained (the environment
has no simpy), but follows the same shape: a :class:`Simulator` owns a
priority queue of scheduled events; a :class:`Process` wraps a Python
generator that yields events and is resumed when they trigger.

Example
-------
>>> from repro.sim import Simulator, Timeout
>>> sim = Simulator()
>>> def hello(sim, log):
...     yield sim.timeout(5.0)
...     log.append(sim.now)
>>> log = []
>>> _ = sim.spawn(hello(sim, log))
>>> sim.run()
>>> log
[5.0]
"""

from repro.sim.errors import (
    Interrupt,
    SimulationError,
    StopProcess,
)
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.scheduler import CalendarScheduler, HeapScheduler
from repro.sim.primitives import (
    Queue,
    QueueEmpty,
    QueueFull,
    Semaphore,
    Signal,
)
from repro.sim.rng import DeterministicRNG

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarScheduler",
    "DeterministicRNG",
    "Event",
    "HeapScheduler",
    "Interrupt",
    "Process",
    "Queue",
    "QueueEmpty",
    "QueueFull",
    "Semaphore",
    "Signal",
    "SimulationError",
    "Simulator",
    "StopProcess",
    "Timeout",
]
