"""Deterministic random number generation for simulations.

All stochastic behaviour in the reproduction (jitter on calibrated
costs, workload generation, fault injection) draws from a
:class:`DeterministicRNG` so that a run is reproducible from its seed.
Separate named streams keep one subsystem's draws from perturbing
another's, which keeps experiments comparable when a single component
changes.
"""

import random


class DeterministicRNG:
    """A seeded RNG with independent named sub-streams.

    >>> rng = DeterministicRNG(seed=7)
    >>> a = rng.stream("network")
    >>> b = rng.stream("network")
    >>> a is b
    True
    """

    def __init__(self, seed=0):
        self._seed = seed
        self._streams = {}

    @property
    def seed(self):
        """The root seed this RNG was built from."""
        return self._seed

    def stream(self, name):
        """Return (creating if needed) the named sub-stream.

        Each stream is a :class:`random.Random` seeded from the root
        seed and the stream name, so the same (seed, name) pair always
        yields the same sequence regardless of creation order.
        """
        if name not in self._streams:
            self._streams[name] = random.Random(f"{self._seed}:{name}")
        return self._streams[name]

    def uniform(self, name, low, high):
        """Draw uniformly from [low, high] on the named stream."""
        return self.stream(name).uniform(low, high)

    def jitter(self, name, value, fraction):
        """Return ``value`` perturbed by up to ±``fraction`` of itself.

        Used to give calibrated costs the small run-to-run variation
        the paper's ranges (e.g. "10 to 15 microseconds") reflect.
        """
        if not 0 <= fraction < 1:
            raise ValueError(f"fraction must be in [0, 1), got {fraction}")
        return value * (1.0 + self.stream(name).uniform(-fraction, fraction))

    def choice(self, name, seq):
        """Pick one element of ``seq`` on the named stream."""
        return self.stream(name).choice(seq)

    def expovariate(self, name, rate):
        """Draw an exponential inter-arrival time on the named stream."""
        return self.stream(name).expovariate(rate)
