"""Synchronization primitives built on events.

These are the building blocks used by the network and object layers:

- :class:`Queue` — FIFO message queue with optional capacity; the
  universal mailbox primitive.
- :class:`Semaphore` — counting semaphore, used to model exclusive or
  limited resources (CPUs, links).
- :class:`Signal` — broadcast condition: many waiters, one trigger,
  automatically re-armed.
"""

from collections import deque

from repro.sim.errors import SimulationError


class QueueFull(SimulationError):
    """Raised by :meth:`Queue.put_nowait` when the queue is at capacity."""


class QueueEmpty(SimulationError):
    """Raised by :meth:`Queue.get_nowait` when the queue is empty."""


class Queue:
    """A FIFO queue of items with event-based blocking get/put.

    ``get()`` and ``put()`` return events to be yielded from a process;
    ``get_nowait()`` / ``put_nowait()`` are the immediate variants.

    Parameters
    ----------
    sim:
        The owning simulator.
    capacity:
        Maximum number of queued items, or ``None`` for unbounded.
    """

    __slots__ = ("_sim", "_capacity", "_name", "_items", "_getters", "_putters")

    def __init__(self, sim, capacity=None, name=None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._sim = sim
        self._capacity = capacity
        self._name = name or "queue"
        self._items = deque()
        self._getters = deque()
        self._putters = deque()

    def __len__(self):
        return len(self._items)

    @property
    def capacity(self):
        """Maximum queue length, or None if unbounded."""
        return self._capacity

    @property
    def is_full(self):
        """True when a put_nowait() would raise QueueFull."""
        return self._capacity is not None and len(self._items) >= self._capacity

    def put(self, item):
        """Return an event that triggers once ``item`` is enqueued."""
        event = self._sim.event(name=f"{self._name}.put")
        if not self.is_full:
            self._enqueue(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def put_nowait(self, item):
        """Enqueue ``item`` immediately or raise :class:`QueueFull`."""
        if self.is_full:
            raise QueueFull(f"{self._name} is at capacity {self._capacity}")
        self._enqueue(item)

    def get(self):
        """Return an event that succeeds with the next item."""
        event = self._sim.event(name=f"{self._name}.get")
        if self._items:
            event.succeed(self._dequeue())
        else:
            self._getters.append(event)
        return event

    def get_nowait(self):
        """Dequeue immediately or raise :class:`QueueEmpty`."""
        if not self._items:
            raise QueueEmpty(f"{self._name} is empty")
        return self._dequeue()

    def _enqueue(self, item):
        if self._getters:
            # Hand the item straight to the longest-waiting getter.
            self._getters.popleft().succeed(item)
            return
        self._items.append(item)

    def _dequeue(self):
        item = self._items.popleft()
        # Space freed: admit the longest-waiting putter, if any.
        if self._putters and not self.is_full:
            putter, pending_item = self._putters.popleft()
            self._items.append(pending_item)
            putter.succeed()
        return item

    def __repr__(self):
        return f"<Queue {self._name} len={len(self._items)} cap={self._capacity}>"


class Semaphore:
    """A counting semaphore.

    ``acquire()`` returns an event that succeeds when a permit is
    available; ``release()`` returns a permit.  Used with capacity 1 it
    is a mutex, which is how per-link serialization (bandwidth) and
    per-host CPU occupancy are modeled.
    """

    __slots__ = ("_sim", "_permits", "_capacity", "_name", "_waiters")

    def __init__(self, sim, permits=1, name=None):
        if permits < 1:
            raise ValueError(f"permits must be >= 1, got {permits}")
        self._sim = sim
        self._permits = permits
        self._capacity = permits
        self._name = name or "semaphore"
        self._waiters = deque()

    @property
    def available(self):
        """Number of free permits."""
        return self._permits

    @property
    def capacity(self):
        """Total permits."""
        return self._capacity

    def acquire(self):
        """Return an event that succeeds once a permit is held."""
        event = self._sim.event(name=f"{self._name}.acquire")
        if self._permits > 0:
            self._permits -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self):
        """Return a permit, waking the longest waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed()
            return
        if self._permits >= self._capacity:
            raise SimulationError(f"{self._name} released more than acquired")
        self._permits += 1

    def held(self):
        """Context-manager-style helper as a generator.

        Usage inside a process::

            yield from semaphore.held()(critical_section())
        """
        semaphore = self

        def runner(body):
            yield semaphore.acquire()
            try:
                result = yield from body
            finally:
                semaphore.release()
            return result

        return runner

    def __repr__(self):
        return f"<Semaphore {self._name} {self._permits}/{self._capacity}>"


class Signal:
    """A broadcast condition variable.

    ``wait()`` returns an event; ``fire(value)`` triggers every waiting
    event with ``value`` and re-arms, so the signal can fire repeatedly.
    """

    __slots__ = ("_sim", "_name", "_waiters", "_fire_count")

    def __init__(self, sim, name=None):
        self._sim = sim
        self._name = name or "signal"
        self._waiters = []
        self._fire_count = 0

    @property
    def fire_count(self):
        """How many times the signal has fired."""
        return self._fire_count

    def wait(self):
        """Return an event that succeeds at the next :meth:`fire`."""
        event = self._sim.event(name=f"{self._name}.wait")
        self._waiters.append(event)
        return event

    def fire(self, value=None):
        """Wake every current waiter with ``value``."""
        self._fire_count += 1
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)

    def __repr__(self):
        return f"<Signal {self._name} waiters={len(self._waiters)}>"
