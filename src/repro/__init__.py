"""Reproduction of "Dynamically Configurable Distributed Objects"
(Michael J. Lewis, PODC 1999).

The package implements the paper's DCDO model — DCDOs, DCDO Managers,
and Implementation Component Objects — on top of a simulated
Legion-like wide-area distributed object system:

- :mod:`repro.sim` — deterministic discrete-event simulation kernel;
- :mod:`repro.net` — switched-LAN network model with fault injection;
- :mod:`repro.cluster` — hosts, vaults, caches, calibrated cost model;
- :mod:`repro.legion` — the Legion substrate (LOIDs, naming, binding,
  RPC, class objects, implementation downloads);
- :mod:`repro.core` — the DCDO model itself (the contribution);
- :mod:`repro.baseline` — normal (monolithic) Legion object evolution,
  the paper's comparator;
- :mod:`repro.workloads` — synthetic workload generators;
- :mod:`repro.bench` — the experiment harness regenerating §4.

Quickstart::

    from repro import build_dcdo_system

    runtime = build_dcdo_system(hosts=4, seed=42)
    # see examples/quickstart.py for a full tour
"""

from repro.cluster import Calibration, build_centurion, build_lan
from repro.core import (
    DCDO,
    ComponentBuilder,
    DCDOManager,
    Dependency,
    Marking,
    RemovePolicy,
    VersionId,
)
from repro.legion import Implementation, LegionRuntime

__version__ = "0.1.0"

__all__ = [
    "Calibration",
    "ComponentBuilder",
    "DCDO",
    "DCDOManager",
    "Dependency",
    "Implementation",
    "LegionRuntime",
    "Marking",
    "RemovePolicy",
    "VersionId",
    "build_centurion",
    "build_dcdo_system",
    "build_lan",
]


def build_dcdo_system(hosts=4, seed=0, calibration=None):
    """Build a ready-to-use runtime on a fresh simulated LAN.

    Convenience entry point for examples and quick experiments;
    returns a :class:`~repro.legion.runtime.LegionRuntime`.
    """
    return LegionRuntime(build_lan(hosts, seed=seed, calibration=calibration))
