"""Result containers and table formatting for experiments."""

from dataclasses import dataclass, field


@dataclass
class Row:
    """One table row: a metric with its paper and measured values.

    ``paper`` is the value (or range string) the paper reports;
    ``measured`` is this reproduction's number.  ``ok`` records whether
    the measured value satisfies the row's acceptance predicate — the
    *shape* check, not an absolute-value match.
    """

    label: str
    paper: str
    measured: str
    unit: str = ""
    ok: bool = True

    def as_tuple(self):
        """(label, paper, measured, unit, ok) for programmatic use."""
        return (self.label, self.paper, self.measured, self.unit, self.ok)


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    rows: list = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def add(self, label, paper, measured, unit="", ok=True):
        """Append a row; returns it for chaining."""
        row = Row(label=label, paper=paper, measured=measured, unit=unit, ok=ok)
        self.rows.append(row)
        return row

    @property
    def all_ok(self):
        """True when every row's shape check passed."""
        return all(row.ok for row in self.rows)

    def failures(self):
        """Rows whose shape check failed."""
        return [row for row in self.rows if not row.ok]


def format_table(result):
    """Render an :class:`ExperimentResult` as a fixed-width text table."""
    headers = ("metric", "paper", "measured", "unit", "ok")
    cells = [headers] + [
        (row.label, row.paper, row.measured, row.unit, "yes" if row.ok else "NO")
        for row in result.rows
    ]
    widths = [max(len(line[i]) for line in cells) for i in range(len(headers))]

    def render(line):
        return "  ".join(text.ljust(width) for text, width in zip(line, widths)).rstrip()

    separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [f"{result.experiment_id}: {result.title}", separator, render(headers), separator]
    out.extend(render(line) for line in cells[1:])
    out.append(separator)
    return "\n".join(out)


def seconds(value, digits=3):
    """Format a seconds value compactly."""
    return f"{value:.{digits}f}"


def micros(value_s, digits=1):
    """Format a seconds value in microseconds."""
    return f"{value_s * 1e6:.{digits}f}"


def millis(value_s, digits=2):
    """Format a seconds value in milliseconds."""
    return f"{value_s * 1e3:.{digits}f}"
