"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.bench list
    python -m repro.bench run E1 E4          # print paper-vs-measured tables
    python -m repro.bench run all
    python -m repro.bench figures --out data # write one CSV per figure
    python -m repro.bench figures fig-e5     # print a single figure's CSV

Exit status is non-zero if any shape check fails, so the harness can
gate CI.
"""

import argparse
import pathlib
import sys

from repro.bench.experiments import (
    run_a2,
    run_a3,
    run_a4,
    run_e1,
    run_e2,
    run_e3,
    run_e4,
    run_e5,
    run_e6,
    run_e7,
)
from repro.bench.figures import FIGURES, render_csv
from repro.bench.harness import format_table

EXPERIMENTS = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "A2": run_a2,
    "A3": run_a3,
    "A4": run_a4,
}


def cmd_list(args):
    print("experiments:", " ".join(EXPERIMENTS))
    print("figures:    ", " ".join(FIGURES))
    return 0


def cmd_run(args):
    names = list(EXPERIMENTS) if "all" in args.ids else args.ids
    failed = False
    for name in names:
        runner = EXPERIMENTS.get(name.upper())
        if runner is None:
            print(f"unknown experiment {name!r}; try: {' '.join(EXPERIMENTS)}")
            return 2
        result = runner(seed=args.seed)
        print(format_table(result))
        print()
        failed = failed or not result.all_ok
    return 1 if failed else 0


def cmd_figures(args):
    names = list(FIGURES) if not args.ids or "all" in args.ids else args.ids
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        generator = FIGURES.get(name.lower())
        if generator is None:
            print(f"unknown figure {name!r}; try: {' '.join(FIGURES)}")
            return 2
        header, rows = generator(seed=args.seed)
        csv_text = render_csv(header, rows)
        if out_dir:
            path = out_dir / f"{name}.csv"
            path.write_text(csv_text)
            print(f"wrote {path} ({len(rows)} rows)")
        else:
            print(f"# {name}")
            print(csv_text)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment and figure ids")

    run_parser = sub.add_parser("run", help="run experiments, print tables")
    run_parser.add_argument("ids", nargs="+", help="experiment ids, or 'all'")

    figures_parser = sub.add_parser("figures", help="emit figure CSV series")
    figures_parser.add_argument("ids", nargs="*", help="figure ids (default: all)")
    figures_parser.add_argument("--out", help="directory to write CSVs into")

    args = parser.parse_args(argv)
    handlers = {"list": cmd_list, "run": cmd_run, "figures": cmd_figures}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
