"""Figure-series generation: CSV data behind each figure-style result.

The paper's §4 summary reports point values; the underlying study's
figures are curves (creation time vs component count, download time vs
size, ...).  Each function here runs the corresponding experiment and
returns the series as (header, rows); :func:`render_csv` turns that
into CSV text for plotting.
"""

from repro.bench.experiments import run_a2, run_e2, run_e3, run_e5, run_e6


def render_csv(header, rows):
    """Render a (header, rows) series as CSV text."""

    def cell(value):
        text = f"{value:.9g}" if isinstance(value, float) else str(value)
        return f'"{text}"' if "," in text else text

    lines = [",".join(header)]
    lines.extend(",".join(cell(value) for value in row) for row in rows)
    return "\n".join(lines) + "\n"


def figure_e2_rtt_vs_size(seed=0):
    """Round-trip time vs implementation size: two flat series."""
    result = run_e2(seed=seed)
    rows = []
    for functions, components, rtt_ms in result.extra["dcdo_rtts_ms"]:
        rows.append((functions, components, "dcdo", rtt_ms))
    for functions, rtt_ms in result.extra["mono_rtts_ms"]:
        rows.append((functions, 1, "monolithic", rtt_ms))
    rows.sort(key=lambda row: (row[2], row[0]))
    return ("functions", "components", "kind", "rtt_ms"), rows


def figure_e3_creation_vs_components(seed=0):
    """Creation time vs component count, with the monolithic floor."""
    result = run_e3(seed=seed)
    rows = [(0, "monolithic", result.extra["monolithic_s"])]
    for components, elapsed in sorted(result.extra["dcdo_s"].items()):
        rows.append((components, "dcdo", elapsed))
    return ("components", "kind", "creation_s"), rows


def figure_e5_download_vs_size(seed=0):
    """Download time vs implementation size."""
    result = run_e5(seed=seed)
    rows = sorted(
        (int(size), elapsed) for size, elapsed in result.extra["measured_s"].items()
    )
    return ("size_bytes", "download_s"), rows


def figure_e6_evolution_curves(seed=0):
    """Two curves: cached batch totals and uncached size sweep."""
    result = run_e6(seed=seed)
    rows = []
    for batch, total in sorted(
        (int(k), v) for k, v in result.extra["cached_batch_totals_s"].items()
    ):
        rows.append(("cached-batch", batch, total))
    for size, total in sorted(
        (int(k), v) for k, v in result.extra["uncached_s"].items()
    ):
        rows.append(("uncached-size", size, total))
    return ("series", "x", "evolution_s"), rows


def figure_a2_policy_costs(seed=0):
    """Per-policy cut latency and steady-state call latency."""
    result = run_a2(seed=seed)
    rows = []
    for name, data in sorted(result.extra.items()):
        rows.append((name, data["cut_latency_s"], data["steady_latency_s"]))
    return ("policy", "cut_latency_s", "steady_call_latency_s"), rows


#: Figure id -> generator, for the CLI.
FIGURES = {
    "fig-e2": figure_e2_rtt_vs_size,
    "fig-e3": figure_e3_creation_vs_components,
    "fig-e5": figure_e5_download_vs_size,
    "fig-e6": figure_e6_evolution_curves,
    "fig-a2": figure_a2_policy_costs,
}
