"""P4 — manager availability: hot takeover vs restart-and-recover.

The paper's manager is a single point of configuration authority: when
its host dies, evolution stalls until someone restarts the host and
replays the journal.  PR 5's availability stack (heartbeat failure
detector + hot-standby journal shipping + fenced supervisor promotion)
turns that into an automatic takeover.  This experiment measures what
that buys:

- **MTTR sweep** — one fleet per heartbeat interval; the primary's
  host is crashed mid-wave and the time until the supervisor's
  promoted standby is serving again is measured.  Detection dominates:
  MTTR tracks ``suspicion_threshold x interval``, far below any
  restart path.
- **Baseline** — the same crash with no supervisor: the host restarts
  after a typical 30 s and auto-recovery replays the journal.  The
  takeover MTTR must be well under this.
- **Split brain** — the primary is partitioned (not crashed) mid-wave;
  after the standby is promoted, the old primary's surviving traffic
  must be rejected by term fencing (``manager.stale_term_rejections``)
  and nothing may be applied twice.
"""

from repro.bench.harness import ExperimentResult, seconds
from repro.cluster import Supervisor, build_lan
from repro.cluster.chaos import ChaosCoordinator
from repro.core import ManagerJournal
from repro.core.policies import ReliableUpdatePolicy
from repro.legion import LegionRuntime
from repro.net import PrefixPartition, RetryPolicy
from repro.workloads import build_component_version, make_noop_manager, synthetic_components

#: Heartbeat intervals swept for the takeover-MTTR curve.
INTERVALS = (0.25, 0.5, 1.0, 2.0)
#: Probes missed before suspicion (detector default).
SUSPICION_THRESHOLD = 3
#: The no-supervisor comparison: a typical operator-less host restart.
RESTART_DELAY_S = 30.0
INSTANCES = 4
MANAGER_HOST = "host00"
STANDBY_HOSTS = ("host02", "host03")
DETECTOR_HOST = "host04"

FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)


def _build_fleet(seed, type_name):
    """Journaled 4-instance no-op fleet with a v2 upgrade staged."""
    runtime = LegionRuntime(build_lan(6, seed=seed))
    journal = ManagerJournal(name=type_name)
    manager, __ = make_noop_manager(
        runtime,
        type_name,
        component_count=2,
        functions_per_component=2,
        journal=journal,
        host_name=MANAGER_HOST,
        propagation_retry_policy=FAST_RETRY,
        update_policy=ReliableUpdatePolicy(retry_policy=FAST_RETRY),
    )
    loids = []
    for index in range(INSTANCES):
        loid = runtime.sim.run_process(
            manager.create_instance(host_name=f"host{index + 1:02d}")
        )
        loids.append(loid)
    upgrade = synthetic_components(1, 2, prefix=f"{type_name.lower()}-up")
    v2 = build_component_version(manager, upgrade)
    manager.mark_instantiable(v2)
    return runtime, manager, journal, loids, v2


def _await_converged(runtime, loids, v2, authority, deadline_s=300.0):
    """Generator: poll until every instance is live at ``v2``."""
    deadline = runtime.sim.now + deadline_s
    while runtime.sim.now < deadline:
        manager = authority()
        if (
            manager is not None
            and manager.is_active
            and all(
                manager.record(loid).active
                and manager.record(loid).obj.version == v2
                for loid in loids
            )
        ):
            return runtime.sim.now
        yield runtime.sim.timeout(1.0)
    return None


def _measure_takeover(seed, interval):
    """Crash the primary mid-wave under a supervisor; return timings."""
    runtime, manager, journal, loids, v2 = _build_fleet(
        seed, f"P4Hot{int(interval * 100)}"
    )
    supervisor = Supervisor(
        runtime,
        manager.type_name,
        standby_hosts=STANDBY_HOSTS,
        detector_host_name=DETECTOR_HOST,
        heartbeat_interval_s=interval,
        heartbeat_timeout_s=min(0.4, interval * 0.8),
        suspicion_threshold=SUSPICION_THRESHOLD,
        retry_policy=FAST_RETRY,
    ).start()
    coordinator = ChaosCoordinator(runtime, journals={})
    crash_at = runtime.sim.now + 2.0
    coordinator.crash_plan.schedule_outage(
        runtime.host(MANAGER_HOST), crash_at, crash_at + 120.0
    )
    timings = {}

    def scenario():
        # Fire the wave just before the crash so it dies mid-flight.
        yield runtime.sim.timeout(crash_at - 0.03 - runtime.sim.now)
        manager.set_current_version_async(v2)
        converged_at = yield from _await_converged(
            runtime, loids, v2, lambda: supervisor.manager
        )
        timings["converged_s"] = (
            converged_at - crash_at if converged_at is not None else None
        )
        supervisor.stop()

    runtime.sim.run_process(scenario())
    runtime.sim.run()
    assert supervisor.promotions >= 1, "supervisor never promoted"
    assert timings["converged_s"] is not None, "fleet never converged"
    promoted_at = supervisor.takeover_log[0][0]
    timings["mttr_s"] = promoted_at - crash_at
    timings["promotions"] = supervisor.promotions
    return timings


def _measure_baseline(seed):
    """The same crash with no supervisor: restart + journal replay."""
    runtime, manager, journal, loids, v2 = _build_fleet(seed, "P4Cold")
    type_name = manager.type_name
    coordinator = ChaosCoordinator(runtime, journals={type_name: journal})
    crash_at = runtime.sim.now + 2.0
    coordinator.crash_plan.schedule_outage(
        runtime.host(MANAGER_HOST), crash_at, crash_at + RESTART_DELAY_S
    )
    timings = {}

    def authority():
        try:
            return runtime.class_of(type_name)
        except Exception:
            return None

    def scenario():
        yield runtime.sim.timeout(crash_at - 0.03 - runtime.sim.now)
        manager.set_current_version_async(v2)
        converged_at = yield from _await_converged(runtime, loids, v2, authority)
        timings["converged_s"] = (
            converged_at - crash_at if converged_at is not None else None
        )

    runtime.sim.run_process(scenario())
    runtime.sim.run()
    assert timings["converged_s"] is not None, "baseline never converged"
    recovered = [
        at for at, kind, name in coordinator.recovery_log
        if kind == "manager" and name == type_name
    ]
    assert recovered, "auto-recovery never brought the manager back"
    timings["mttr_s"] = recovered[0] - crash_at
    return timings


def _measure_split_brain(seed):
    """Partition (not crash) the primary mid-wave; check the fences."""
    runtime, manager, journal, loids, v2 = _build_fleet(seed, "P4Zombie")
    supervisor = Supervisor(
        runtime,
        manager.type_name,
        standby_hosts=STANDBY_HOSTS,
        detector_host_name=DETECTOR_HOST,
        retry_policy=FAST_RETRY,
    ).start()
    base = runtime.sim.now
    others = [f"host{i:02d}/" for i in range(1, 6)]
    runtime.network.faults.add_partition(
        PrefixPartition(
            [f"{MANAGER_HOST}/"], others, start=base + 0.52, end=base + 40.0
        )
    )
    results = {}

    def scenario():
        yield runtime.sim.timeout(base + 0.5 - runtime.sim.now)
        manager.set_current_version_async(v2)
        # Hold the sim open well past heal so the zombie's surviving
        # retries reach the fleet and get fenced.
        yield runtime.sim.timeout(150.0)
        supervisor.stop()

    runtime.sim.run_process(scenario())
    runtime.sim.run()
    promoted = supervisor.manager
    duplicates = sum(
        max(0, promoted.record(loid).obj.applications_by_version.get(v2, 0) - 1)
        for loid in loids
    )
    results["promotions"] = supervisor.promotions
    results["stale_term_rejections"] = runtime.network.count_value(
        "manager.stale_term_rejections"
    )
    results["fenced_stepdowns"] = runtime.network.count_value(
        "manager.fenced_stepdowns"
    )
    results["duplicate_applications"] = duplicates
    results["zombie_deposed"] = manager.deposed
    results["all_on_v2"] = all(
        promoted.record(loid).obj.version == v2 for loid in loids
    )
    return results


def run_p4(seed=0):
    """Run P4; returns an :class:`ExperimentResult`."""
    result = ExperimentResult(
        experiment_id="P4",
        title="Manager availability: hot takeover vs restart-and-recover",
    )
    baseline = _measure_baseline(seed)
    result.add(
        "restart-and-recover MTTR (no supervisor)",
        f">= {RESTART_DELAY_S:.0f} (restart delay + replay)",
        seconds(baseline["mttr_s"]),
        "s",
        ok=baseline["mttr_s"] >= RESTART_DELAY_S,
    )
    intervals = {}
    for interval in INTERVALS:
        timings = _measure_takeover(seed, interval)
        intervals[str(interval)] = timings
        expected = SUSPICION_THRESHOLD * interval
        result.add(
            f"hot takeover MTTR, heartbeat {interval:.2f}s",
            f"~{expected:.1f} (threshold x interval), << baseline",
            seconds(timings["mttr_s"]),
            "s",
            ok=timings["mttr_s"] < baseline["mttr_s"] / 3
            and timings["mttr_s"] >= expected - interval,
        )
    fastest = intervals[str(INTERVALS[0])]["mttr_s"]
    slowest = intervals[str(INTERVALS[-1])]["mttr_s"]
    result.add(
        "MTTR scales with heartbeat interval",
        "shorter interval -> faster detection",
        f"{fastest:.2f} -> {slowest:.2f}",
        "s",
        ok=fastest < slowest,
    )
    split = _measure_split_brain(seed)
    result.add(
        "split brain: stale-term RPCs rejected",
        ">= 1 (zombie fenced)",
        f"{split['stale_term_rejections']}",
        "rpc",
        ok=split["stale_term_rejections"] >= 1 and split["zombie_deposed"],
    )
    result.add(
        "split brain: duplicate applications",
        "0 (exactly-once)",
        f"{split['duplicate_applications']}",
        "",
        ok=split["duplicate_applications"] == 0 and split["all_on_v2"],
    )
    result.extra = {
        "suspicion_threshold": SUSPICION_THRESHOLD,
        "restart_delay_s": RESTART_DELAY_S,
        "baseline": baseline,
        "intervals": intervals,
        "split_brain": split,
    }
    return result
