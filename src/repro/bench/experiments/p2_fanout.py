"""P2 — windowed parallel manager fan-out vs sequential evolution.

The seed propagated an evolution wave by walking instances one at a
time, so wave-completion latency grew linearly with fleet size.  The
windowed fan-out keeps a bounded number of deliveries in flight
(default 8): each acked delivery immediately frees its slot for the
next instance, so the wave completes in roughly ``ceil(n / window)``
round-trip generations instead of ``n``.

Workload: a fleet of 8/32/64 DCDO instances spread across the
testbed's hosts, all evolving from v1 to a v2 that incorporates one
additional (pre-cached) component.  Component blobs are pre-seeded
into every host cache so the measured latency is dispatch + RPC +
apply, not download — the regime where fan-out shape dominates.
"""

from repro.bench.harness import ExperimentResult, millis
from repro.cluster import build_centurion
from repro.core import ComponentBuilder
from repro.legion import LegionRuntime
from repro.workloads import make_noop_manager

SCALES = (8, 32, 64)
WINDOW = 8


def _noop_body(ctx):
    return None


def _build_fleet(seed, scale, type_name):
    """A manager with ``scale`` v1 instances and an instantiable v2."""
    runtime = LegionRuntime(build_centurion(seed=seed))
    manager, components = make_noop_manager(
        runtime, type_name, component_count=4, functions_per_component=4
    )
    host_names = sorted(runtime.hosts)
    for index in range(scale):
        runtime.sim.run_process(
            manager.create_instance(host_name=host_names[index % len(host_names)])
        )
    builder = ComponentBuilder("upgrade")
    builder.function("upgrade_fn", _noop_body)
    builder.variant(size_bytes=64_000)
    upgrade = builder.build()
    manager.register_component(upgrade)
    v2 = manager.derive_version(manager.current_version)
    manager.incorporate_into(v2, "upgrade")
    manager.descriptor_of(v2).enable("upgrade_fn", "upgrade")
    manager.mark_instantiable(v2)
    # Pre-seed every host cache so applies pay the ~200 us cached-link
    # cost, not a download — isolating the fan-out shape.
    for host in runtime.hosts.values():
        for component in list(components) + [upgrade]:
            variant = component.variant_for_host(host)
            host.cache.insert(variant.blob_id, variant.size_bytes)
    manager.set_current_version(v2)
    return runtime, manager, v2


def _wave_latency(seed, scale, window):
    runtime, manager, v2 = _build_fleet(seed, scale, f"P2Fleet{scale}w{window}")
    started = runtime.sim.now
    tracker = runtime.sim.run_process(manager.propagate_version(v2, window=window))
    elapsed = runtime.sim.now - started
    acked = sum(1 for d in tracker.deliveries() if d.acked_at is not None)
    assert tracker.complete and acked == scale, tracker.summary()
    for loid in manager.instance_loids():
        assert manager.instance_version(loid) == v2
    return elapsed


def run_p2(seed=0):
    """Run P2; returns an :class:`ExperimentResult`."""
    result = ExperimentResult(
        experiment_id="P2",
        title="Evolution wave latency: windowed fan-out vs sequential",
    )
    waves = {}
    for scale in SCALES:
        sequential = _wave_latency(seed, scale, window=1)
        windowed = _wave_latency(seed, scale, window=WINDOW)
        waves[scale] = {
            "sequential_s": sequential,
            "windowed_s": windowed,
            "speedup": sequential / windowed,
        }
        result.add(
            f"{scale} instances: sequential wave",
            "grows linearly",
            millis(sequential),
            "ms",
        )
        result.add(
            f"{scale} instances: windowed (w={WINDOW}) wave",
            "< sequential",
            millis(windowed),
            "ms",
            ok=windowed < sequential,
        )
    speedup64 = waves[64]["speedup"]
    result.add(
        "64-instance speedup, windowed vs sequential",
        f"approaching {WINDOW}x",
        f"{speedup64:.1f}",
        "x",
        ok=speedup64 >= 2.0,
    )
    result.extra = {
        "window": WINDOW,
        "waves": {str(scale): data for scale, data in waves.items()},
    }
    return result
