"""Experiment implementations, one module per table/figure (see DESIGN.md §4)."""

from repro.bench.experiments.e1_invocation import run_e1
from repro.bench.experiments.e2_remote import run_e2
from repro.bench.experiments.e3_creation import run_e3
from repro.bench.experiments.e4_stale_binding import run_e4
from repro.bench.experiments.e5_download import run_e5
from repro.bench.experiments.e6_evolution import run_e6
from repro.bench.experiments.e7_comparison import run_e7
from repro.bench.experiments.a2_policies import run_a2
from repro.bench.experiments.a3_sensitivity import run_a3
from repro.bench.experiments.a4_wan import run_a4
from repro.bench.experiments.p1_fastpath import run_p1
from repro.bench.experiments.p2_fanout import run_p2
from repro.bench.experiments.p3_scaleout import run_p3
from repro.bench.experiments.p4_availability import run_p4
from repro.bench.experiments.p5_slo_waves import run_p5
from repro.bench.experiments.p6_scale import run_p6
from repro.bench.experiments.p7_gray import run_p7
from repro.bench.experiments.p8_shard import run_p8
from repro.bench.experiments.p9_selfheal import run_p9

__all__ = [
    "run_a2",
    "run_a3",
    "run_a4",
    "run_p1",
    "run_p2",
    "run_p3",
    "run_p4",
    "run_p5",
    "run_p6",
    "run_p7",
    "run_p8",
    "run_p9",
    "run_e1",
    "run_e2",
    "run_e3",
    "run_e4",
    "run_e5",
    "run_e6",
    "run_e7",
]
