"""E1 — dynamic function invocation overhead (§4 Overhead).

Paper: "a dynamic function takes between 10 and 15 microseconds per
call, for self-calls, intra-component calls, and inter-component calls
alike", versus a direct compiled call for normal objects.

Workload: one DCDO built from two components; a driver times N
dispatches of each call pattern through the DFM and the same pattern
through a monolithic object's direct dispatch.
"""

from repro.bench.harness import ExperimentResult, micros
from repro.core import ComponentBuilder
from repro.core.manager import define_dcdo_type
from repro.legion import Implementation, LegionRuntime
from repro.cluster import build_centurion

CALLS = 400


def _leaf(ctx):
    return "leaf"


def _self_call(ctx, depth=1):
    if depth <= 0:
        return "base"
    result = yield from ctx.call("self_call", depth - 1)
    return result


def _intra_caller(ctx):
    result = yield from ctx.call("leaf_same", )
    return result


def _inter_caller(ctx):
    result = yield from ctx.call("leaf_other")
    return result


def _build_dcdo(runtime):
    alpha = (
        ComponentBuilder("alpha")
        .function("leaf_same", _leaf)
        .function("self_call", _self_call)
        .function("intra_caller", _intra_caller)
        .function("inter_caller", _inter_caller)
        .variant(size_bytes=64_000)
        .build()
    )
    beta = (
        ComponentBuilder("beta")
        .function("leaf_other", _leaf)
        .variant(size_bytes=64_000)
        .build()
    )
    manager = define_dcdo_type(runtime, "E1Type")
    for component in (alpha, beta):
        manager.register_component(component)
    version = manager.new_version()
    manager.incorporate_into(version, "alpha")
    manager.incorporate_into(version, "beta")
    descriptor = manager.descriptor_of(version)
    for name in ("leaf_same", "self_call", "intra_caller", "inter_caller"):
        descriptor.enable(name, "alpha")
    descriptor.enable("leaf_other", "beta")
    manager.mark_instantiable(version)
    manager.set_current_version(version)
    loid = runtime.sim.run_process(manager.create_instance())
    return manager.record(loid).obj


def _mean_dispatch_cost(obj, name, args=(), inner_calls=1):
    """Mean per-DFM-call cost of dispatching ``name`` CALLS times."""
    sim = obj.sim
    start = sim.now
    for __ in range(CALLS):
        sim.run_process(obj._dispatch_local(name, args))
    return (sim.now - start) / (CALLS * inner_calls)


def run_e1(seed=0):
    """Run E1; returns an :class:`ExperimentResult`."""
    runtime = LegionRuntime(build_centurion(seed=seed))
    obj = _build_dcdo(runtime)

    # Leaf dispatch = one DFM call; callers add one nested DFM call.
    leaf_cost = _mean_dispatch_cost(obj, "leaf_same")
    self_cost = _mean_dispatch_cost(obj, "self_call", args=(1,), inner_calls=2)
    intra_cost = _mean_dispatch_cost(obj, "intra_caller", inner_calls=2)
    inter_cost = _mean_dispatch_cost(obj, "inter_caller", inner_calls=2)

    # Direct-call baseline: a monolithic object's dispatch.
    implementation = Implementation(
        impl_id="e1-direct", size_bytes=64_000, functions={"leaf": _leaf}
    )
    for host in runtime.hosts.values():
        host.cache.insert("e1-direct", 64_000)
    klass = runtime.define_class("E1Direct", implementations=[implementation])
    direct_loid = runtime.sim.run_process(klass.create_instance())
    direct_obj = klass.record(direct_loid).obj
    direct_cost = _mean_dispatch_cost(direct_obj, "leaf")

    result = ExperimentResult(
        experiment_id="E1",
        title="Dynamic function invocation overhead (per call)",
    )
    in_band = lambda cost: 10e-6 <= cost <= 15e-6  # noqa: E731
    result.add("self-call", "10-15", micros(self_cost), "us", ok=in_band(self_cost))
    result.add("intra-component call", "10-15", micros(intra_cost), "us", ok=in_band(intra_cost))
    result.add("inter-component call", "10-15", micros(inter_cost), "us", ok=in_band(inter_cost))
    result.add("plain DFM dispatch", "10-15", micros(leaf_cost), "us", ok=in_band(leaf_cost))
    result.add(
        "direct call (normal object)",
        "≪ dynamic",
        micros(direct_cost),
        "us",
        ok=direct_cost < leaf_cost / 10,
    )
    result.extra = {
        "calls_per_pattern": CALLS,
        "leaf_cost_s": leaf_cost,
        "direct_cost_s": direct_cost,
    }
    return result
