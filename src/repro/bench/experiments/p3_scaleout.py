"""P3 — scale-out evolution: relay fan-out and per-host blob caching.

The scale question §4's 16-host testbed could not ask: what happens to
an evolution wave at 64, 256, 1024 instances?  Two mechanisms keep the
cost curves host-shaped instead of instance-shaped:

- **Per-host relays** — the manager ships one ``evolveBatch`` RPC per
  host (optionally one bundle through a k-ary diffusion tree) instead
  of one management RPC per instance, so manager-side wave cost is
  O(hosts) and the per-instance applies run with per-host parallelism.
- **Content-addressed blob caching** — an upgrade component's bytes
  cross the network once per host: the first colocated incorporation
  fills the host's cache (concurrent ones coalesce onto a single
  fill), the rest hit.  ICO bytes served scale with host count, not
  instance count, and the per-host hit rate is (iph-1)/iph for iph
  instances per host.

Workload: fleets of 64/256/1024 instances spread over the 16-host
Centurion testbed, all evolving v1 -> v2 where v2 adds one 64 KB
component that no host has cached.  v1 blobs are pre-seeded so the
wave measures exactly the upgrade's fan-out + fetch traffic.
"""

from repro.bench.harness import ExperimentResult, millis
from repro.cluster import build_centurion, deploy_relays
from repro.core import ComponentBuilder
from repro.legion import LegionRuntime
from repro.workloads import make_noop_manager

SCALES = (64, 256, 1024)
WINDOW = 8
TREE_FANOUT = 4
UPGRADE_BYTES = 64_000


def _noop_body(ctx):
    return None


def _build_fleet(seed, scale, type_name):
    """A manager with ``scale`` v1 instances and an uncached v2 upgrade."""
    runtime = LegionRuntime(build_centurion(seed=seed))
    manager, components = make_noop_manager(
        runtime, type_name, component_count=2, functions_per_component=2
    )
    host_names = sorted(runtime.hosts)
    # Pre-seed the v1 blobs so fleet build-out is cheap and the wave's
    # cache traffic is the upgrade component alone.
    for host in runtime.hosts.values():
        for component in components:
            variant = component.variant_for_host(host)
            host.cache.insert(variant.blob_id, variant.size_bytes)
    for index in range(scale):
        runtime.sim.run_process(
            manager.create_instance(host_name=host_names[index % len(host_names)])
        )
    builder = ComponentBuilder("upgrade")
    builder.function("upgrade_fn", _noop_body)
    builder.variant(size_bytes=UPGRADE_BYTES)
    upgrade = builder.build()
    manager.register_component(upgrade)
    v2 = manager.derive_version(manager.current_version)
    manager.incorporate_into(v2, "upgrade")
    manager.descriptor_of(v2).enable("upgrade_fn", "upgrade")
    manager.mark_instantiable(v2)
    manager.set_current_version(v2)
    return runtime, manager, v2


def _run_wave(seed, scale, mode):
    """Drive one v1->v2 wave; returns the measured numbers.

    ``mode`` is ``"flat"`` (direct windowed delivery), ``"relay"``
    (one evolveBatch per host), or ``"tree"`` (one bundle to a k-ary
    relay tree).
    """
    runtime, manager, v2 = _build_fleet(seed, scale, f"P3Fleet{scale}{mode}")
    hosts = len(runtime.hosts)
    if mode != "flat":
        manager.use_relays(
            deploy_relays(runtime),
            fanout_k=TREE_FANOUT if mode == "tree" else 0,
        )
    metrics_before = runtime.network.metrics.snapshot(prefix="cache")
    bytes_before = runtime.network.count_value("ico.bytes_served")
    manager.invoker.stats.reset()
    started = runtime.sim.now
    tracker = runtime.sim.run_process(manager.propagate_version(v2, window=WINDOW))
    elapsed = runtime.sim.now - started
    assert tracker.complete and tracker.all_acked, tracker.summary()
    for loid in manager.instance_loids():
        assert manager.instance_version(loid) == v2
    metrics_after = runtime.network.metrics.snapshot(prefix="cache")
    hits = metrics_after.get("cache.hits", 0) - metrics_before.get("cache.hits", 0)
    misses = (
        metrics_after.get("cache.misses", 0)
        - metrics_before.get("cache.misses", 0)
    )
    return {
        "wave_s": elapsed,
        "hosts": hosts,
        "manager_rpcs": manager.invoker.stats.invocations,
        "ico_bytes": runtime.network.count_value("ico.bytes_served") - bytes_before,
        "cache_hits": hits,
        "cache_misses": misses,
        "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "relay_batches": runtime.network.count_value("relay.batches"),
    }


def run_p3(seed=0):
    """Run P3; returns an :class:`ExperimentResult`."""
    result = ExperimentResult(
        experiment_id="P3",
        title="Scale-out waves: relay fan-out + content-addressed caching",
    )
    scales = {}
    for scale in SCALES:
        flat = _run_wave(seed, scale, "flat")
        relay = _run_wave(seed, scale, "relay")
        hosts = relay["hosts"]
        iph = scale // hosts
        expected_hit_rate = (iph - 1) / iph
        scales[scale] = {"flat": flat, "relay": relay, "instances_per_host": iph}
        result.add(
            f"{scale} instances: flat wave",
            "grows with instances",
            millis(flat["wave_s"]),
            "ms",
        )
        result.add(
            f"{scale} instances: relay wave",
            "< flat" if scale >= 256 else "comparable",
            millis(relay["wave_s"]),
            "ms",
            ok=relay["wave_s"] < flat["wave_s"] if scale >= 256 else True,
        )
        result.add(
            f"{scale} instances: manager RPCs, relay wave",
            f"{hosts} (one per host)",
            f"{relay['manager_rpcs']}",
            "rpc",
            ok=relay["manager_rpcs"] == hosts
            and relay["relay_batches"] == hosts,
        )
        result.add(
            f"{scale} instances: upgrade bytes served by ICO",
            f"{hosts * UPGRADE_BYTES} (hosts x blob, not instances x blob)",
            f"{relay['ico_bytes']}",
            "B",
            ok=relay["ico_bytes"] == hosts * UPGRADE_BYTES,
        )
        result.add(
            f"{scale} instances: blob cache hit rate",
            f">= {expected_hit_rate:.3f} ((iph-1)/iph)",
            f"{relay['hit_rate']:.3f}",
            "",
            ok=relay["hit_rate"] >= expected_hit_rate - 1e-9,
        )
    top = max(SCALES)
    tree = _run_wave(seed, top, "tree")
    scales[top]["tree"] = tree
    result.add(
        f"{top} instances: diffusion-tree wave (k={TREE_FANOUT})",
        "< flat, 1 manager RPC",
        millis(tree["wave_s"]),
        "ms",
        ok=tree["wave_s"] < scales[top]["flat"]["wave_s"]
        and tree["manager_rpcs"] == 1,
    )
    speedup = scales[top]["flat"]["wave_s"] / scales[top]["relay"]["wave_s"]
    result.add(
        f"{top}-instance speedup, relay vs flat",
        "> 1x, growing with scale",
        f"{speedup:.1f}",
        "x",
        ok=speedup > 1.0,
    )
    result.extra = {
        "window": WINDOW,
        "tree_fanout": TREE_FANOUT,
        "upgrade_bytes": UPGRADE_BYTES,
        "scales": {str(scale): data for scale, data in scales.items()},
    }
    return result
