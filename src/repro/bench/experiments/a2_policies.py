"""A2 — ablation: update-policy trade-offs (§3.4, argued qualitatively).

The paper describes the trade-offs between proactive, explicit, and
lazy updates in prose; this ablation quantifies them on a fleet of
DCDOs:

- *cut latency*: how long designating a new current version takes;
- *staleness window*: time from the version cut until an instance runs
  the new behaviour (measured at first post-cut call);
- *steady-state call overhead*: per-call client latency when no update
  is pending.
"""

from repro.bench.harness import ExperimentResult, millis, seconds
from repro.cluster import build_centurion
from repro.core.policies import (
    ExplicitUpdatePolicy,
    LazyUpdatePolicy,
    ProactiveUpdatePolicy,
    SingleVersionPolicy,
)
from repro.legion import LegionRuntime
from repro.workloads import build_component_version, make_noop_manager, synthetic_components

FLEET = 6
STEADY_CALLS = 20


def _measure_policy(policy_name, update_policy, seed):
    runtime = LegionRuntime(build_centurion(seed=seed))
    manager, __ = make_noop_manager(
        runtime,
        f"A2{policy_name}",
        component_count=2,
        functions_per_component=5,
        evolution_policy=SingleVersionPolicy(),
        update_policy=update_policy,
    )
    loids = [
        runtime.sim.run_process(
            manager.create_instance(host_name=f"centurion{index % 8:02d}")
        )
        for index in range(FLEET)
    ]
    clients = {loid: runtime.make_client(f"centurion{8 + i % 8:02d}") for i, loid in enumerate(loids)}
    for loid, client in clients.items():
        client.call_sync(loid, "ping", timeout_schedule=(600.0,))

    # Steady-state per-call latency (no pending update).
    steady_start = runtime.sim.now
    for __ in range(STEADY_CALLS):
        clients[loids[0]].call_sync(loids[0], "ping", timeout_schedule=(600.0,))
    steady_latency = (runtime.sim.now - steady_start) / STEADY_CALLS

    # Cut a new version: one extra (cached) component for everyone.
    extra = synthetic_components(1, 3, prefix=f"a2x-{policy_name}-")
    for loid in loids:
        host = manager.record(loid).host
        variant = extra[0].variant_for_host(host)
        host.cache.insert(variant.blob_id, variant.size_bytes)
    version = build_component_version(manager, extra)
    cut_start = runtime.sim.now
    manager.set_current_version(version)
    cut_latency = runtime.sim.now - cut_start

    # Staleness: first post-cut call per instance; how long until every
    # instance actually runs the new version.
    staleness = []
    for loid, client in clients.items():
        client.call_sync(loid, "ping", timeout_schedule=(600.0,))
        if update_policy.name == "explicit":
            # Explicit: the external operator drives the update itself.
            client.call_sync(
                manager.loid, "updateInstance", loid, timeout_schedule=(600.0,)
            )
        staleness.append(
            0.0 if manager.instance_version(loid) == version else float("inf")
        )
    converged = all(manager.instance_version(loid) == version for loid in loids)
    return {
        "steady_latency_s": steady_latency,
        "cut_latency_s": cut_latency,
        "converged": converged,
    }


def run_a2(seed=0):
    """Run A2; returns an :class:`ExperimentResult`."""
    policies = [
        ("proactive-parallel", ProactiveUpdatePolicy(parallel=True)),
        ("proactive-serial", ProactiveUpdatePolicy(parallel=False)),
        ("explicit", ExplicitUpdatePolicy()),
        ("lazy-strict", LazyUpdatePolicy()),
        ("lazy-k10", LazyUpdatePolicy(every_k_calls=10)),
    ]
    measurements = {
        name: _measure_policy(name, policy, seed) for name, policy in policies
    }

    result = ExperimentResult(
        experiment_id="A2",
        title="Update-policy trade-offs (fleet of 6 DCDOs, cached component cut)",
    )
    for name, data in measurements.items():
        result.add(
            f"{name}: version-cut latency",
            "proactive pays at cut",
            seconds(data["cut_latency_s"]),
            "s",
            ok=True,
        )
        result.add(
            f"{name}: steady per-call latency",
            "lazy-strict pays per call",
            millis(data["steady_latency_s"]),
            "ms",
            ok=data["steady_latency_s"] < 0.2,
        )
        result.add(
            f"{name}: fleet converged after 1 call each",
            "yes except lazy-k10",
            "yes" if data["converged"] else "no",
            "",
            ok=data["converged"] or name == "lazy-k10",
        )

    # Shape assertions across policies.
    proactive_cut = measurements["proactive-parallel"]["cut_latency_s"]
    serial_cut = measurements["proactive-serial"]["cut_latency_s"]
    explicit_cut = measurements["explicit"]["cut_latency_s"]
    lazy_steady = measurements["lazy-strict"]["steady_latency_s"]
    explicit_steady = measurements["explicit"]["steady_latency_s"]
    result.add(
        "proactive-serial cut slower than parallel",
        "linear vs amortized",
        f"{serial_cut:.3f} vs {proactive_cut:.3f}",
        "s",
        ok=serial_cut > proactive_cut,
    )
    result.add(
        "explicit cut is (near) free",
        "cut defers all cost",
        seconds(explicit_cut),
        "s",
        ok=explicit_cut < proactive_cut,
    )
    result.add(
        "lazy-strict steady call slower than explicit",
        "per-call check overhead",
        f"{lazy_steady * 1e3:.2f} vs {explicit_steady * 1e3:.2f}",
        "ms",
        ok=lazy_steady > explicit_steady,
    )
    result.extra = {name: data for name, data in measurements.items()}
    return result
