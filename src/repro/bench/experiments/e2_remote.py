"""E2 — remote invocation round trips (§4 Overhead, figure).

Paper: "remote invocations of DCDO dynamic functions take no longer
than calls made on normal Legion objects (since 10-15 microseconds is
a small fraction of the overall time needed to complete a remote
method invocation), and the roundtrip times are independent of the
number of functions and components in a DCDO implementation."

Workload: a client on one host calls ``ping`` on objects on another
host, sweeping (functions, components) for the DCDO and functions for
the monolithic baseline.  The series this regenerates is round-trip
time vs implementation size — two flat, overlapping lines.
"""

from repro.bench.harness import ExperimentResult, millis
from repro.baseline import make_monolithic_implementation
from repro.cluster import build_centurion
from repro.legion import LegionRuntime
from repro.workloads import ClosedLoopClient, make_noop_manager, run_clients

SWEEP = [(10, 1), (100, 10), (500, 50)]
CALLS = 50


def _echo(ctx, *args):
    return args


def _mean_rtt(runtime, loid, calls=CALLS):
    client = runtime.make_client("centurion08")
    loop = ClosedLoopClient(client, loid, "ping", args=(1,), calls=calls)
    run_clients(runtime, [loop])
    return loop.mean_latency()


def run_e2(seed=0):
    """Run E2; returns an :class:`ExperimentResult`."""
    runtime = LegionRuntime(build_centurion(seed=seed))
    result = ExperimentResult(
        experiment_id="E2",
        title="Remote invocation round-trip vs implementation size",
    )

    dcdo_rtts = {}
    for functions, components in SWEEP:
        manager, __ = make_noop_manager(
            runtime,
            f"E2Dcdo{components}",
            component_count=components,
            functions_per_component=max(1, functions // components),
        )
        loid = runtime.sim.run_process(manager.create_instance(host_name="centurion01"))
        dcdo_rtts[(functions, components)] = _mean_rtt(runtime, loid)

    mono_rtts = {}
    for functions, __ in SWEEP:
        implementation = make_monolithic_implementation(
            f"e2-mono-{functions}",
            function_count=functions,
            functions={"ping": _echo},
        )
        for host in runtime.hosts.values():
            host.cache.insert(implementation.impl_id, implementation.size_bytes)
        klass = runtime.define_class(
            f"E2Mono{functions}", implementations=[implementation]
        )
        loid = runtime.sim.run_process(klass.create_instance(host_name="centurion01"))
        mono_rtts[functions] = _mean_rtt(runtime, loid)

    base = dcdo_rtts[SWEEP[0]]
    for functions, components in SWEEP:
        dcdo = dcdo_rtts[(functions, components)]
        mono = mono_rtts[functions]
        result.add(
            f"{functions} fns / {components} comps: DCDO rtt",
            "~ normal object rtt",
            millis(dcdo),
            "ms",
            # "No longer than" normal, up to the DFM's microseconds.
            ok=dcdo <= mono + 50e-6,
        )
        result.add(
            f"{functions} fns: normal object rtt",
            "a few ms",
            millis(mono),
            "ms",
            ok=0.5e-3 <= mono <= 20e-3,
        )
    spread = max(dcdo_rtts.values()) - min(dcdo_rtts.values())
    result.add(
        "DCDO rtt spread across sweep",
        "independent of size",
        millis(spread),
        "ms",
        ok=spread <= 0.2 * base,
    )
    result.extra = {
        "dcdo_rtts_ms": [
            (functions, components, value * 1e3)
            for (functions, components), value in dcdo_rtts.items()
        ],
        "mono_rtts_ms": [
            (functions, value * 1e3) for functions, value in mono_rtts.items()
        ],
    }
    return result
