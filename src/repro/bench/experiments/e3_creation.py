"""E3 — object creation cost (§4 Overhead, table + figure).

Paper: "incorporating an object with 500 functions separated into 50
components takes about 10 seconds, whereas creating an object with the
same 500 functions that reside in a static monolithic executable takes
only 2.2 seconds.  For more reasonably configured objects (e.g., with
fewer components), results are comparable to the static executables."

Workload: fixed 500 functions; sweep the component count for the DCDO
and create the monolithic twin (binary pre-cached, as in the paper's
setup where creation — not download — is measured).
"""

from repro.bench.harness import ExperimentResult, seconds
from repro.baseline import make_monolithic_implementation
from repro.cluster import build_centurion
from repro.legion import LegionRuntime
from repro.workloads import make_noop_manager

FUNCTIONS = 500
COMPONENT_SWEEP = (1, 5, 10, 25, 50)


def run_e3(seed=0):
    """Run E3; returns an :class:`ExperimentResult`."""
    runtime = LegionRuntime(build_centurion(seed=seed))
    result = ExperimentResult(
        experiment_id="E3",
        title=f"Creation time for a {FUNCTIONS}-function object",
    )

    implementation = make_monolithic_implementation(
        "e3-mono", function_count=FUNCTIONS
    )
    for host in runtime.hosts.values():
        host.cache.insert(implementation.impl_id, implementation.size_bytes)
    klass = runtime.define_class("E3Mono", implementations=[implementation])
    start = runtime.sim.now
    runtime.sim.run_process(klass.create_instance(host_name="centurion01"))
    mono_time = runtime.sim.now - start
    result.add(
        "monolithic executable",
        "2.2",
        seconds(mono_time),
        "s",
        ok=1.8 <= mono_time <= 2.7,
    )

    dcdo_times = {}
    for components in COMPONENT_SWEEP:
        manager, __ = make_noop_manager(
            runtime,
            f"E3Dcdo{components}",
            component_count=components,
            functions_per_component=FUNCTIONS // components,
        )
        start = runtime.sim.now
        runtime.sim.run_process(manager.create_instance(host_name="centurion02"))
        dcdo_times[components] = runtime.sim.now - start

    for components, elapsed in dcdo_times.items():
        if components == 50:
            paper, ok = "~10", 8.0 <= elapsed <= 12.0
        elif components <= 5:
            paper, ok = "comparable to static", elapsed <= 2 * mono_time
        else:
            paper, ok = "(between)", mono_time <= elapsed <= 12.0
        result.add(
            f"DCDO, {components} component(s)",
            paper,
            seconds(elapsed),
            "s",
            ok=ok,
        )
    result.extra = {
        "monolithic_s": mono_time,
        "dcdo_s": dict(dcdo_times),
    }
    return result
