"""E4 — stale binding discovery (§4 Cost).

Paper: "it takes objects approximately 25 to 35 seconds to realize
that a local binding contains a physical address that the object is no
longer using".

Workload: several clients warm their binding caches against an object,
the object migrates (its old incarnation dies), and each client's next
call is timed until success — the discovery plus one rebind + retry.
"""

from repro.bench.harness import ExperimentResult, seconds
from repro.cluster import build_centurion
from repro.legion import LegionRuntime
from repro.workloads import make_noop_manager

CLIENTS = 5


def run_e4(seed=0):
    """Run E4; returns an :class:`ExperimentResult`."""
    runtime = LegionRuntime(build_centurion(seed=seed))
    manager, __ = make_noop_manager(
        runtime, "E4Type", component_count=1, functions_per_component=5
    )
    loid = runtime.sim.run_process(manager.create_instance(host_name="centurion01"))

    clients = [runtime.make_client(f"centurion{4 + index:02d}") for index in range(CLIENTS)]
    for client in clients:
        client.call_sync(loid, "ping")  # warm the binding cache

    runtime.sim.run_process(manager.migrate_instance(loid, "centurion02"))

    discovery_times = []
    for client in clients:
        start = runtime.sim.now
        client.call_sync(loid, "ping")
        discovery_times.append(runtime.sim.now - start)

    mean = sum(discovery_times) / len(discovery_times)
    low, high = min(discovery_times), max(discovery_times)
    result = ExperimentResult(
        experiment_id="E4",
        title="Time for a client to discover a stale binding",
    )
    result.add("mean discovery time", "25-35", seconds(mean), "s", ok=25.0 <= mean <= 35.0)
    result.add("min", ">= 25", seconds(low), "s", ok=low >= 24.0)
    result.add("max", "<= 35", seconds(high), "s", ok=high <= 36.0)
    fresh = runtime.make_client("centurion09")
    start = runtime.sim.now
    fresh.call_sync(loid, "ping")
    fresh_time = runtime.sim.now - start
    result.add(
        "fresh client (no stale binding)",
        "ms-scale",
        seconds(fresh_time),
        "s",
        ok=fresh_time < 1.0,
    )
    result.extra = {"discovery_times_s": discovery_times}
    return result
