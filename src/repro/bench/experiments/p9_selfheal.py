"""P9 — self-healing MTTR: reactive controller vs. operator runbook.

The paper's configuration manager *originates* evolution but leaves
the decision to evolve with a human: someone watches the dashboards,
notices the fleet is sick, and runs the runbook.  PR 10's
:class:`~repro.cluster.controller.ReactiveController` closes that loop
on the sim clock — it senses the same signals (SLO breaches, health
quarantines), decides with the same pluggable policies, and acts
through the same transactional wave machinery an operator would.

This experiment injects the canonical compound incident — a limping
instance host *and* an unguarded degraded deploy at the same instant —
into two otherwise identical fleets:

- **controller** — the reactive daemon ticks every second; the SLO
  breach triggers a journaled rollback wave to the parent version and
  the quarantine triggers a migration wave off the limper.
- **operator** — the *same* decision procedure and the same runbook
  (identical policies, identical actuators) driven at a human cadence:
  the operator polls the dashboards every ``OPERATOR_PERIOD_S``
  simulated seconds and only then runs what the controller would have
  run.  Everything else — detection thresholds, waves, retries — is
  held equal, so the measured gap is pure sense/decide latency.

MTTR is measured from the fault instant to full remediation (official
version and every instance back on the parent, no active instance
left on the limping host).  The gate — mirrored by
``check_regression.py --selfheal`` — is the recorded
``mttr_floor``: controller MTTR must beat operator MTTR by >= 3x,
with both runs healed, journaled intents all closed, and exactly-once
application intact.
"""

from repro.bench.harness import ExperimentResult
from repro.cluster import ReactiveController, build_lan
from repro.core import ManagerJournal, RemovePolicy
from repro.core.policies import (
    DemoteDegradedVersion,
    MigrateOffFlakyHost,
    ReliableUpdatePolicy,
)
from repro.legion import LegionRuntime
from repro.net import RetryPolicy
from repro.net.faults import SlowLink
from repro.obs import SLO
from repro.workloads import (
    OpenLoopLoad,
    PoissonArrivals,
    build_degraded_version,
    make_noop_manager,
)

MANAGER_HOST = "host00"
CLIENT_HOST = "host07"
LIMPING_HOST = "host01"
INSTANCE_HOSTS = ("host01", "host02", "host03", "host04", "host05", "host06")
#: Total live instances, spread evenly over the instance hosts.  CI
#: smoke runs shrink this via ``P9_FLEET`` (the gates are ratios).
FLEET = 48
#: Both faults land at the same instant: the host starts limping and
#: the degraded build is designated current, unguarded.
FAULT_AT_S = 10.0
LIMP_FACTOR = 10.0
GRAY_EXTRA_S = 0.4
GRAY_JITTER_S = 0.04
#: Every third call on the degraded build errors — far over the SLO.
ERROR_EVERY = 3
#: The human cadence: dashboards polled once a simulated minute.
OPERATOR_PERIOD_S = 60.0
CONTROLLER_INTERVAL_S = 1.0
ARRIVAL_RATE_PER_S = 40.0
#: Give up declaring a run healed after this long (shape-check fails).
HEAL_DEADLINE_S = 600.0
#: Acceptance ratio (mirrored by ``check_regression.py --selfheal``).
MTTR_FLOOR = 3.0

FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)


def _run_incident(seed, mode, fleet):
    """One compound incident; returns MTTR + hygiene numbers.

    ``mode`` is ``"controller"`` (1 s tick) or ``"operator"`` (the
    same loop at the human dashboard-polling cadence).
    """
    runtime = LegionRuntime(build_lan(8, seed=seed + 113))
    sim = runtime.sim
    journal = ManagerJournal(name="P9Svc")
    manager, __ = make_noop_manager(
        runtime,
        "P9Svc",
        component_count=2,
        functions_per_component=3,
        journal=journal,
        host_name=MANAGER_HOST,
        propagation_retry_policy=FAST_RETRY,
        update_policy=ReliableUpdatePolicy(retry_policy=FAST_RETRY),
        # In-flight calls on the degraded build must not veto its
        # removal forever (§3.2): drain briefly, then abort them.
        remove_policy=RemovePolicy.timeout(2.0),
    )
    loids = [
        sim.run_process(
            manager.create_instance(
                host_name=INSTANCE_HOSTS[index % len(INSTANCE_HOSTS)]
            )
        )
        for index in range(fleet)
    ]
    v1 = manager.current_version
    v2 = build_degraded_version(manager, error_every=ERROR_EVERY)
    runtime.network.enable_health()

    slo = SLO(
        name="p9",
        latency_targets={0.99: 0.050},
        max_error_rate=0.02,
        min_samples=20,
    )
    monitor = runtime.network.slo_monitor("p9", slo=slo, window_s=6.0)
    client = runtime.make_client(host_name=CLIENT_HOST)
    # Adaptive per-peer timeouts + hedging on the serving path: calls
    # into the limper time out against its warm RTT estimate instead
    # of riding the generous cold schedule, feeding the health scores
    # that drive quarantine (the same hardening P7 measures).
    client.invoker.enable_adaptive_timeouts()
    client.invoker.enable_hedging()
    load = OpenLoopLoad(
        client,
        loids,
        PoissonArrivals(ARRIVAL_RATE_PER_S),
        runtime.rng.stream("traffic"),
        monitor=monitor,
        duration_s=HEAL_DEADLINE_S + FAULT_AT_S,
        # No fixed schedule: let the adaptive estimator size timeouts,
        # so the limper's calls actually time out and score it down.
        timeout_schedule=None,
    )
    load.start()
    interval = (
        CONTROLLER_INTERVAL_S if mode == "controller" else OPERATOR_PERIOD_S
    )
    controller = ReactiveController(
        runtime,
        "P9Svc",
        policies=[MigrateOffFlakyHost(), DemoteDegradedVersion()],
        interval_s=interval,
        retry_policy=FAST_RETRY,
        name=f"{mode}:P9Svc",
    ).start()

    healed = {"rollback": None, "migrate": None}
    # Fleet build-out consumed simulated time; faults and MTTRs are
    # measured relative to this base, not absolute sim time.
    base = sim.now
    fault_at = base + FAULT_AT_S

    def on_limper(record):
        return record.active and record.host.name == LIMPING_HOST

    def injector():
        yield sim.timeout(fault_at - sim.now)
        host = runtime.host(LIMPING_HOST)
        host.set_limp(LIMP_FACTOR, slow_nic=True)
        others = sorted(
            f"{name}/" for name in runtime.hosts if name != LIMPING_HOST
        )
        runtime.network.faults.add_delay_rule(
            SlowLink(
                [f"{LIMPING_HOST}/"],
                others,
                extra_s=GRAY_EXTRA_S,
                jitter_s=GRAY_JITTER_S,
                seed=seed + 17,
                label="p9-limper-link",
            )
        )
        manager.set_current_version_async(v2)

    def watcher():
        deadline = fault_at + HEAL_DEADLINE_S
        while sim.now < deadline:
            if healed["rollback"] is None and manager.current_version == v1:
                records = [manager.record(loid) for loid in loids]
                if all(
                    record.active and record.obj.version == v1
                    for record in records
                ):
                    healed["rollback"] = sim.now
            if healed["migrate"] is None and sim.now > fault_at:
                if not any(
                    on_limper(manager.record(loid)) for loid in loids
                ):
                    healed["migrate"] = sim.now
            if healed["rollback"] is not None and healed["migrate"] is not None:
                break
            yield sim.timeout(0.25)
        load.stop()
        controller.stop()

    sim.run_process(injector())
    sim.run_process(watcher())
    sim.run()

    mttrs = {
        kind: (at - fault_at) if at is not None else None
        for kind, at in healed.items()
    }
    total = (
        max(mttrs.values())
        if all(at is not None for at in mttrs.values())
        else None
    )
    duplicates = sum(
        max(0, manager.record(loid).obj.applications_by_version.get(v2, 0) - 1)
        for loid in loids
        if manager.record(loid).active
    )
    return {
        "mode": mode,
        "interval_s": interval,
        "fleet": len(loids),
        "rollback_mttr_s": mttrs["rollback"],
        "migrate_mttr_s": mttrs["migrate"],
        "mttr_s": total,
        "healed": total is not None,
        "duplicate_applications": duplicates,
        "open_intents": len(manager.open_remediations()),
        "actions_done": runtime.network.count_value("controller.actions.done"),
        "rollbacks": runtime.network.count_value("controller.rollbacks"),
        "migrations": runtime.network.count_value("controller.migrations"),
        "limper_quarantined": bool(
            runtime.network.health_snapshot()
            .get(LIMPING_HOST, {})
            .get("quarantined")
        ),
    }


def run_p9(seed=0, fleet=FLEET):
    """Run P9; returns an :class:`ExperimentResult`."""
    result = ExperimentResult(
        experiment_id="P9",
        title="Self-healing MTTR: reactive controller vs. operator runbook",
    )
    controller = _run_incident(seed, "controller", fleet)
    operator = _run_incident(seed, "operator", fleet)
    ratio = (
        operator["mttr_s"] / controller["mttr_s"]
        if controller["healed"] and operator["healed"] and controller["mttr_s"]
        else None
    )
    result.add(
        "controller MTTR (limp + degraded deploy)",
        "fleet healed, both remediations",
        f"{controller['mttr_s']:.1f}" if controller["healed"] else "unhealed",
        "s",
        ok=controller["healed"],
    )
    result.add(
        "operator MTTR (same runbook, 60 s dashboard cadence)",
        "fleet healed, both remediations",
        f"{operator['mttr_s']:.1f}" if operator["healed"] else "unhealed",
        "s",
        ok=operator["healed"],
    )
    result.add(
        "controller speedup over operator",
        f">= {MTTR_FLOOR:.0f}x (sense/decide latency eliminated)",
        f"{ratio:.1f}" if ratio is not None else "n/a",
        "x",
        ok=ratio is not None and ratio >= MTTR_FLOOR,
    )
    result.add(
        "rollback originated by the loop in both runs",
        "controller.rollbacks >= 1 each",
        f"{controller['rollbacks']}+{operator['rollbacks']}",
        "wave",
        ok=controller["rollbacks"] >= 1 and operator["rollbacks"] >= 1,
    )
    result.add(
        "limper quarantined and drained in both runs",
        "migrations >= 1 each, no instance left on it",
        f"{controller['migrations']}+{operator['migrations']}",
        "move",
        ok=controller["migrations"] >= 1 and operator["migrations"] >= 1,
    )
    duplicates = (
        controller["duplicate_applications"]
        + operator["duplicate_applications"]
    )
    dangling = controller["open_intents"] + operator["open_intents"]
    result.add(
        "exactly-once and journal hygiene across both runs",
        "0 duplicate applications, 0 dangling intents",
        f"{duplicates}/{dangling}",
        "",
        ok=duplicates == 0 and dangling == 0,
    )
    result.extra = {
        "fleet": fleet,
        "fault_at_s": FAULT_AT_S,
        "operator_period_s": OPERATOR_PERIOD_S,
        "controller_interval_s": CONTROLLER_INTERVAL_S,
        "mttr_floor": MTTR_FLOOR,
        "mttr_ratio": ratio,
        "controller": controller,
        "operator": operator,
    }
    return result
