"""E5 — implementation download times (§4 Cost, table).

Paper: "a 5.1 Megabyte object implementation (typical for moderately
sized Legion objects) takes 15 to 25 seconds to download and ... a
550 K implementation takes about 4 seconds".

Workload: publish binaries of swept sizes and pull each through the
chunked download protocol to a cold host cache.  The intermediate
sizes trace the size→time curve (fixed setup + linear term).
"""

from repro.bench.harness import ExperimentResult, seconds
from repro.baseline import MODERATE_IMPL_BYTES, SMALL_IMPL_BYTES
from repro.cluster import build_centurion
from repro.legion import Implementation, LegionRuntime

SWEEP = (
    SMALL_IMPL_BYTES,  # 550 KB — "about 4 seconds"
    1_000_000,
    2_000_000,
    MODERATE_IMPL_BYTES,  # 5.1 MB — "15 to 25 seconds"
)


def run_e5(seed=0):
    """Run E5; returns an :class:`ExperimentResult`."""
    runtime = LegionRuntime(build_centurion(seed=seed))
    client = runtime.make_client("centurion03")
    host = runtime.host("centurion03")

    measured = {}
    for size in SWEEP:
        impl_id = f"e5-blob-{size}"
        runtime.implementation_store.publish(
            Implementation(impl_id=impl_id, size_bytes=size)
        )
        start = runtime.sim.now
        runtime.sim.run_process(
            runtime.implementation_store.ensure_cached(host, impl_id, client.endpoint)
        )
        measured[size] = runtime.sim.now - start

    result = ExperimentResult(
        experiment_id="E5",
        title="Implementation download time vs size",
    )
    result.add(
        "550 KB",
        "~4",
        seconds(measured[SMALL_IMPL_BYTES]),
        "s",
        ok=3.0 <= measured[SMALL_IMPL_BYTES] <= 5.0,
    )
    result.add(
        "1 MB", "(curve)", seconds(measured[1_000_000]), "s",
        ok=measured[SMALL_IMPL_BYTES] < measured[1_000_000] < measured[2_000_000],
    )
    result.add(
        "2 MB", "(curve)", seconds(measured[2_000_000]), "s",
        ok=measured[1_000_000] < measured[2_000_000] < measured[MODERATE_IMPL_BYTES],
    )
    result.add(
        "5.1 MB",
        "15-25",
        seconds(measured[MODERATE_IMPL_BYTES]),
        "s",
        ok=15.0 <= measured[MODERATE_IMPL_BYTES] <= 25.0,
    )

    # Cached re-download is free (the comparison E6/E7 lean on).
    start = runtime.sim.now
    runtime.sim.run_process(
        runtime.implementation_store.ensure_cached(
            host, f"e5-blob-{SMALL_IMPL_BYTES}", client.endpoint
        )
    )
    cached = runtime.sim.now - start
    result.add("550 KB, cached", "0", seconds(cached), "s", ok=cached == 0.0)
    result.extra = {"measured_s": {str(size): value for size, value in measured.items()}}
    return result
