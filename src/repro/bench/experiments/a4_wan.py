"""A4 — ablation: the E7 comparison in the wide-area setting.

The paper's system targets "wide area distributed object computing"
(§1) but measures on one LAN testbed.  This ablation replays the E7
upgrade with the client, the evolving object, its manager, and the
implementation store spread across WAN sites (30 ms one-way inter-site
latency): the DCDO's advantage *grows*, because the baseline's
downloads and rebinding retries each pay wide-area round trips while
the DCDO pays only a handful of management messages.
"""

from repro.bench.harness import ExperimentResult, seconds
from repro.baseline import (
    MODERATE_IMPL_BYTES,
    BaselineEvolution,
    make_monolithic_implementation,
)
from repro.cluster import build_wan
from repro.core.policies import GeneralEvolutionPolicy
from repro.legion import LegionRuntime
from repro.workloads import build_component_version, make_noop_manager, synthetic_components

SITES = 3
HOSTS_PER_SITE = 2


def _fresh_runtime(seed):
    return LegionRuntime(build_wan(SITES, HOSTS_PER_SITE, seed=seed))


def _run_baseline(runtime):
    implementation = make_monolithic_implementation(
        "a4-mono-v1", function_count=20, size_bytes=MODERATE_IMPL_BYTES
    )
    for host in runtime.hosts.values():
        host.cache.insert(implementation.impl_id, implementation.size_bytes)
    klass = runtime.define_class("A4Mono", implementations=[implementation])
    # Object at site 2, client at site 1, services at site 0's core.
    loid = runtime.sim.run_process(klass.create_instance(host_name="s2h00"))
    client = runtime.make_client("s1h00")
    client.call_sync(loid, "fn_0000", timeout_schedule=(30.0,))
    evolution = BaselineEvolution(runtime, klass)
    evolution.publish_version(
        [
            make_monolithic_implementation(
                "a4-mono-v2",
                function_count=20,
                size_bytes=MODERATE_IMPL_BYTES,
                version_tag="2",
            )
        ]
    )
    report = runtime.sim.run_process(evolution.evolve_instance(loid))
    start = runtime.sim.now
    client.call_sync(loid, "fn_0000", timeout_schedule=None)
    disruption = runtime.sim.now - start
    return report, disruption


def _run_dcdo(runtime, cached):
    manager, __ = make_noop_manager(
        runtime,
        f"A4Dcdo{'C' if cached else 'U'}",
        component_count=2,
        functions_per_component=5,
        evolution_policy=GeneralEvolutionPolicy(),
    )
    loid = runtime.sim.run_process(manager.create_instance(host_name="s2h01"))
    obj = manager.record(loid).obj
    client = runtime.make_client("s1h01")
    client.call_sync(loid, "ping", timeout_schedule=(30.0,))
    extra = synthetic_components(
        1, 3, size_bytes=MODERATE_IMPL_BYTES // 20, prefix=f"a4x{cached}-"
    )
    if cached:
        variant = extra[0].variant_for_host(obj.host)
        obj.host.cache.insert(variant.blob_id, variant.size_bytes)
    version = build_component_version(manager, extra)
    start = runtime.sim.now
    runtime.sim.run_process(manager.evolve_instance(loid, version))
    evolution_time = runtime.sim.now - start
    start = runtime.sim.now
    client.call_sync(loid, "ping", timeout_schedule=(30.0,))
    disruption = runtime.sim.now - start
    return evolution_time, disruption


def run_a4(seed=0):
    """Run A4; returns an :class:`ExperimentResult`."""
    result = ExperimentResult(
        experiment_id="A4",
        title=f"E7 over a {SITES}-site WAN (30 ms inter-site latency)",
    )
    baseline_report, baseline_disruption = _run_baseline(_fresh_runtime(seed))
    dcdo_cached, cached_disruption = _run_dcdo(_fresh_runtime(seed + 1), cached=True)
    dcdo_uncached, uncached_disruption = _run_dcdo(_fresh_runtime(seed + 2), cached=False)

    result.add(
        "baseline: object-side total",
        "worse than LAN (WAN downloads)",
        seconds(baseline_report.total_s),
        "s",
        ok=baseline_report.total_s > 15.0,
    )
    result.add(
        "baseline: client disruption",
        ">= LAN's 25-35 (WAN retries)",
        seconds(baseline_disruption),
        "s",
        ok=baseline_disruption >= 25.0,
    )
    result.add(
        "DCDO: evolve (cached component)",
        "< 1 (a few WAN round trips)",
        seconds(dcdo_cached),
        "s",
        ok=dcdo_cached < 1.0,
    )
    result.add(
        "DCDO: evolve (uncached component)",
        "download-dominated, << baseline",
        seconds(dcdo_uncached),
        "s",
        ok=dcdo_uncached < baseline_report.total_s,
    )
    worst_disruption = max(cached_disruption, uncached_disruption)
    result.add(
        "DCDO: client disruption",
        "one WAN rtt",
        seconds(worst_disruption),
        "s",
        ok=worst_disruption < 1.0,
    )
    advantage = (baseline_report.total_s + baseline_disruption) / max(dcdo_cached, 1e-9)
    result.add(
        "end-to-end advantage (cached DCDO)",
        "grows over WAN",
        f"{advantage:.0f}x",
        "",
        ok=advantage > 50,
    )
    result.extra = {
        "baseline_total_s": baseline_report.total_s,
        "baseline_disruption_s": baseline_disruption,
        "dcdo_cached_s": dcdo_cached,
        "dcdo_uncached_s": dcdo_uncached,
    }
    return result
