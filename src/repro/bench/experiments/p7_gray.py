"""P7 — gray-failure tolerance: hedging + health-scored quarantine.

The paper's failure model is fail-stop: a host is up or it is crashed,
and every recovery mechanism in §4 keys off that binary.  PR 8 adds
the *gray* middle — hosts that limp instead of dying — and this
experiment measures what the hardening buys when the limper sits in
the worst possible place: the lexicographically-first relay host,
which plain name ordering makes the **root** of the k-ary diffusion
tree that every evolution bundle routes through.

- **Healthy baseline** — a 185-instance fleet over 24 instance hosts
  runs one v1->v2 wave through the relay tree; per-instance latency is
  ``acked_at - wave_start`` from the propagation tracker.
- **Unhardened under gray** — the root relay's host limps (CPU and
  NIC) behind a slow, jittery link.  Every bundle crosses it twice, so
  the whole wave inherits the gray host's latency: p99 blows up by >=
  5x even though not a single host is down.
- **Hardened under gray** — peer health is armed, the manager's
  invoker hedges idempotent calls with adaptive timeouts, and a
  failure detector probes the limping relay; its timed-out probes
  score the host down until it is quarantined.  The wave then routes
  around it (``relay.quarantine_skips``), the limper's single
  instance falls back to direct delivery, and fleet p99 lands within
  2x of healthy.
- **Phi vs fixed detection** — a separate supervised fleet's manager
  sits behind a gray link (slow, not dead).  The fixed-threshold
  detector misses probes and the supervisor flap-fails-over a
  perfectly live authority; the phi-accrual detector adapts its
  expectation to the observed arrival distribution and keeps it in
  office: false-positive failovers must be zero.
"""

from repro.bench.harness import ExperimentResult, millis
from repro.cluster import Supervisor, build_lan, deploy_relays
from repro.cluster.failure_detector import HeartbeatFailureDetector
from repro.core import ComponentBuilder, ManagerJournal
from repro.legion import LegionRuntime
from repro.net.faults import SlowLink
from repro.workloads import make_noop_manager

MANAGER_HOST = "host00"
#: Sorts first among the instance hosts, so with health unarmed (plain
#: name ordering) it roots the relay diffusion tree.
LIMPING_HOST = "host01"
INSTANCE_HOSTS = 24
INSTANCES_PER_HOST = 8
TREE_FANOUT = 4
WINDOW = 8
UPGRADE_BYTES = 64_000
#: Gray severity: CPU/NIC multiplier plus a slow, jittery link.
LIMP_FACTOR = 6.0
GRAY_EXTRA_S = 0.5
GRAY_JITTER_S = 0.05
#: The hardened run's relay probe: times out against the gray link.
PROBE_INTERVAL_S = 0.5
PROBE_TIMEOUT_S = 0.3
WARMUP_S = 6.0
#: Acceptance ratios (mirrored by ``check_regression.py --gray``).
UNHARDENED_FLOOR = 5.0
HARDENED_CEILING = 2.0


def _noop_body(ctx):
    return None


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _build_fleet(seed, type_name):
    """Manager + 185 v1 instances; the limping host holds exactly one.

    One instance on the gray host keeps its direct-delivery latency a
    sub-1% tail (excluded from p99 by construction), so the hardened
    run's p99 measures the *fleet's* exposure to the limper — the tree
    routing — not the limper's own unavoidable slowness.
    """
    runtime = LegionRuntime(build_lan(1 + INSTANCE_HOSTS, seed=seed))
    manager, components = make_noop_manager(
        runtime,
        type_name,
        component_count=2,
        functions_per_component=2,
        host_name=MANAGER_HOST,
    )
    # Pre-seed the v1 blobs so build-out is cheap and the wave measures
    # the upgrade traffic alone (as in P3).
    for host in runtime.hosts.values():
        for component in components:
            variant = component.variant_for_host(host)
            host.cache.insert(variant.blob_id, variant.size_bytes)
    loids = []
    for name in sorted(runtime.hosts):
        if name == MANAGER_HOST:
            continue
        count = 1 if name == LIMPING_HOST else INSTANCES_PER_HOST
        for __ in range(count):
            loids.append(
                runtime.sim.run_process(manager.create_instance(host_name=name))
            )
    builder = ComponentBuilder("upgrade")
    builder.function("upgrade_fn", _noop_body)
    builder.variant(size_bytes=UPGRADE_BYTES)
    upgrade = builder.build()
    manager.register_component(upgrade)
    v2 = manager.derive_version(manager.current_version)
    manager.incorporate_into(v2, "upgrade")
    manager.descriptor_of(v2).enable("upgrade_fn", "upgrade")
    manager.mark_instantiable(v2)
    manager.set_current_version(v2)
    return runtime, manager, loids, v2


def _run_wave(seed, mode):
    """One tree-routed v1->v2 wave; returns per-instance latency stats.

    ``mode`` is ``"healthy"`` (no faults), ``"unhardened"`` (gray
    limper, no hardening), or ``"hardened"`` (gray limper + health,
    adaptive timeouts, hedging, and a probing detector).
    """
    runtime, manager, loids, v2 = _build_fleet(seed, f"P7{mode.capitalize()}")
    directory = deploy_relays(runtime)
    manager.use_relays(directory, fanout_k=TREE_FANOUT)
    if mode != "healthy":
        runtime.host(LIMPING_HOST).set_limp(LIMP_FACTOR, slow_nic=True)
        others = sorted(
            f"{name}/" for name in runtime.hosts if name != LIMPING_HOST
        )
        runtime.network.faults.add_delay_rule(
            SlowLink(
                [f"{LIMPING_HOST}/"],
                others,
                extra_s=GRAY_EXTRA_S,
                jitter_s=GRAY_JITTER_S,
                seed=seed + 17,
                label="gray-limper-link",
            )
        )
    detector = None
    if mode == "hardened":
        runtime.network.enable_health()
        manager.invoker.enable_adaptive_timeouts()
        manager.invoker.enable_hedging()
        relay_loid = directory[LIMPING_HOST]
        detector = HeartbeatFailureDetector(
            runtime,
            runtime.host(MANAGER_HOST),
            interval_s=PROBE_INTERVAL_S,
            timeout_s=PROBE_TIMEOUT_S,
            suspicion_threshold=3,
        )
        detector.watch(
            "limping-relay",
            lambda: runtime.binding_agent.current_address(relay_loid),
            lambda key: None,
        )

        def warmup():
            # Probe timeouts against the gray link feed the health
            # registry until the limper crosses the quarantine floor.
            yield runtime.sim.timeout(WARMUP_S)

        runtime.sim.run_process(warmup())
    started = runtime.sim.now
    tracker = runtime.sim.run_process(manager.propagate_version(v2, window=WINDOW))
    elapsed = runtime.sim.now - started
    if detector is not None:
        detector.stop()
    assert tracker.complete and tracker.all_acked, tracker.summary()
    latencies = []
    duplicates = 0
    for loid in loids:
        entry = tracker.delivery(loid)
        latencies.append(entry.acked_at - started)
        applied = manager.record(loid).obj.applications_by_version.get(v2, 0)
        duplicates += max(0, applied - 1)
    health = runtime.network.health_snapshot().get(LIMPING_HOST, {})
    return {
        "instances": len(loids),
        "wave_s": elapsed,
        "p50_s": _percentile(latencies, 0.50),
        "p99_s": _percentile(latencies, 0.99),
        "max_s": max(latencies),
        "duplicate_applications": duplicates,
        "quarantine_skips": runtime.network.count_value("relay.quarantine_skips"),
        "hedges": runtime.network.count_value("transport.hedges"),
        "hedge_wins": runtime.network.count_value("transport.hedge_wins"),
        "limper_quarantined": bool(health.get("quarantined")),
        "limper_score": health.get("score"),
    }


def _run_supervised(seed, detector_mode):
    """A supervised manager behind a gray link; count the failovers."""
    runtime = LegionRuntime(build_lan(6, seed=seed + 31))
    type_name = f"P7Sup{detector_mode.capitalize()}"
    journal = ManagerJournal(name=type_name)
    manager, __ = make_noop_manager(
        runtime,
        type_name,
        component_count=2,
        functions_per_component=2,
        journal=journal,
        host_name=MANAGER_HOST,
    )
    for index in range(2):
        runtime.sim.run_process(
            manager.create_instance(host_name=f"host{index + 1:02d}")
        )
    supervisor = Supervisor(
        runtime,
        type_name,
        standby_hosts=("host02", "host03"),
        detector_host_name="host04",
        detector_mode=detector_mode,
    ).start()
    base = runtime.sim.now
    runtime.network.faults.add_delay_rule(
        SlowLink(
            ["host04/"],
            ["host00/"],
            extra_s=0.3,
            jitter_s=0.03,
            seed=seed + 7,
            start=base + 2.0,
            end=base + 25.0,
            label="gray-manager-link",
        )
    )

    runtime.sim.run(until=base + 45.0)
    runtime.sim.run()
    promotions = supervisor.promotions
    supervisor.stop()
    return {
        "promotions": promotions,
        "suspicions": runtime.network.count_value("detector.suspicions"),
        "false_positives": runtime.network.count_value(
            "detector.false_positives"
        ),
        "authority_term": supervisor.manager.term,
        "authority_host": supervisor.manager.host.name,
    }


def run_p7(seed=0):
    """Run P7; returns an :class:`ExperimentResult`."""
    result = ExperimentResult(
        experiment_id="P7",
        title="Gray-failure tolerance: hedging + health-scored quarantine",
    )
    healthy = _run_wave(seed, "healthy")
    unhardened = _run_wave(seed, "unhardened")
    hardened = _run_wave(seed, "hardened")
    unhardened_ratio = unhardened["p99_s"] / healthy["p99_s"]
    hardened_ratio = hardened["p99_s"] / healthy["p99_s"]
    result.add(
        "healthy wave p99",
        "tree-routed wave, no faults",
        millis(healthy["p99_s"]),
        "ms",
        ok=True,
    )
    result.add(
        "unhardened wave p99, limping root relay",
        f">= {UNHARDENED_FLOOR:.0f}x healthy (gray damage is real)",
        millis(unhardened["p99_s"]),
        "ms",
        ok=unhardened_ratio >= UNHARDENED_FLOOR,
    )
    result.add(
        "hardened wave p99, limping root relay",
        f"<= {HARDENED_CEILING:.0f}x healthy (routed around)",
        millis(hardened["p99_s"]),
        "ms",
        ok=hardened_ratio <= HARDENED_CEILING,
    )
    result.add(
        "limping relay quarantined and skipped",
        "quarantine_skips >= 1",
        f"{hardened['quarantine_skips']}",
        "skip",
        ok=hardened["limper_quarantined"]
        and hardened["quarantine_skips"] >= 1,
    )
    duplicates = (
        healthy["duplicate_applications"]
        + unhardened["duplicate_applications"]
        + hardened["duplicate_applications"]
    )
    result.add(
        "duplicate applications across all waves",
        "0 (exactly-once under gray faults)",
        f"{duplicates}",
        "",
        ok=duplicates == 0,
    )
    fixed = _run_supervised(seed, "threshold")
    phi = _run_supervised(seed, "phi")
    result.add(
        "fixed-threshold detector: failovers of a live manager",
        ">= 1 (slow mistaken for dead)",
        f"{fixed['promotions']}",
        "failover",
        ok=fixed["promotions"] >= 1,
    )
    result.add(
        "phi-accrual detector: failovers of a live manager",
        "0 (slow is not dead)",
        f"{phi['promotions']}",
        "failover",
        ok=phi["promotions"] == 0 and phi["false_positives"] == 0,
    )
    result.extra = {
        "limp_factor": LIMP_FACTOR,
        "gray_extra_s": GRAY_EXTRA_S,
        "unhardened_floor": UNHARDENED_FLOOR,
        "hardened_ceiling": HARDENED_CEILING,
        "healthy": healthy,
        "unhardened": unhardened,
        "hardened": hardened,
        "unhardened_ratio": unhardened_ratio,
        "hardened_ratio": hardened_ratio,
        "fixed_detector": fixed,
        "phi_detector": phi,
    }
    return result
