"""A3 — ablation: calibration sensitivity.

EXPERIMENTS.md claims that no experiment's *conclusion* depends on the
fitted calibration constants.  This ablation tests that: the headline
orderings (DCDO evolution beats the baseline; cached beats uncached;
stale-binding discovery dwarfs DCDO client disruption) are re-measured
with each fitted constant halved and doubled.

A conclusion that flips under a 4x parameter swing would be an
artifact of calibration; none should.
"""

from dataclasses import replace

from repro.bench.harness import ExperimentResult
from repro.cluster import Calibration, build_centurion
from repro.core.policies import GeneralEvolutionPolicy
from repro.legion import LegionRuntime
from repro.workloads import build_component_version, make_noop_manager, synthetic_components

# The fitted constants and the swing applied to each.
PERTURBATIONS = [
    ("baseline", {}),
    ("component_link_s / 2", {"component_link_s": 0.045}),
    ("component_link_s x 2", {"component_link_s": 0.18}),
    ("download_chunk_process_s / 2", {"download_chunk_process_s": 0.1075}),
    ("download_chunk_process_s x 2", {"download_chunk_process_s": 0.43}),
    ("network_bandwidth / 2", {"network_bandwidth_bps": 100e6 / 16}),
    ("network_bandwidth x 2", {"network_bandwidth_bps": 100e6 / 4}),
    ("process_spawn_s / 2", {"process_spawn_s": 0.5}),
    ("process_spawn_s x 2", {"process_spawn_s": 2.0}),
]


def _measure_orderings(calibration, seed):
    """Measure the three headline orderings under one calibration.

    Returns a dict of named (smaller, larger) pairs that must satisfy
    smaller < larger for the conclusion to hold.
    """
    runtime = LegionRuntime(build_centurion(calibration=calibration, seed=seed))
    manager, __ = make_noop_manager(
        runtime,
        "A3Type",
        component_count=3,
        functions_per_component=5,
        evolution_policy=GeneralEvolutionPolicy(),
    )
    loid = runtime.sim.run_process(manager.create_instance(host_name="centurion01"))
    obj = manager.record(loid).obj
    client = runtime.make_client("centurion08")
    client.call_sync(loid, "ping", timeout_schedule=(600.0,))

    # DCDO evolution (cached component).
    cached = synthetic_components(1, 3, prefix="a3c-")
    variant = cached[0].variant_for_host(obj.host)
    obj.host.cache.insert(variant.blob_id, variant.size_bytes)
    version = build_component_version(manager, cached)
    start = runtime.sim.now
    runtime.sim.run_process(manager.evolve_instance(loid, version))
    dcdo_cached_s = runtime.sim.now - start

    # DCDO evolution (uncached 1 MB component).
    uncached = synthetic_components(1, 3, size_bytes=1_000_000, prefix="a3u-")
    version = build_component_version(manager, uncached)
    start = runtime.sim.now
    runtime.sim.run_process(manager.evolve_instance(loid, version))
    dcdo_uncached_s = runtime.sim.now - start

    # Baseline evolution (monolithic, 5.1 MB uncached) on a twin type.
    from repro.baseline import (
        MODERATE_IMPL_BYTES,
        BaselineEvolution,
        make_monolithic_implementation,
    )

    implementation = make_monolithic_implementation(
        "a3-mono-v1", function_count=15, size_bytes=MODERATE_IMPL_BYTES
    )
    for host in runtime.hosts.values():
        host.cache.insert(implementation.impl_id, implementation.size_bytes)
    klass = runtime.define_class("A3Mono", implementations=[implementation])
    mono_loid = runtime.sim.run_process(klass.create_instance(host_name="centurion02"))
    mono_client = runtime.make_client("centurion09")
    mono_client.call_sync(mono_loid, "fn_0000")
    evolution = BaselineEvolution(runtime, klass)
    evolution.publish_version(
        [
            make_monolithic_implementation(
                "a3-mono-v2",
                function_count=15,
                size_bytes=MODERATE_IMPL_BYTES,
                version_tag="2",
            )
        ]
    )
    report = runtime.sim.run_process(evolution.evolve_instance(mono_loid))
    start = runtime.sim.now
    mono_client.call_sync(mono_loid, "fn_0000")
    baseline_disruption_s = runtime.sim.now - start

    # DCDO client disruption across an evolution is just a normal call.
    start = runtime.sim.now
    client.call_sync(loid, "ping", timeout_schedule=(600.0,))
    dcdo_disruption_s = runtime.sim.now - start

    return {
        "dcdo-cached < dcdo-uncached": (dcdo_cached_s, dcdo_uncached_s),
        "dcdo-uncached < baseline total": (dcdo_uncached_s, report.total_s),
        "dcdo client disruption < baseline client disruption": (
            dcdo_disruption_s,
            baseline_disruption_s,
        ),
    }


def run_a3(seed=0):
    """Run A3; returns an :class:`ExperimentResult`."""
    result = ExperimentResult(
        experiment_id="A3",
        title="Calibration sensitivity: headline orderings under 4x swings",
    )
    for label, overrides in PERTURBATIONS:
        calibration = replace(Calibration(), **overrides) if overrides else Calibration()
        orderings = _measure_orderings(calibration, seed)
        for name, (smaller, larger) in orderings.items():
            holds = smaller < larger
            result.add(
                f"[{label}] {name}",
                "ordering holds",
                f"{smaller:.3f} < {larger:.3f}",
                "s",
                ok=holds,
            )
    return result
