"""E7 — evolving a DCDO vs evolving a normal Legion object (§4, table).

The paper's bottom line: "Even in these extreme cases, the performance
advantage of evolving objects on the fly and avoiding the stale
binding problem and the need for a full executable download, not to
mention state capture and recovery, are dramatic."

Workload: the same logical upgrade — replace one function's
implementation — applied to (a) a monolithic Legion object, paying the
full §4 pipeline plus per-client stale-binding discovery, and (b) a
DCDO, paying one management RPC plus a (cached / uncached) component
incorporation, with clients entirely undisturbed.
"""

from repro.bench.harness import ExperimentResult, seconds
from repro.baseline import (
    MODERATE_IMPL_BYTES,
    BaselineEvolution,
    make_monolithic_implementation,
)
from repro.cluster import build_centurion
from repro.core.policies import GeneralEvolutionPolicy
from repro.legion import LegionRuntime
from repro.workloads import build_component_version, make_noop_manager

STATE_BYTES = 1_000_000


def _v1_body(ctx):
    return "v1"


def _v2_body(ctx):
    return "v2"


def _run_baseline(runtime):
    """Evolve a monolithic object; returns (report, client_disruption)."""
    implementation = make_monolithic_implementation(
        "e7-mono-v1",
        function_count=50,
        size_bytes=MODERATE_IMPL_BYTES,
        functions={"behave": _v1_body},
        version_tag="1",
    )
    for host in runtime.hosts.values():
        host.cache.insert(implementation.impl_id, implementation.size_bytes)
    klass = runtime.define_class("E7Mono", implementations=[implementation])
    loid = runtime.sim.run_process(
        klass.create_instance(host_name="centurion01", state_bytes=STATE_BYTES)
    )
    client = runtime.make_client("centurion08")
    assert client.call_sync(loid, "behave") == "v1"

    evolution = BaselineEvolution(runtime, klass)
    new_implementation = make_monolithic_implementation(
        "e7-mono-v2",
        function_count=50,
        size_bytes=MODERATE_IMPL_BYTES,
        functions={"behave": _v2_body},
        version_tag="2",
    )
    evolution.publish_version([new_implementation])
    report = runtime.sim.run_process(evolution.evolve_instance(loid))
    disruption = runtime.sim.run_process(
        evolution.measure_client_disruption(loid, client, method="behave")
    )
    assert client.call_sync(loid, "behave") == "v2"
    return report, disruption


def _run_dcdo(runtime, cached):
    """Evolve a DCDO's function implementation; returns
    (object_side_seconds, client_disruption_seconds)."""
    suffix = "C" if cached else "U"
    manager, components = make_noop_manager(
        runtime,
        f"E7Dcdo{suffix}",
        component_count=5,
        functions_per_component=10,
        evolution_policy=GeneralEvolutionPolicy(),
    )
    from repro.core import ComponentBuilder

    behave_v1 = (
        ComponentBuilder(f"e7-behave-v1-{suffix}")
        .function("behave", _v1_body)
        .variant(size_bytes=MODERATE_IMPL_BYTES // 50)  # one component's share
        .build()
    )
    behave_v2 = (
        ComponentBuilder(f"e7-behave-v2-{suffix}")
        .function("behave", _v2_body)
        .variant(size_bytes=MODERATE_IMPL_BYTES // 50)
        .build()
    )
    v1 = build_component_version(manager, [behave_v1])
    manager.descriptor_of  # (documentation hook: v1 already instantiable)
    manager.set_current_version(v1)
    loid = runtime.sim.run_process(manager.create_instance(host_name="centurion02"))
    obj = manager.record(loid).obj
    client = runtime.make_client("centurion09")
    assert client.call_sync(loid, "behave") == "v1"

    manager.register_component(behave_v2)
    v2 = manager.derive_version(manager.instance_version(loid))
    manager.incorporate_into(v2, behave_v2.component_id)
    descriptor = manager.descriptor_of(v2)
    descriptor.enable("behave", behave_v2.component_id, replace_current=True)
    descriptor.remove_component(behave_v1.component_id)
    manager.mark_instantiable(v2)

    if cached:
        variant = behave_v2.variant_for_host(obj.host)
        obj.host.cache.insert(variant.blob_id, variant.size_bytes)

    start = runtime.sim.now
    runtime.sim.run_process(manager.evolve_instance(loid, v2))
    object_side = runtime.sim.now - start

    start = runtime.sim.now
    assert client.call_sync(loid, "behave") == "v2"
    disruption = runtime.sim.now - start
    return object_side, disruption


def run_e7(seed=0):
    """Run E7; returns an :class:`ExperimentResult`."""
    runtime = LegionRuntime(build_centurion(seed=seed))
    baseline_report, baseline_disruption = _run_baseline(runtime)
    dcdo_cached, dcdo_cached_disruption = _run_dcdo(runtime, cached=True)
    dcdo_uncached, dcdo_uncached_disruption = _run_dcdo(runtime, cached=False)

    result = ExperimentResult(
        experiment_id="E7",
        title="Evolving a normal Legion object vs a DCDO (same upgrade)",
    )
    result.add(
        "baseline: state capture",
        "state-size dependent",
        seconds(baseline_report.capture_s),
        "s",
        ok=baseline_report.capture_s > 0,
    )
    result.add(
        "baseline: executable download (5.1 MB)",
        "15-25",
        seconds(baseline_report.download_s),
        "s",
        ok=15.0 <= baseline_report.download_s <= 25.0,
    )
    result.add(
        "baseline: restart + restore + rebind",
        "seconds",
        seconds(baseline_report.restart_s),
        "s",
        ok=baseline_report.restart_s > 1.0,
    )
    result.add(
        "baseline: object-side total",
        "tens of seconds",
        seconds(baseline_report.total_s),
        "s",
        ok=baseline_report.total_s > 15.0,
    )
    result.add(
        "baseline: client disruption (stale binding)",
        "25-35",
        seconds(baseline_disruption),
        "s",
        ok=25.0 <= baseline_disruption <= 36.0,
    )
    result.add(
        "DCDO: evolve (component cached)",
        "< 0.5",
        seconds(dcdo_cached),
        "s",
        ok=dcdo_cached < 0.5,
    )
    result.add(
        "DCDO: evolve (component downloaded)",
        "download-dominated, << baseline",
        seconds(dcdo_uncached),
        "s",
        ok=dcdo_uncached < baseline_report.total_s,
    )
    worst_dcdo_disruption = max(dcdo_cached_disruption, dcdo_uncached_disruption)
    result.add(
        "DCDO: client disruption",
        "none (binding unchanged)",
        seconds(worst_dcdo_disruption),
        "s",
        ok=worst_dcdo_disruption < 1.0,
    )
    advantage = (baseline_report.total_s + baseline_disruption) / max(dcdo_cached, 1e-9)
    result.add(
        "end-to-end advantage (cached DCDO)",
        "dramatic",
        f"{advantage:.0f}x",
        "",
        ok=advantage > 50,
    )
    result.extra = {
        "baseline_phases": baseline_report.phases,
        "baseline_disruption_s": baseline_disruption,
        "dcdo_cached_s": dcdo_cached,
        "dcdo_uncached_s": dcdo_uncached,
    }
    return result
