"""E6 — DCDO evolution cost (§4 Cost, table + figure).

Paper: "the cost of evolving a DCDO from one implementation to another
is less than half a second, except for the case when new components
need to be incorporated.  When new components are incorporated, the
cost rises to levels roughly equivalent to the time necessary to
create a new object.  When the components are cached and available to
the DCDO that is evolving, the cost is approximately 200 microseconds
per component that needs to be added.  When the components need to be
downloaded ... the cost of evolution is dominated by the time needed
to download the component data."

Workload: evolve a DCDO through (a) DFM-only changes, (b) adding k
cached components, (c) adding uncached components of growing sizes.
"""

from repro.bench.harness import ExperimentResult, micros, seconds
from repro.cluster import build_centurion
from repro.legion import LegionRuntime
from repro.workloads import build_component_version, make_noop_manager, synthetic_components

CACHED_BATCHES = (1, 5, 10)
UNCACHED_SIZES = (64_000, 1_000_000, 5_000_000)


def _evolve_time(runtime, manager, loid, version):
    start = runtime.sim.now
    runtime.sim.run_process(manager.evolve_instance(loid, version))
    return runtime.sim.now - start


def run_e6(seed=0):
    """Run E6; returns an :class:`ExperimentResult`."""
    runtime = LegionRuntime(build_centurion(seed=seed))
    from repro.core.policies import GeneralEvolutionPolicy

    manager, base_components = make_noop_manager(
        runtime,
        "E6Type",
        component_count=5,
        functions_per_component=10,
        evolution_policy=GeneralEvolutionPolicy(),
    )
    loid = runtime.sim.run_process(manager.create_instance(host_name="centurion01"))
    obj = manager.record(loid).obj

    result = ExperimentResult(
        experiment_id="E6",
        title="Cost of evolving a DCDO",
    )

    # (a) DFM-only evolution: disable one function, export another off.
    version = manager.derive_version(manager.instance_version(loid))
    descriptor = manager.descriptor_of(version)
    first = base_components[0]
    names = [name for name in first.functions if name != "ping"]
    descriptor.disable(names[0], first.component_id)
    descriptor.set_exported(names[1], first.component_id, False)
    manager.mark_instantiable(version)
    dfm_only = _evolve_time(runtime, manager, loid, version)
    result.add(
        "enable/disable only (no new components)",
        "< 0.5",
        seconds(dfm_only),
        "s",
        ok=dfm_only < 0.5,
    )

    # (b) Adding cached components.  First measure one incorporation in
    # isolation (the paper's per-component number), then batch
    # evolutions whose slope gives the same marginal cost.
    probe = synthetic_components(1, 4, size_bytes=64_000, prefix="e6probe-")[0]
    ico_loid = manager.register_component(probe)
    variant = probe.variant_for_host(obj.host)
    obj.host.cache.insert(variant.blob_id, variant.size_bytes)
    start = runtime.sim.now
    runtime.sim.run_process(obj._incorporate(probe, ico_loid))
    direct_cost = runtime.sim.now - start
    result.add(
        "incorporate one cached component (at the object)",
        "~200",
        micros(direct_cost, digits=0),
        "us",
        ok=150e-6 <= direct_cost <= 450e-6,
    )

    batch_totals = {}
    for batch in CACHED_BATCHES:
        new_components = synthetic_components(
            batch, 4, size_bytes=64_000, prefix=f"e6c{batch}-"
        )
        # Pre-seed the instance host's cache: the "cached and
        # available" case.
        for component in new_components:
            variant = component.variant_for_host(obj.host)
            obj.host.cache.insert(variant.blob_id, variant.size_bytes)
        version = build_component_version(manager, new_components)
        batch_totals[batch] = _evolve_time(runtime, manager, loid, version)
        result.add(
            f"evolve adding {batch} cached component(s), total",
            "< 0.5",
            seconds(batch_totals[batch]),
            "s",
            ok=batch_totals[batch] < 0.5,
        )
    slope = (batch_totals[10] - batch_totals[1]) / 9
    result.add(
        "marginal cost per cached component (batch slope)",
        "~200",
        micros(slope, digits=0),
        "us",
        ok=100e-6 <= slope <= 600e-6,
    )
    per_component = {1: direct_cost}

    # (c) Uncached components: download-dominated, grows with size.
    uncached = {}
    for size in UNCACHED_SIZES:
        new_components = synthetic_components(1, 4, size_bytes=size, prefix=f"e6u{size}-")
        version = build_component_version(manager, new_components)
        uncached[size] = _evolve_time(runtime, manager, loid, version)
    result.add(
        "add 1 uncached 64 KB component",
        "download-dominated",
        seconds(uncached[64_000]),
        "s",
        ok=uncached[64_000] > 10 * per_component[1],
    )
    result.add(
        "add 1 uncached 1 MB component",
        "grows with size",
        seconds(uncached[1_000_000]),
        "s",
        ok=uncached[1_000_000] > uncached[64_000],
    )
    result.add(
        "add 1 uncached 5 MB component",
        "grows with size",
        seconds(uncached[5_000_000]),
        "s",
        ok=uncached[5_000_000] > uncached[1_000_000] > 0.5,
    )
    result.extra = {
        "dfm_only_s": dfm_only,
        "cached_direct_s": direct_cost,
        "cached_batch_totals_s": {str(k): v for k, v in batch_totals.items()},
        "cached_slope_s": slope,
        "uncached_s": {str(k): v for k, v in uncached.items()},
    }
    return result
