"""P5 — SLO-gated canary waves: tail latency, blast radius, rollback MTTR.

PR 3's transactional waves abort on *delivery* failures; they are blind
to a version that installs perfectly and then ruins the service.  This
experiment measures what the SLO gate (PR 6) buys against exactly that
failure mode, under live open-loop traffic:

- **Healthy rollout** — a well-behaved v2 ramps through the gate
  (12.5% → 50% → 100%) to adoption; client p99/p999 during the rollout
  stays within the SLO (continuous availability through evolution,
  §2.4, now measured at the tail).
- **Degraded rollout, gated** — a v2 with injected ping latency is
  caught at the canary stage: blast radius one instance of eight, the
  breach-triggered abort rolls it back, and the service is healthy
  again within seconds (rollback MTTR = breach → monitor healthy).
- **Degraded rollout, ungated** — the same v2 pushed with a plain
  converge wave: every delivery "succeeds", the whole fleet is
  infected, and the SLO stays breached until an operator notices.
"""

from repro.bench.harness import ExperimentResult, seconds
from repro.cluster import build_lan
from repro.core import ManagerJournal, RemovePolicy
from repro.core.policies import (
    CanaryWavePolicy,
    IncreasingVersionPolicy,
    run_canary_wave,
)
from repro.legion import LegionRuntime
from repro.net import RetryPolicy
from repro.obs import SLO, Timer
from repro.workloads import (
    OpenLoopLoad,
    PoissonArrivals,
    build_degraded_version,
    make_noop_manager,
)

INSTANCES = 8
MANAGER_HOST = "host00"
CLIENT_HOST = "host05"
RATE_HZ = 40.0
#: Injected ping latency of the degraded build — an order of magnitude
#: over the p99 objective, unmistakable within one bake window.
DEGRADED_LATENCY_S = 0.3
RAMP = CanaryWavePolicy(stages=(0.125, 0.5, 1.0), bake_s=8.0, check_interval_s=1.0)

FAST_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=30.0, max_attempts=8
)


def _slo():
    return SLO(
        name="svc",
        latency_targets={0.99: 0.200},
        max_error_rate=0.05,
        min_samples=30,
    )


def _build_fleet(seed, type_name, added_latency_s):
    """Gated-rollout fleet: multi-version policy + drain-based removal.

    A canary *is* a §3.5 multi-version deployment state, so the
    single-version policy would veto it; and rollback under live
    traffic needs the §3 thread-activity policy to drain briefly
    instead of erroring on busy components.
    """
    runtime = LegionRuntime(build_lan(6, seed=seed))
    journal = ManagerJournal(name=type_name)
    manager, __ = make_noop_manager(
        runtime,
        type_name,
        2,
        3,
        evolution_policy=IncreasingVersionPolicy(),
        remove_policy=RemovePolicy.timeout(2.0),
        journal=journal,
        host_name=MANAGER_HOST,
        propagation_retry_policy=FAST_RETRY,
    )
    loids = [
        runtime.sim.run_process(
            manager.create_instance(host_name=f"host{(index % 4) + 1:02d}")
        )
        for index in range(INSTANCES)
    ]
    v2 = build_degraded_version(manager, added_latency_s=added_latency_s)
    return runtime, manager, loids, v2


def _start_load(runtime, loids, monitor, timer):
    load = OpenLoopLoad(
        runtime.make_client(host_name=CLIENT_HOST),
        loids,
        PoissonArrivals(RATE_HZ),
        runtime.rng.stream("traffic"),
        monitor=monitor,
        timer=timer,
        duration_s=600.0,
    )
    load.start()
    return load


def _measure_healthy(seed):
    """Gated rollout of a well-behaved v2; tail latency through it."""
    runtime, manager, loids, v2 = _build_fleet(seed, "P5Healthy", 0.0)
    sim = runtime.sim
    monitor = runtime.network.slo_monitor("svc", slo=_slo(), window_s=6.0)
    before, during = Timer("p5.before"), Timer("p5.during")
    load = _start_load(runtime, loids, monitor, before)
    results = {}

    def scenario():
        yield sim.timeout(10.0)  # steady-state baseline window
        load.timer = during
        outcome = yield from run_canary_wave(
            runtime, manager.type_name, v2, RAMP,
            monitor=monitor, retry_policy=FAST_RETRY, deadline_s=300.0,
        )
        results["outcome"] = outcome
        results["rollout_s"] = sim.now - 10.0
        yield sim.timeout(3.0)  # drain in-flight calls
        load.stop()

    sim.run_process(scenario())
    sim.run()
    outcome = results["outcome"]
    assert outcome.completed, f"healthy rollout did not complete: {outcome}"
    assert manager.current_version == v2
    results["before_p99_s"] = before.percentile(0.99)
    results["before_p999_s"] = before.percentile(0.999)
    results["during_p99_s"] = during.percentile(0.99)
    results["during_p999_s"] = during.percentile(0.999)
    results["admitted"] = outcome.admitted
    results["error_rate"] = load.error_rate()
    results["outcome"] = None  # not JSON-serializable
    return results


def _measure_gated(seed):
    """Gated rollout of the degraded v2: breach, blast radius, MTTR."""
    runtime, manager, loids, v2 = _build_fleet(
        seed + 100, "P5Gated", DEGRADED_LATENCY_S
    )
    v1 = manager.current_version
    sim = runtime.sim
    monitor = runtime.network.slo_monitor("svc", slo=_slo(), window_s=6.0)
    load = _start_load(runtime, loids, monitor, None)
    results = {}

    def scenario():
        yield sim.timeout(5.0)
        outcome = yield from run_canary_wave(
            runtime, manager.type_name, v2, RAMP,
            monitor=monitor, retry_policy=FAST_RETRY, deadline_s=300.0,
        )
        results["breached"] = outcome.breached
        results["admitted"] = outcome.admitted
        results["blast_radius"] = outcome.blast_radius
        # MTTR: first healthy evaluation after the breach, with the
        # rollback done — traffic keeps flowing, so the window refills.
        deadline = sim.now + 120.0
        healthy_at = None
        while sim.now < deadline:
            status = monitor.evaluate()
            if status.healthy and not status.insufficient:
                healthy_at = sim.now
                break
            yield sim.timeout(0.5)
        results["healthy_at"] = healthy_at
        load.stop()

    sim.run_process(scenario())
    sim.run()
    assert results["breached"], "gate never fired on the degraded build"
    assert results["healthy_at"] is not None, "service never recovered"
    assert all(
        manager.record(loid).obj.version == v1 for loid in loids
    ), "rollback left instances on the degraded version"
    breach_at = monitor.breach_log[0][0]
    results["mttr_s"] = results["healthy_at"] - breach_at
    results["breach_at"] = breach_at
    results.pop("healthy_at")
    results["infected"] = results["admitted"]
    return results


def _measure_ungated(seed):
    """The same degraded v2 through a plain converge wave: no gate."""
    runtime, manager, loids, v2 = _build_fleet(
        seed + 200, "P5Ungated", DEGRADED_LATENCY_S
    )
    sim = runtime.sim
    monitor = runtime.network.slo_monitor("svc", slo=_slo(), window_s=6.0)
    load = _start_load(runtime, loids, monitor, None)
    results = {}

    def scenario():
        yield sim.timeout(5.0)
        yield from manager.propagate_version(v2, retry_policy=FAST_RETRY)
        yield sim.timeout(10.0)  # let the damage register on the SLO
        results["healthy_after"] = monitor.healthy()
        load.stop()

    sim.run_process(scenario())
    sim.run()
    infected = sum(
        1 for loid in loids if manager.record(loid).obj.version == v2
    )
    results["infected"] = infected
    results["blast_radius"] = infected / len(loids)
    results["breaches"] = len(monitor.breach_log)
    return results


def run_p5(seed=0):
    """Run P5; returns an :class:`ExperimentResult`."""
    result = ExperimentResult(
        experiment_id="P5",
        title="SLO-gated canary waves: blast radius and rollback MTTR",
    )
    healthy = _measure_healthy(seed)
    result.add(
        "healthy rollout ramps to full adoption",
        f"{INSTANCES}/{INSTANCES} instances, gate never fires",
        f"{healthy['admitted']}/{INSTANCES}",
        "",
        ok=healthy["admitted"] == INSTANCES,
    )
    result.add(
        "client p99 during healthy rollout",
        "<= 0.200 (SLO objective holds through evolution)",
        seconds(healthy["during_p99_s"]),
        "s",
        ok=healthy["during_p99_s"] <= 0.200,
    )
    gated = _measure_gated(seed)
    result.add(
        "gated degraded rollout: blast radius",
        "canary only (1/8 = 0.125)",
        f"{gated['blast_radius']:.3f}",
        "",
        ok=gated["infected"] == 1 and gated["breached"],
    )
    result.add(
        "gated rollback MTTR (breach -> healthy)",
        "seconds, not operator-hours",
        seconds(gated["mttr_s"]),
        "s",
        ok=0.0 < gated["mttr_s"] <= 60.0,
    )
    ungated = _measure_ungated(seed)
    result.add(
        "ungated degraded rollout: blast radius",
        "1.0 (whole fleet infected)",
        f"{ungated['blast_radius']:.3f}",
        "",
        ok=ungated["infected"] == INSTANCES and not ungated["healthy_after"],
    )
    result.extra = {
        "instances": INSTANCES,
        "rate_hz": RATE_HZ,
        "degraded_latency_s": DEGRADED_LATENCY_S,
        "stages": list(RAMP.stages),
        "bake_s": RAMP.bake_s,
        "healthy": healthy,
        "gated": gated,
        "ungated": ungated,
    }
    return result
