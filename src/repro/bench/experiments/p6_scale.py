"""P6 — simulator-kernel and object-runtime scale: 100k live DCDOs.

This PR's question is about the substrate itself: how many live
objects can one simulated deployment hold, and how fast does the
kernel move events, before the tooling (not the modelled system)
becomes the bottleneck?  Three mechanisms carry the answer:

- **Calendar scheduler** — the kernel's pending-event set is a
  bucketed calendar queue with O(1) common-case push/pop and lazy
  cancellation, replacing the binary heap whose ``O(log n)`` sift
  costs grow with backlog depth.
- **Batch-aware transport** — a message send computes its egress
  serialization and arrival instant arithmetically and joins a shared
  per-instant arrival batch: one kernel event per (arrival time) wave
  instead of one spawned delivery process (plus semaphore round-trip
  and two timers) per message.
- **Announcement waves + host-local binding** — a fleet-wide evolution
  ships constant-size version announcements down a k-ary relay tree;
  each relay enumerates its colocated instances from the runtime's
  per-host index and resolves their bindings host-locally, so no
  per-instance traffic funnels through any central port.

Measured here:

1. *Throughput A/B* — an identical 200k-message storm over 10k ports
   driven once on the pre-PR stack (heap scheduler + per-message
   delivery process, reproduced below) and once on the current stack.
   The gate is >= 5x wall-clock throughput.
2. *Kernel micro A/B* — pure scheduler push/pop churn against a deep
   backlog, heap vs calendar (informational: isolates the scheduler's
   share of the win).
3. *Wave flatness* — fleets of 1k/10k/100k instances at a fixed 64
   instances per host; one v1 -> v2 announcement wave each.  The gate
   is wave latency flat (±20%) from the smallest to the largest fleet.
"""

import time

from repro.bench.harness import ExperimentResult, millis
from repro.cluster import deploy_relays
from repro.cluster.testbed import build_lan
from repro.core import ComponentBuilder
from repro.legion import LegionRuntime
from repro.net import Message, Network
from repro.net.fabric import DEFAULT_BANDWIDTH_BPS, DEFAULT_LATENCY_S
from repro.sim import Semaphore, Simulator
from repro.sim.scheduler import CalendarScheduler, HeapScheduler
from repro.workloads import make_noop_manager

# Storm A/B: 10k endpoints exchange 20 rounds of messages.
STORM_PORTS = 10_000
STORM_ROUNDS = 20
STORM_INTERVAL_S = 0.010
STORM_PAYLOAD_BYTES = 256

# Kernel micro A/B: churn against a standing backlog.
MICRO_BACKLOG = 10_000
MICRO_CHURN = 200_000

# Fleet waves: fixed instances-per-host, so host count scales with the
# fleet and the wave measures per-host work + tree depth, not density.
SCALES = (1_024, 10_240, 102_400)
INSTANCES_PER_HOST = 64
WINDOW = 32
UPGRADE_BYTES = 4_096

SPEEDUP_FLOOR = 5.0
FLATNESS_TOLERANCE = 0.20


def tree_fanout(hosts):
    """Fan-out keeping the announcement tree at constant depth.

    ``k = ceil(sqrt(hosts - 1))`` covers ``k*k`` hosts below the root
    in two levels (k range heads, each fanning to singletons), so the
    tree is depth <= 3 at every ladder scale.  A fleet deployment picks
    its fan-out from its size exactly like this; with per-hop bytes
    already constant (roster-range bundles, aggregated acks), constant
    depth is what makes wave latency measure per-level costs rather
    than fleet size.
    """
    import math

    below = max(hosts - 1, 1)
    k = math.isqrt(below)
    if k * k < below:
        k += 1
    return max(2, k)


def _noop_body(ctx):
    return None


# ----------------------------------------------------------------------
# Part 1: message-storm throughput, pre-PR stack vs current stack
# ----------------------------------------------------------------------


class _LegacyPort:
    """The pre-PR port: egress serialized by holding a semaphore."""

    def __init__(self, sim, address, bandwidth_bps):
        self._sim = sim
        self.address = address
        self._bandwidth_bps = bandwidth_bps
        self._egress = Semaphore(sim, permits=1, name=f"{address}.egress")
        self.messages_received = 0

    def transmit(self, message):
        yield self._egress.acquire()
        try:
            yield self._sim.timeout(message.wire_bytes / self._bandwidth_bps)
        finally:
            self._egress.release()

    def deliver(self, message):
        self.messages_received += 1


class _LegacyFabric:
    """The pre-PR delivery path, reproduced for the A/B measurement.

    Every ``send`` spawns a delivery process that acquires the source
    port's egress semaphore, sleeps the transmission time, sleeps the
    propagation latency, and hands the message over — the per-message
    cost profile the batch-aware transport replaced.
    """

    def __init__(self, sim, latency_s=DEFAULT_LATENCY_S, bandwidth_bps=DEFAULT_BANDWIDTH_BPS):
        self._sim = sim
        self._latency_s = latency_s
        self._bandwidth_bps = bandwidth_bps
        self._ports = {}

    def attach(self, address):
        port = _LegacyPort(self._sim, address, self._bandwidth_bps)
        self._ports[address] = port
        return port

    def send(self, message):
        return self._sim.spawn(
            self._deliver(message), name=f"deliver#{message.message_id}"
        )

    def _deliver(self, message):
        yield from self._ports[message.source].transmit(message)
        yield self._sim.timeout(self._latency_s)
        self._ports[message.destination].deliver(message)


def _storm_peer(port_index, round_index):
    """Deterministic peer choice, identical on both stacks."""
    peer = (port_index * 31 + round_index * 7_919) % STORM_PORTS
    if peer == port_index:
        peer = (peer + 1) % STORM_PORTS
    return peer


def _storm_driver(sim, send):
    for round_index in range(STORM_ROUNDS):
        for port_index in range(STORM_PORTS):
            send(
                Message(
                    source=f"port{port_index}",
                    destination=f"port{_storm_peer(port_index, round_index)}",
                    payload=None,
                    size_bytes=STORM_PAYLOAD_BYTES,
                )
            )
        yield sim.timeout(STORM_INTERVAL_S)


def _run_storm(stack):
    """Drive the identical storm on one stack; returns the numbers.

    ``stack`` is ``"legacy"`` (heap scheduler + per-message delivery
    process) or ``"current"`` (calendar scheduler + batched arrivals).
    """
    if stack == "legacy":
        sim = Simulator(scheduler=HeapScheduler())
        fabric = _LegacyFabric(sim)
        received = lambda: sum(p.messages_received for p in fabric._ports.values())
    else:
        sim = Simulator()
        fabric = Network(sim)
        received = lambda: fabric.stats.messages_delivered
    for port_index in range(STORM_PORTS):
        fabric.attach(f"port{port_index}")
    sim.spawn(_storm_driver(sim, fabric.send))
    started = time.perf_counter()
    sim.run()
    wall_s = time.perf_counter() - started
    messages = STORM_PORTS * STORM_ROUNDS
    assert received() == messages, f"{stack}: {received()} != {messages}"
    return {
        "wall_s": wall_s,
        "events": sim.processed_events,
        "events_per_s": sim.processed_events / wall_s,
        "messages": messages,
        "messages_per_s": messages / wall_s,
    }


# ----------------------------------------------------------------------
# Part 2: pure-kernel scheduler churn, heap vs calendar
# ----------------------------------------------------------------------


def _run_micro(scheduler):
    """Push/pop churn with a deep standing backlog; returns the numbers."""
    sim = Simulator(scheduler=scheduler)
    for index in range(MICRO_BACKLOG):
        # A standing far-future backlog gives the queue real depth.
        sim.timeout(3_600.0 + index, daemon=True)

    def churn():
        for index in range(MICRO_CHURN):
            yield sim.timeout(0.001 if index % 8 else 0.010)

    sim.spawn(churn())
    started = time.perf_counter()
    sim.run(until=3_000.0)
    wall_s = time.perf_counter() - started
    return {
        "wall_s": wall_s,
        "events": sim.processed_events,
        "events_per_s": sim.processed_events / wall_s,
    }


# ----------------------------------------------------------------------
# Part 3: fleet-wide announcement waves at 1k / 10k / 100k instances
# ----------------------------------------------------------------------


def _build_fleet(seed, scale):
    """A manager with ``scale`` v1 instances at 64 per host, v2 staged.

    Both the v1 components and the v2 upgrade blob are pre-seeded into
    every host cache: with instances-per-host fixed, host count grows
    with the fleet, and uncached fetches against one ICO port would
    re-introduce exactly the central O(hosts) serialization this
    experiment exists to rule out.
    """
    host_count = scale // INSTANCES_PER_HOST
    runtime = LegionRuntime(build_lan(host_count, seed=seed))
    manager, components = make_noop_manager(
        runtime, f"P6Fleet{scale}", component_count=2, functions_per_component=2
    )
    host_names = sorted(runtime.hosts)
    for host in runtime.hosts.values():
        for component in components:
            variant = component.variant_for_host(host)
            host.cache.insert(variant.blob_id, variant.size_bytes)
    def build_driver():
        # One driver process creating the whole fleet sequentially:
        # measurably cheaper than one ``run_process`` per instance
        # (each pays kernel start/stop bookkeeping) and cheaper than a
        # concurrency window (whose extra event churn costs more than
        # the contention it avoids — creates serialize on host CPU and
        # ICO ports anyway).
        for index in range(scale):
            yield from manager.create_instance(
                host_name=host_names[index % host_count]
            )

    runtime.sim.run_process(build_driver())
    builder = ComponentBuilder("upgrade")
    builder.function("upgrade_fn", _noop_body)
    builder.variant(size_bytes=UPGRADE_BYTES)
    upgrade = builder.build()
    manager.register_component(upgrade)
    for host in runtime.hosts.values():
        variant = upgrade.variant_for_host(host)
        host.cache.insert(variant.blob_id, variant.size_bytes)
    v2 = manager.derive_version(manager.current_version)
    manager.incorporate_into(v2, "upgrade")
    manager.descriptor_of(v2).enable("upgrade_fn", "upgrade")
    manager.mark_instantiable(v2)
    manager.set_current_version(v2)
    return runtime, manager, v2


def _run_wave(seed, scale):
    """Build the fleet, drive one announcement wave; returns the numbers."""
    build_started = time.perf_counter()
    runtime, manager, v2 = _build_fleet(seed, scale)
    build_wall_s = time.perf_counter() - build_started
    fanout_k = tree_fanout(len(runtime.hosts))
    manager.use_relays(
        deploy_relays(runtime), fanout_k=fanout_k, announce=True
    )
    events_before = runtime.sim.processed_events
    resolves_before = runtime.binding_agent.resolutions_served
    started = runtime.sim.now
    wall_started = time.perf_counter()
    tracker = runtime.sim.run_process(manager.propagate_version(v2, window=WINDOW))
    wall_s = time.perf_counter() - wall_started
    wave_s = runtime.sim.now - started
    assert tracker.complete and tracker.all_acked, tracker.summary()
    for loid in manager.instance_loids():
        assert manager.instance_version(loid) == v2
    events = runtime.sim.processed_events - events_before
    return {
        "instances": scale,
        "hosts": len(runtime.hosts),
        "tree_fanout": fanout_k,
        "wave_s": wave_s,
        "wall_s": wall_s,
        "build_wall_s": build_wall_s,
        "events": events,
        "events_per_s": events / wall_s if wall_s else 0.0,
        "announce_waves": runtime.network.count_value("relay.announce_waves"),
        "local_binds": runtime.network.count_value("relay.local_binds"),
        "fallback_instances": runtime.network.count_value(
            "relay.fallback_instances"
        ),
        "binding_agent_resolves": runtime.binding_agent.resolutions_served
        - resolves_before,
    }


def run_p6(seed=0, scales=SCALES):
    """Run P6; returns an :class:`ExperimentResult`.

    ``scales`` lets CI smoke runs measure a reduced ladder (e.g. 1k
    and 10k only); the regression gate's instance floor is supplied
    separately (see ``benchmarks/check_regression.py --scale-floor``).
    """
    scales = tuple(sorted(scales))
    if not scales:
        raise ValueError("need at least one fleet scale")
    result = ExperimentResult(
        experiment_id="P6",
        title="Kernel + runtime scale: 100k live DCDOs on one host",
    )

    legacy = _run_storm("legacy")
    current = _run_storm("current")
    speedup = legacy["wall_s"] / current["wall_s"]
    result.add(
        f"storm: pre-PR stack, {legacy['messages']} msgs",
        "baseline",
        f"{legacy['messages_per_s']:,.0f}",
        "msg/s",
    )
    result.add(
        f"storm: current stack, {current['messages']} msgs",
        f">= {SPEEDUP_FLOOR:.0f}x baseline",
        f"{current['messages_per_s']:,.0f}",
        "msg/s",
        ok=speedup >= SPEEDUP_FLOOR,
    )
    result.add(
        "storm speedup, identical workload",
        f">= {SPEEDUP_FLOOR:.0f}x",
        f"{speedup:.2f}",
        "x",
        ok=speedup >= SPEEDUP_FLOOR,
    )

    heap = _run_micro(HeapScheduler())
    calendar = _run_micro(CalendarScheduler())
    micro_ratio = calendar["events_per_s"] / heap["events_per_s"]
    result.add(
        "kernel churn: heap vs calendar",
        "> 1x (informational)",
        f"{micro_ratio:.2f}",
        "x",
        ok=micro_ratio > 1.0,
    )

    waves = {}
    for scale in scales:
        wave = _run_wave(seed, scale)
        waves[scale] = wave
        result.add(
            f"{scale} instances / {wave['hosts']} hosts: announce wave",
            "flat across scales",
            millis(wave["wave_s"]),
            "ms",
        )
        # Build cost is harness overhead, not wave cost: report it on
        # its own row so a 60 s fleet build never reads as wave time.
        result.add(
            f"{scale} instances: fleet build (excluded from wave)",
            "reported separately",
            f"{wave['build_wall_s']:.1f}",
            "s",
        )
        result.add(
            f"{scale} instances: binding-agent resolves during wave",
            f"<= {wave['hosts']} hosts (none per instance)",
            f"{wave['binding_agent_resolves']}",
            "rpc",
            ok=wave["binding_agent_resolves"] <= wave["hosts"]
            and wave["fallback_instances"] == 0,
        )
    smallest, largest = scales[0], scales[-1]
    flatness = waves[largest]["wave_s"] / waves[smallest]["wave_s"]
    result.add(
        f"wave flatness, {largest} vs {smallest} instances",
        f"within ±{FLATNESS_TOLERANCE:.0%}",
        f"{flatness:.3f}",
        "x",
        ok=abs(flatness - 1.0) <= FLATNESS_TOLERANCE,
    )
    result.add(
        "live instances, largest fleet",
        "100,000+ at full ladder",
        f"{largest}",
        "objects",
    )
    result.extra = {
        "instances_per_host": INSTANCES_PER_HOST,
        "window": WINDOW,
        "tree_fanout": {
            str(scale): data["tree_fanout"] for scale, data in waves.items()
        },
        "speedup_floor": SPEEDUP_FLOOR,
        "flatness_tolerance": FLATNESS_TOLERANCE,
        "storm": {"legacy": legacy, "current": current, "speedup": speedup},
        "kernel_micro": {"heap": heap, "calendar": calendar, "ratio": micro_ratio},
        "max_instances": largest,
        "wave_flatness": flatness,
        "scales": {str(scale): data for scale, data in waves.items()},
    }
    return result
