"""P1 — invocation fast path: interface leases and request batching.

The seed's defensive-call discipline pays for safety in round trips:
``supports()``/``check_first`` re-queried the interface before every
invocation (``getInterface`` + ``getVersion`` + the call itself — three
RPCs per defensive call).  The fast path claws those back in two steps:

- the coalesced ``getStatus`` RPC folds interface + version + epoch
  into one round trip (cold lease: two RPCs per defensive call);
- the epoch-coherent lease serves ``check_first`` from cache while the
  piggybacked epoch proves the configuration unchanged (warm lease:
  one RPC per defensive call — the §3.1/§3.5 semantics ride on the
  epoch check plus the disappearance-retry backstop).

The second half measures transport batching: concurrent callers
sharing one endpoint coalesce same-destination requests behind a small
flush window, cutting wire messages (and per-message header bytes)
without giving up much closed-loop throughput.
"""

from repro.bench.harness import ExperimentResult
from repro.cluster import build_centurion
from repro.core.stub import DCDOStub
from repro.legion import LegionRuntime
from repro.workloads import ClosedLoopClient, make_noop_manager, run_clients

CALLS = 40
LEASE_TTL_S = 5.0
BATCH_CLIENTS = 8
BATCH_CALLS = 50
BATCH_WINDOW_S = 0.0002


def _build_target(seed, type_name):
    runtime = LegionRuntime(build_centurion(seed=seed))
    manager, __ = make_noop_manager(
        runtime, type_name, component_count=10, functions_per_component=10
    )
    loid = runtime.sim.run_process(manager.create_instance(host_name="centurion01"))
    return runtime, loid


def _rpcs_per_call(client, calls, body):
    def loop():
        for __ in range(calls):
            yield from body()

    before = client.invoker.stats.invocations
    client.sim.run_process(loop())
    return (client.invoker.stats.invocations - before) / calls


def _measure_round_trips(seed):
    runtime, loid = _build_target(seed, "P1Fast")
    client = runtime.make_client("centurion08")

    # Seed discipline: query interface and version, then call (3 RPCs).
    seed_stub = DCDOStub(client, loid)

    def seed_call():
        yield from seed_stub.fetch_interface()
        yield from seed_stub.fetch_version()
        yield from seed_stub.call("ping", 1)

    seed_rpcs = _rpcs_per_call(client, CALLS, seed_call)

    # Coalesced refresh, no lease: getStatus + call (2 RPCs).
    cold_stub = DCDOStub(client, loid)
    cold_rpcs = _rpcs_per_call(
        client, CALLS, lambda: cold_stub.call("ping", 1, check_first=True)
    )

    # Warm epoch-coherent lease: the check is answered from cache (1 RPC).
    lease_stub = DCDOStub(client, loid, lease_ttl_s=LEASE_TTL_S)
    runtime.sim.run_process(lease_stub.call("ping", 1, check_first=True))
    warm_rpcs = _rpcs_per_call(
        client, CALLS, lambda: lease_stub.call("ping", 1, check_first=True)
    )
    return {
        "seed_rpcs_per_call": seed_rpcs,
        "cold_rpcs_per_call": cold_rpcs,
        "warm_rpcs_per_call": warm_rpcs,
        "lease_hits": lease_stub.lease_hits,
        "lease_misses": lease_stub.lease_misses,
        "binding_hits": client.invoker.stats.binding_hits,
        "binding_misses": client.invoker.stats.binding_misses,
        "epoch_observations": client.invoker.stats.epoch_observations,
    }


def _measure_throughput(seed, batching):
    runtime, loid = _build_target(seed, "P1Batch")
    client = runtime.make_client("centurion08")
    if batching:
        client.endpoint.configure_batching(BATCH_WINDOW_S)
    loops = [
        ClosedLoopClient(client, loid, "ping", args=(1,), calls=BATCH_CALLS)
        for __ in range(BATCH_CLIENTS)
    ]
    messages_before = runtime.network.stats.messages_delivered
    started = runtime.sim.now
    run_clients(runtime, loops)
    elapsed = runtime.sim.now - started
    calls = sum(loop.completed_calls for loop in loops)
    assert calls == BATCH_CLIENTS * BATCH_CALLS, [loop.errors for loop in loops]
    wire_messages = runtime.network.stats.messages_delivered - messages_before
    return {
        "throughput_calls_per_s": calls / elapsed,
        "wire_messages_per_call": wire_messages / calls,
        "mean_latency_ms": sum(
            loop.mean_latency() for loop in loops
        ) / len(loops) * 1e3,
        "batches_sent": runtime.network.count_value("transport.batches_sent"),
        "batched_messages": runtime.network.count_value("transport.batched_messages"),
    }


def run_p1(seed=0):
    """Run P1; returns an :class:`ExperimentResult`."""
    result = ExperimentResult(
        experiment_id="P1",
        title="Invocation fast path: interface leases and request batching",
    )
    trips = _measure_round_trips(seed)
    unbatched = _measure_throughput(seed, batching=False)
    batched = _measure_throughput(seed, batching=True)

    result.add(
        "seed discipline: RPCs per defensive call",
        "3 (query interface + version + call)",
        f"{trips['seed_rpcs_per_call']:.2f}",
        "rpc",
        ok=trips["seed_rpcs_per_call"] >= 2.9,
    )
    result.add(
        "cold lease (coalesced getStatus): RPCs per call",
        "2",
        f"{trips['cold_rpcs_per_call']:.2f}",
        "rpc",
        ok=trips["cold_rpcs_per_call"] <= 2.1,
    )
    result.add(
        "warm lease: RPCs per call",
        "1",
        f"{trips['warm_rpcs_per_call']:.2f}",
        "rpc",
        ok=trips["warm_rpcs_per_call"] <= 1.1,
    )
    speedup = trips["seed_rpcs_per_call"] / trips["warm_rpcs_per_call"]
    result.add(
        "round-trip reduction, warm lease vs seed",
        ">= 2x",
        f"{speedup:.1f}",
        "x",
        ok=speedup >= 2.0,
    )
    result.add(
        "lease hits during warm phase",
        f"{CALLS}",
        str(trips["lease_hits"]),
        "hits",
        ok=trips["lease_hits"] >= CALLS,
    )
    result.add(
        "wire messages per call, unbatched",
        "2 (request + reply)",
        f"{unbatched['wire_messages_per_call']:.2f}",
        "msg",
        ok=unbatched["wire_messages_per_call"] >= 1.9,
    )
    result.add(
        "wire messages per call, batched",
        "< unbatched",
        f"{batched['wire_messages_per_call']:.2f}",
        "msg",
        ok=batched["wire_messages_per_call"]
        < unbatched["wire_messages_per_call"],
    )
    ratio = (
        batched["throughput_calls_per_s"] / unbatched["throughput_calls_per_s"]
    )
    result.add(
        "batched throughput vs unbatched",
        "no regression (>= 1x)",
        f"{ratio:.2f}",
        "x",
        ok=ratio >= 0.999,
    )
    result.extra = {
        "round_trips": trips,
        "throughput": {
            "clients": BATCH_CLIENTS,
            "calls_per_client": BATCH_CALLS,
            "flush_window_s": BATCH_WINDOW_S,
            "unbatched": unbatched,
            "batched": batched,
        },
    }
    return result
