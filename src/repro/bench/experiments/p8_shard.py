"""P8 — sharded manager plane: wave throughput scales with shards.

Every prior PR hardened the paper's one-manager-per-type authority
without removing it as a bottleneck: a full-fleet evolution wave
serializes every update RPC through one manager object on one host
port.  PR 9 shards the DCDO table behind a replicated partition map;
this experiment measures what that buys and what it must not cost:

1. *Shard-scaling ladder* — ONE 10,240-instance fleet is built under
   8 shards, then merged live (``merge_shards``, the same handoff path
   clients race against) down the ladder 8 -> 4 -> 2 -> 1.  At each
   rung a fresh upgrade component is configured plane-wide and a full
   windowed wave drives every instance to the new version; throughput
   is instances per *simulated* second.  The fleet is built once and
   reused across rungs — build cost is reported on its own row, never
   inside a wave.  Gates: >= 3x throughput at 4 shards vs 1, and
   per-shard efficiency >= 0.8 (4 shards must deliver >= 80% of
   4x-linear).
2. *Single-shard recovery* — at the 8-shard stage one shard's manager
   is killed and rebuilt via :func:`recover_manager` from its own
   journal.  The gate is blast-radius: replay touches only the failed
   shard's journal (~1/8 of the plane's entries), not a fleet-wide
   log.
3. *Live split mid-wave* — at the 1-shard end, a wave is launched
   asynchronously and ``split_shard`` fires while it is in flight, so
   the handoff copies rows whose updates are concurrently being
   applied.  Gates: zero instances lost, every instance reaches the
   new version, and no instance applies it twice (map-commit-ordered
   handoff + version-id idempotence).
"""

import time

from repro.bench.harness import ExperimentResult, millis
from repro.cluster.testbed import build_lan
from repro.core import ComponentBuilder
from repro.core.recovery import recover_manager
from repro.core.shardplane import ShardedManagerPlane
from repro.legion import LegionRuntime
from repro.workloads import synthetic_components

FLEET = 10_240
INSTANCES_PER_HOST = 64
WINDOW = 32
SHARD_LADDER = (8, 4, 2, 1)
UPGRADE_BYTES = 4_096

SCALING_FLOOR = 3.0  # throughput(4 shards) / throughput(1 shard)
EFFICIENCY_FLOOR = 0.8  # per-shard efficiency at 4 shards vs 1
#: The failed shard's journal share of all plane entries; at 8 even
#: shards the expected share is ~0.125, gated with headroom.
RECOVERY_SHARE_CEILING = 0.25


def _noop_body(ctx):
    return None


def _cache_component(runtime, component):
    for host in runtime.hosts.values():
        variant = component.variant_for_host(host)
        host.cache.insert(variant.blob_id, variant.size_bytes)


def _build_plane(seed, fleet, shard_count):
    """One plane, ``fleet`` v1 instances spread at 64 per host.

    Components (and every later upgrade blob) are pre-seeded into each
    host cache so waves measure update fan-out, not ICO fetch traffic
    — the same discipline as P6.
    """
    host_count = fleet // INSTANCES_PER_HOST
    runtime = LegionRuntime(build_lan(host_count, seed=seed))
    host_names = sorted(runtime.hosts)
    shard_hosts = {k: host_names[k] for k in range(shard_count)}
    plane = ShardedManagerPlane(
        runtime, "P8Fleet", shard_count=shard_count, shard_hosts=shard_hosts
    )
    components = synthetic_components(
        2, 2, size_bytes=UPGRADE_BYTES, prefix="p8fleet-"
    )
    for component in components:
        plane.register_component(component)
        _cache_component(runtime, component)
    v1 = plane.new_version()
    for component in components:
        plane.incorporate_into(v1, component.component_id)
        for name in component.functions:
            plane.enable_function(v1, name, component.component_id)
    plane.mark_instantiable(v1)
    plane.set_current_version(v1)

    def build_driver():
        # One sequential driver process, as in P6: cheaper than
        # per-instance run_process bookkeeping or a concurrency
        # window's event churn.
        for index in range(fleet):
            yield from plane.create_instance(
                host_name=host_names[index % host_count]
            )

    runtime.sim.run_process(build_driver())
    return runtime, plane


def _stage_upgrade(runtime, plane, tag):
    """Register a fresh pre-cached upgrade, configure it plane-wide."""
    builder = ComponentBuilder(f"upgrade-{tag}")
    builder.function(f"up_{tag}_fn", _noop_body)
    builder.variant(size_bytes=UPGRADE_BYTES)
    upgrade = builder.build()
    plane.register_component(upgrade)
    _cache_component(runtime, upgrade)
    version = plane.derive_version(plane.current_version)
    plane.incorporate_into(version, upgrade.component_id)
    plane.enable_function(version, f"up_{tag}_fn", upgrade.component_id)
    plane.mark_instantiable(version)
    plane.set_current_version(version)
    return version


def _drive_wave(runtime, plane, version):
    """Full-fleet windowed wave; returns the rung's numbers."""
    sim = runtime.sim
    events_before = sim.processed_events
    started = sim.now
    wall_started = time.perf_counter()
    trackers = sim.run_process(plane.propagate_version(version, window=WINDOW))
    wall_s = time.perf_counter() - wall_started
    wave_s = sim.now - started
    for shard_id, tracker in trackers.items():
        assert tracker.complete and tracker.all_acked, (
            f"s{shard_id}: {tracker.summary()}"
        )
    loids = plane.instance_loids()
    for loid in loids:
        assert plane.instance_version(loid) == version
    return {
        "shards": len(plane.shard_ids),
        "instances": len(loids),
        "wave_s": wave_s,
        "wall_s": wall_s,
        "events": sim.processed_events - events_before,
        "throughput_per_s": len(loids) / wave_s if wave_s else 0.0,
    }


def _merge_to(runtime, plane, target_count):
    """Pairwise live merges down to ``target_count`` shards.

    Adjacent-id pairs keep the map's ranges contiguous per survivor,
    so every rung of the ladder stays an even split.
    """
    while len(plane.shard_ids) > target_count:
        ids = plane.shard_ids
        for survivor, retiring in zip(ids[0::2], ids[1::2]):
            runtime.sim.run_process(plane.merge_shards(retiring, survivor))


def _recover_one_shard(runtime, plane):
    """Kill + journal-recover one shard; returns the numbers."""
    sim = runtime.sim
    journal_sizes = {
        shard_id: len(manager.journal)
        for shard_id, manager in plane.shards.items()
    }
    total_entries = sum(journal_sizes.values())
    victim_id = plane.shard_ids[len(plane.shard_ids) // 2]
    victim = plane.shard_manager(victim_id)
    held_before = sorted(victim.instance_loids())
    journal = victim.journal
    victim.deactivate()
    started = sim.now
    recovered = sim.run_process(recover_manager(runtime, journal))
    recovery_s = sim.now - started
    plane.adopt_shard(victim_id, recovered)
    assert sorted(recovered.instance_loids()) == held_before, (
        "recovery changed the shard's instance set"
    )
    assert plane.reconcile() == 0, "recovery left cross-shard orphans"
    return {
        "victim_shard": victim_id,
        "replayed_entries": journal_sizes[victim_id],
        "total_entries": total_entries,
        "journal_entries_by_shard": {
            str(shard_id): size for shard_id, size in journal_sizes.items()
        },
        "replay_share": journal_sizes[victim_id] / total_entries,
        "recovery_s": recovery_s,
        "instances_intact": len(held_before),
    }


def _split_mid_wave(runtime, plane, version, expected_wave_s):
    """Launch a wave async, split the only shard under it; returns
    the numbers."""
    sim = runtime.sim
    fleet_before = len(plane.instance_loids())
    source_id = plane.shard_ids[0]
    split_done = {}

    def splitter():
        # Land the handoff inside the wave: the row copy then races
        # in-flight update applies for the moved half-space.
        yield sim.timeout(max(0.01, expected_wave_s * 0.3))
        manager = yield from plane.split_shard(source_id, mode="fast")
        split_done["new_shard"] = manager.shard_id
        split_done["at"] = sim.now

    wave_started = sim.now
    plane.set_current_version_async(version)
    sim.run_process(splitter())
    sim.run()
    wave_s = sim.now - wave_started
    # The async wave raced a live handoff; a plane-wide re-drive
    # proves convergence (idempotent: already-updated instances ack
    # without re-applying).
    trackers = sim.run_process(plane.propagate_version(version, window=WINDOW))
    assert all(t.all_acked for t in trackers.values())
    assert "new_shard" in split_done, "split never committed"
    loids = plane.instance_loids()
    lost = fleet_before - len(loids)
    duplicated = 0
    stragglers = 0
    for loid in loids:
        obj = plane.record(loid).obj
        if obj.version != version:
            stragglers += 1
        applies = obj.applications_by_version.get(version, 0)
        if applies > 1:
            duplicated += 1
    assert plane.reconcile() == 0, "split left cross-shard orphans"
    moved = len(plane.shard_manager(split_done["new_shard"]).instance_loids())
    return {
        "source_shard": source_id,
        "new_shard": split_done["new_shard"],
        "split_committed_at_s": split_done["at"] - wave_started,
        "wave_s": wave_s,
        "instances_moved": moved,
        "lost": lost,
        "duplicated_applies": duplicated,
        "stragglers": stragglers,
    }


def run_p8(seed=0, fleet=FLEET, shard_ladder=SHARD_LADDER):
    """Run P8; returns an :class:`ExperimentResult`.

    ``fleet`` lets CI smoke runs measure a reduced fleet (e.g. 2,048
    instances); the ladder must be strictly decreasing and end at 1.
    """
    shard_ladder = tuple(shard_ladder)
    if sorted(shard_ladder, reverse=True) != list(shard_ladder) or shard_ladder[-1] != 1:
        raise ValueError("shard ladder must decrease to 1")
    if fleet % INSTANCES_PER_HOST:
        raise ValueError(f"fleet must be a multiple of {INSTANCES_PER_HOST}")
    result = ExperimentResult(
        experiment_id="P8",
        title="Sharded manager plane: wave throughput vs shard count",
    )

    build_started = time.perf_counter()
    runtime, plane = _build_plane(seed, fleet, shard_ladder[0])
    build_wall_s = time.perf_counter() - build_started
    result.add(
        f"{fleet} instances: one-time fleet build (reused across rungs)",
        "reported separately",
        f"{build_wall_s:.1f}",
        "s",
    )

    rungs = {}
    recovery = None
    for rung_index, shard_count in enumerate(shard_ladder):
        if shard_count != len(plane.shard_ids):
            _merge_to(runtime, plane, shard_count)
        assert len(plane.shard_ids) == shard_count
        version = _stage_upgrade(runtime, plane, f"r{shard_count}")
        rung = _drive_wave(runtime, plane, version)
        rungs[shard_count] = rung
        result.add(
            f"{shard_count} shard(s): full-fleet wave, {fleet} instances",
            "faster with more shards",
            millis(rung["wave_s"]),
            "ms",
        )
        result.add(
            f"{shard_count} shard(s): wave throughput",
            "scales with shards",
            f"{rung['throughput_per_s']:,.0f}",
            "inst/s",
        )
        if rung_index == 0:
            # Blast-radius check while per-shard journals are smallest
            # relative to the plane: kill + recover one of the 8.
            recovery = _recover_one_shard(runtime, plane)

    base = rungs[1]["throughput_per_s"]
    scaling = rungs[4]["throughput_per_s"] / base if 4 in rungs else None
    if scaling is not None:
        efficiency = scaling / 4.0
        result.add(
            "shard scaling: throughput at 4 shards vs 1",
            f">= {SCALING_FLOOR:.0f}x",
            f"{scaling:.2f}",
            "x",
            ok=scaling >= SCALING_FLOOR,
        )
        result.add(
            "per-shard efficiency at 4 shards",
            f">= {EFFICIENCY_FLOOR:.0%} of linear",
            f"{efficiency:.2f}",
            "x",
            ok=efficiency >= EFFICIENCY_FLOOR,
        )
    widest = shard_ladder[0]
    if widest != 4:
        result.add(
            f"shard scaling: throughput at {widest} shards vs 1",
            "informational",
            f"{rungs[widest]['throughput_per_s'] / base:.2f}",
            "x",
        )

    result.add(
        f"single-shard recovery: journal entries replayed "
        f"(of {recovery['total_entries']} plane-wide)",
        f"<= {RECOVERY_SHARE_CEILING:.0%} of plane "
        f"(its own shard's journal only)",
        f"{recovery['replayed_entries']}",
        "entries",
        ok=recovery["replay_share"] <= RECOVERY_SHARE_CEILING,
    )
    result.add(
        "single-shard recovery time",
        "proportional to one shard",
        millis(recovery["recovery_s"]),
        "ms",
    )

    split_version = _stage_upgrade(runtime, plane, "split")
    split = _split_mid_wave(
        runtime, plane, split_version, rungs[1]["wave_s"]
    )
    result.add(
        f"live split mid-wave: instances lost "
        f"({split['instances_moved']} rows moved)",
        "0",
        f"{split['lost']}",
        "",
        ok=split["lost"] == 0,
    )
    result.add(
        "live split mid-wave: duplicated applies / stragglers",
        "0 / 0 (exactly-once across the handoff)",
        f"{split['duplicated_applies']} / {split['stragglers']}",
        "",
        ok=split["duplicated_applies"] == 0 and split["stragglers"] == 0,
    )

    result.extra = {
        "fleet": fleet,
        "instances_per_host": INSTANCES_PER_HOST,
        "window": WINDOW,
        "shard_ladder": list(shard_ladder),
        "build_wall_s": build_wall_s,
        "scaling_floor": SCALING_FLOOR,
        "efficiency_floor": EFFICIENCY_FLOOR,
        "recovery_share_ceiling": RECOVERY_SHARE_CEILING,
        "rungs": {str(count): data for count, data in rungs.items()},
        "scaling_4v1": scaling,
        "recovery": recovery,
        "split": split,
        "handoffs": runtime.network.count_value("manager.shard.handoffs"),
        "map_epoch": plane.map.epoch,
    }
    return result
