"""Benchmark harness regenerating the paper's §4 measurements.

Each experiment module builds its workload, runs it on the simulated
testbed, and returns an :class:`~repro.bench.harness.ExperimentResult`
whose rows pair the paper's reported value (or range) with the
measured one.  The ``benchmarks/`` tree wraps these in pytest-benchmark
entry points and prints the tables.
"""

from repro.bench.harness import ExperimentResult, Row, format_table

__all__ = ["ExperimentResult", "Row", "format_table"]
