"""Automatic derivation of structural dependencies (§3.2).

The paper observes: "It is likely that creating structural
dependencies could be automated via static analysis of source code by
whatever entity builds implementation components ...  If dynamic
function F1 contains a call to dynamic function F2, a relationship
that can (for the most part) be detected by analyzing the source code
for F1's implementation, then F1 depends structurally on F2."

In this reproduction, function bodies are Python; the "static
analysis" is an AST walk over each body looking for calls through the
call context — ``ctx.call("name", ...)`` (including ``yield from``
forms) — which is exactly how intra-object dynamic calls are written.
The analyzer emits **Type A** dependencies (``[F1, C1] -> [F2]``):
structural, pinned to the analyzed implementation on the dependent
side, open on the required side so upgrades remain possible.

Behavioral dependencies cannot be derived: "a compiler cannot in
general tell on its own that some dynamic function should require a
particular implementation of some other function; programmers must
indicate this directly."
"""

import ast
import inspect
import textwrap

from repro.core.dependency import Dependency


class _CallCollector(ast.NodeVisitor):
    """Collects string literals passed as the first argument of
    ``<ctx>.call(...)`` anywhere in a function body."""

    def __init__(self, context_names):
        self._context_names = context_names
        self.called = set()
        self.dynamic_unknown = 0

    def visit_Call(self, node):
        self.generic_visit(node)
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "call":
            return
        if not isinstance(func.value, ast.Name):
            return
        if func.value.id not in self._context_names:
            return
        if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
            node.args[0].value, str
        ):
            self.called.add(node.args[0].value)
        else:
            # ctx.call(variable, ...): the target is not statically
            # known — the "(for the most part)" caveat in the paper.
            self.dynamic_unknown += 1


def called_functions(body):
    """Return (names, unknown_count) for one function body.

    ``names`` are the statically-visible ``ctx.call`` targets;
    ``unknown_count`` counts call sites whose target could not be
    resolved statically.
    """
    try:
        source = textwrap.dedent(inspect.getsource(body))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        # Builtins, lambdas defined in odd places, or C callables:
        # nothing to analyze.
        return set(), 0
    function_nodes = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
    ]
    if not function_nodes:
        return set(), 0
    root = function_nodes[0]
    args = root.args
    positional = [arg.arg for arg in args.posonlyargs + args.args]
    context_names = {positional[0]} if positional else {"ctx"}
    collector = _CallCollector(context_names)
    collector.visit(root)
    return collector.called, collector.dynamic_unknown


def derive_structural_dependencies(component, include_self=True):
    """Analyze a component's function bodies; return Type A dependencies.

    For each function F1 in the component whose body contains
    ``ctx.call("F2", ...)``, emits ``[F1, component] -> [F2]``.  Calls
    to the function itself are included by default — the §3.2 trick
    for protecting recursive functions.
    """
    dependencies = []
    for name, function_def in sorted(component.functions.items()):
        called, __ = called_functions(function_def.body)
        for target in sorted(called):
            if target == name and not include_self:
                continue
            dependencies.append(
                Dependency(
                    dependent_function=name,
                    required_function=target,
                    dependent_component=component.component_id,
                )
            )
    return dependencies


def annotate_component(component, include_self=True):
    """Run the analyzer and ship the derived dependencies with the
    component (deduplicated); returns the dependencies added."""
    derived = derive_structural_dependencies(component, include_self=include_self)
    added = []
    for dependency in derived:
        if dependency not in component.declared_dependencies:
            component.declared_dependencies.append(dependency)
            added.append(dependency)
    return added


def check_closure(descriptor):
    """Verify the §3.2 "dependency chain" property on a descriptor.

    "To ensure completely that an exported function F1 will never call
    a function that does not exist, it is up to the programmer to
    create the appropriate dependency chain."  This helper reports
    enabled functions that are *called* (per the declared structural
    dependencies' dependent sides) but have no enabled implementation —
    i.e. gaps a complete chain would have prevented.

    Returns a sorted list of (caller, missing_callee) pairs; empty
    means the chain is closed under the declared dependencies.
    """
    gaps = set()
    for dependency in descriptor.dependencies:
        dependent_enabled = (
            descriptor.is_enabled(
                dependency.dependent_function, dependency.dependent_component
            )
            if dependency.dependent_component is not None
            else bool(descriptor.enabled_components_of(dependency.dependent_function))
        )
        if not dependent_enabled:
            continue
        if not descriptor.enabled_components_of(dependency.required_function):
            gaps.add((dependency.dependent_function, dependency.required_function))
    return sorted(gaps)
