"""Implementation Component Objects (§2.3).

"An implementation component object (ICO) is an active distributed
object that maintains an implementation component's data — the
executable code that comprises the component, the descriptor that
describes the contents of the executable code, and the component's
implementation type."

Keeping components inside first-class objects means they live in the
host system's global namespace (no separate component-naming scheme)
and "the component's (potentially large amount of) data need not
travel with the component whenever it is referenced" — DCDOs fetch
metadata cheaply and pull variant data only when they must map the
code in.
"""

from repro.legion.objects import LegionObject


class ImplementationComponentObject(LegionObject):
    """An active object serving one implementation component.

    Exported interface:

    - ``getComponent()`` — the component's descriptor and (in this
      simulation) the component object itself; a small reply.
    - ``fetchVariant(impl_type)`` — the variant's code data; the reply
      is charged at the variant's full size, so pulling a large
      component pays real wire time.
    """

    def __init__(self, runtime, loid, host, component=None):
        super().__init__(runtime, loid, host)
        if component is None:
            raise ValueError("an ICO needs a component to serve")
        self._component = component
        self.metadata_requests = 0
        self.data_requests = 0
        #: Total variant bytes this server has shipped; with per-host
        #: blob caching the fleet-wide sum scales with host count, not
        #: instance count.
        self.bytes_served = 0
        self.register_method("getComponent", self._m_get_component)
        self.register_method("fetchVariant", self._m_fetch_variant)
        self.register_method("getDescriptor", self._m_get_descriptor)

    @property
    def component(self):
        """The :class:`ImplementationComponent` this ICO maintains."""
        return self._component

    def _m_get_component(self, ctx):
        self.metadata_requests += 1
        return self._component
        yield  # pragma: no cover - uniform generator shape

    def _m_get_descriptor(self, ctx):
        """A summary of the component's contents (pure metadata)."""
        self.metadata_requests += 1
        component = self._component
        return {
            "component_id": component.component_id,
            "functions": {
                name: {"exported": fn.exported, "signature": fn.signature}
                for name, fn in component.functions.items()
            },
            "required_markings": {
                name: marking.value
                for name, marking in component.required_markings.items()
            },
            "dependencies": [str(dep) for dep in component.declared_dependencies],
            "variants": sorted(str(impl_type) for impl_type in component.variants),
        }
        yield  # pragma: no cover - uniform generator shape

    def _m_fetch_variant(self, ctx, impl_type):
        """Serve a variant's code; the reply pays the variant's size."""
        variant = self._component.variants.get(impl_type)
        if variant is None:
            from repro.core.errors import IncompatibleImplementationType

            raise IncompatibleImplementationType(
                f"component {self._component.component_id!r} has no variant "
                f"of type {impl_type}"
            )
        self.data_requests += 1
        self.bytes_served += variant.size_bytes
        self.runtime.network.count("ico.fetches")
        self.runtime.network.count("ico.bytes_served", variant.size_bytes)
        # Reading the code off local disk before serving it; the reply
        # carries the full variant size on the wire.
        calibration = self.calibration
        yield self.sim.timeout(
            calibration.disk_seek_s + variant.size_bytes / calibration.disk_bandwidth_bps
        )
        ctx.set_reply_size(variant.size_bytes)
        return variant
