"""The dynamic function mapper (§2).

"A DFM contains an entry for every dynamic function that is currently
contained in the object, and keeps track of whether the function is
exported or internal, and whether it is currently enabled or disabled.
A DFM serves as a centralized table through which all calls to dynamic
functions must go."

This is the live, per-DCDO structure: unlike a DFM descriptor it holds
the actual function bodies (the mapped-in code) and the per-function
active thread counters used for thread activity monitoring (§3.2).
"""

from dataclasses import dataclass, field

from repro.core import validation
from repro.core.descriptor import DescriptorEntry, DFMDescriptor
from repro.core.errors import (
    ComponentNotIncorporated,
    FunctionNotEnabled,
    FunctionNotExported,
)
from repro.core.functions import Marking


@dataclass
class DFMEntry:
    """One function implementation mapped into a DCDO."""

    function: str
    component_id: str
    function_def: object
    enabled: bool = False
    exported: bool = True
    active_threads: int = 0
    calls: int = 0


@dataclass
class IncorporatedComponent:
    """A component currently mapped into a DCDO's address space."""

    component: object
    variant: object
    #: Private per-object data for the component's internal structures
    #: (§2: "these data structures must be accessed from outside the
    #: component by calling the component's exported dynamic
    #: functions").
    private_state: dict = field(default_factory=dict)


class DynamicFunctionMapper:
    """The per-object dispatch table for dynamic functions."""

    def __init__(self):
        self._entries = {}
        self._components = {}
        self._markings = {}
        self._pins = {}
        self._dependencies = []
        # function -> its (single) enabled entry; the hot-path index
        # that makes lookup O(1) regardless of table size.
        self._enabled_index = {}
        # Secondary indexes: function -> {component_id: entry} and
        # component_id -> {function: entry}, so the status/dispatch
        # accessors are O(implementations-of-f), not O(table).
        self._by_function = {}
        self._by_component = {}
        # Monotonically increasing configuration epoch, bumped on every
        # mutation; piggybacked on replies so clients' interface leases
        # can validate cheaply (and invalidate promptly).
        self._epoch = 0
        self.total_calls = 0

    @property
    def epoch(self):
        """The current configuration epoch."""
        return self._epoch

    def _bump(self):
        self._epoch += 1

    def _reindex(self):
        """Rebuild the enabled-entry index from the entry table."""
        self._enabled_index = {
            entry.function: entry for entry in self._entries.values() if entry.enabled
        }

    # ------------------------------------------------------------------
    # State-protocol accessors (shared validation, see core.validation)
    # ------------------------------------------------------------------

    @property
    def component_ids(self):
        """Set of incorporated component ids."""
        return set(self._components)

    @property
    def dependencies(self):
        """Declared dependencies (list copy)."""
        return list(self._dependencies)

    def entry(self, function, component_id):
        """The entry for (function, component) or None."""
        return self._entries.get((function, component_id))

    def entries_for(self, function):
        """All entries implementing ``function`` (via the index)."""
        return list(self._by_function.get(function, {}).values())

    def entries_in(self, component_id):
        """All entries implemented by ``component_id`` (via the index)."""
        return list(self._by_component.get(component_id, {}).values())

    def is_enabled(self, function, component_id):
        """True if that particular implementation is enabled."""
        entry = self._entries.get((function, component_id))
        return entry is not None and entry.enabled

    def enabled_components_of(self, function):
        """Component ids with an enabled implementation of ``function``."""
        return {
            component_id
            for component_id, entry in self._by_function.get(function, {}).items()
            if entry.enabled
        }

    def marking(self, function):
        """The function's marking (FULLY_DYNAMIC by default)."""
        return self._markings.get(function, Marking.FULLY_DYNAMIC)

    def markings_items(self):
        """(function, marking) pairs for non-default markings."""
        return list(self._markings.items())

    def pin(self, function):
        """The permanent pin for ``function``, or None."""
        return self._pins.get(function)

    # ------------------------------------------------------------------
    # Introspection (status-reporting support, §2.2)
    # ------------------------------------------------------------------

    def component(self, component_id):
        """The :class:`IncorporatedComponent` or raise."""
        incorporated = self._components.get(component_id)
        if incorporated is None:
            raise ComponentNotIncorporated(f"component {component_id!r} is not incorporated")
        return incorporated

    def function_names(self):
        """Sorted names of all mapped functions."""
        return sorted(self._by_function)

    def exported_interface(self):
        """Sorted names of enabled, exported functions.

        Walks the enabled-entry index (at most one enabled entry per
        function), so the cost is O(enabled functions) rather than
        O(table entries) — this sits on the ``getInterface``/
        ``getStatus`` path every defensive client hits.
        """
        return sorted(
            function
            for function, entry in self._enabled_index.items()
            if entry.exported
        )

    def entry_count(self):
        """Total number of (function, component) entries."""
        return len(self._entries)

    def active_threads_in(self, component_id):
        """Sum of active thread counts across a component's functions."""
        return sum(entry.active_threads for entry in self.entries_in(component_id))

    def functions_depending_on(self, function, component_id=None):
        """Names of enabled dependents of the given function/impl.

        Used with thread monitoring: "if function F1 depends on F2, and
        a thread is executing in F1, then the DCDO can postpone any
        request to disable F2 until the active thread count for F1 ...
        goes to zero" (§3.2).
        """
        dependents = set()
        for dependency in self._dependencies:
            if dependency.required_function != function:
                continue
            if (
                dependency.required_component is not None
                and component_id is not None
                and dependency.required_component != component_id
            ):
                continue
            dependents.add(dependency.dependent_function)
        return dependents

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def lookup(self, function, external=False):
        """Resolve a call: return the enabled entry for ``function``.

        This is the single level of indirection every dynamic-function
        call pays.  ``external`` marks calls arriving from other
        objects, which additionally require the function be exported.

        Raises :class:`FunctionNotEnabled` when no enabled
        implementation exists and :class:`FunctionNotExported` for
        external calls to internal functions.
        """
        chosen = self._enabled_index.get(function)
        if chosen is None:
            raise FunctionNotEnabled(function)
        if external and not chosen.exported:
            raise FunctionNotExported(function)
        return chosen

    def enter(self, entry):
        """Record a thread entering the function (§3.2 monitoring)."""
        entry.active_threads += 1
        entry.calls += 1
        self.total_calls += 1

    def leave(self, entry):
        """Record a thread leaving the function."""
        if entry.active_threads <= 0:
            raise RuntimeError(f"thread count underflow for {entry.function!r}")
        entry.active_threads -= 1

    # ------------------------------------------------------------------
    # Mutation (called by the DCDO's configuration functions, which
    # charge the simulated costs and apply removal policies first)
    # ------------------------------------------------------------------

    def add_component(self, component, variant, validate=True):
        """Map a component in: create (disabled) entries for its functions.

        ``validate=False`` skips the marking-conflict check during
        atomic descriptor application (the final state is validated
        instead); presence is still enforced.
        """
        if validate:
            validation.check_can_incorporate(self, component)
        elif component.component_id in self._components:
            from repro.core.errors import ComponentAlreadyIncorporated

            raise ComponentAlreadyIncorporated(
                f"component {component.component_id!r} is already incorporated"
            )
        self._components[component.component_id] = IncorporatedComponent(
            component=component, variant=variant
        )
        for name, function_def in component.functions.items():
            entry = DFMEntry(
                function=name,
                component_id=component.component_id,
                function_def=function_def,
                enabled=False,
                exported=function_def.exported,
            )
            self._entries[(name, component.component_id)] = entry
            self._by_function.setdefault(name, {})[component.component_id] = entry
            self._by_component.setdefault(component.component_id, {})[name] = entry
        for name, demanded in component.required_markings.items():
            self._markings[name] = (
                demanded
                if demanded.at_least(self.marking(name))
                else self.marking(name)
            )
            if demanded is Marking.PERMANENT:
                self._pins[name] = component.component_id
        for dependency in component.declared_dependencies:
            if dependency not in self._dependencies:
                self._dependencies.append(dependency)
        self._reindex()
        self._bump()

    def remove_component(self, component_id, validate=True):
        """Unmap a component (thread checks are the caller's job).

        ``validate=False`` is used by atomic descriptor application,
        where the *final* state has already been validated and
        intermediate states may legitimately violate invariants.
        """
        if validate:
            surviving = validation.check_can_remove_component(self, component_id)
        else:
            if component_id not in self._components:
                raise ComponentNotIncorporated(
                    f"component {component_id!r} is not incorporated"
                )
            surviving = [
                dependency
                for dependency in self._dependencies
                if dependency.dependent_component != component_id
            ]
        self._dependencies = surviving
        del self._components[component_id]
        for name in self._by_component.pop(component_id, {}):
            bucket = self._by_function.get(name)
            if bucket is not None:
                bucket.pop(component_id, None)
                if not bucket:
                    del self._by_function[name]
        self._entries = {
            key: entry
            for key, entry in self._entries.items()
            if entry.component_id != component_id
        }
        self._reindex()
        self._bump()

    def enable(self, function, component_id, replace_current=False):
        """Enable one implementation (validated).

        With ``replace_current``, atomically swaps out the currently
        enabled implementation — legal for mandatory functions (some
        implementation stays enabled throughout) but not permanent
        ones.
        """
        others = self.enabled_components_of(function) - {component_id}
        if replace_current and others:
            if self.entry(function, component_id) is None:
                raise ComponentNotIncorporated(
                    f"no implementation of {function!r} in component {component_id!r}"
                )
            pinned = self.pin(function)
            if pinned is not None and pinned != component_id:
                from repro.core.errors import PermanenceViolation

                raise PermanenceViolation(
                    f"{function!r} is permanently pinned to component {pinned!r}"
                )
            saved = {}
            for other in others:
                saved[(function, other)] = self._entries[(function, other)].enabled
                self._entries[(function, other)].enabled = False
            saved[(function, component_id)] = self._entries[(function, component_id)].enabled
            self._entries[(function, component_id)].enabled = True
            from repro.core.dependency import check_dependencies

            try:
                check_dependencies(
                    self._dependencies, self.is_enabled, self.enabled_components_of
                )
            except Exception:
                for key, was_enabled in saved.items():
                    self._entries[key].enabled = was_enabled
                raise
            finally:
                self._reindex()
            self._bump()
            return
        validation.check_can_enable(self, function, component_id)
        entry = self._entries[(function, component_id)]
        entry.enabled = True
        self._enabled_index[function] = entry
        self._bump()

    def disable(self, function, component_id, enforce_dependencies=True):
        """Disable one implementation (validated).

        Threads already executing inside the function are unaffected:
        "there is no reason why a thread cannot proceed inside a
        deactivated function ... it only matters what the status of
        the function is at the time the call is initiated" (§3.2).

        ``enforce_dependencies=False`` is the thread-monitoring mode:
        the caller has already drained dependents' active threads, so
        the static dependency veto is waived.
        """
        validation.check_can_disable(
            self, function, component_id, enforce_dependencies=enforce_dependencies
        )
        self._entries[(function, component_id)].enabled = False
        self._enabled_index.pop(function, None)
        self._bump()

    def set_exported(self, function, component_id, exported):
        """Move a function between public and private interfaces."""
        entry = self._entries.get((function, component_id))
        if entry is None:
            raise ComponentNotIncorporated(
                f"no implementation of {function!r} in component {component_id!r}"
            )
        entry.exported = exported
        self._bump()

    def mark_mandatory(self, function):
        """Mark ``function`` mandatory in this live DFM."""
        if not self.marking(function).at_least(Marking.MANDATORY):
            self._markings[function] = Marking.MANDATORY
            self._bump()

    def mark_permanent(self, function, component_id):
        """Mark ``function`` permanent, pinned to ``component_id``."""
        from repro.core.errors import PermanenceViolation

        existing = self._pins.get(function)
        if existing is not None and existing != component_id:
            raise PermanenceViolation(
                f"{function!r} is already permanently pinned to {existing!r}"
            )
        self._markings[function] = Marking.PERMANENT
        self._pins[function] = component_id
        self._bump()

    def add_dependency(self, dependency):
        """Declare a dependency; current state must satisfy it."""
        from repro.core.dependency import check_dependencies

        check_dependencies(
            self._dependencies + [dependency], self.is_enabled, self.enabled_components_of
        )
        self._dependencies.append(dependency)
        self._bump()

    def remove_dependency(self, dependency):
        """Retract a declared dependency."""
        if dependency in self._dependencies:
            self._dependencies.remove(dependency)
            self._bump()

    def adopt_restrictions(self, descriptor):
        """Copy markings, pins, and dependencies from a descriptor."""
        self._markings = dict(
            (function, marking) for function, marking in descriptor.markings_items()
        )
        self._pins = {
            function: descriptor.pin(function)
            for function, __ in descriptor.markings_items()
            if descriptor.pin(function) is not None
        }
        self._dependencies = descriptor.dependencies
        self._bump()

    def apply_entry_states(self, descriptor):
        """Set enabled/exported per the descriptor; returns change count.

        Only touches (function, component) pairs present in both; the
        component add/remove steps are the DCDO's job because they
        carry real (download/link) costs.
        """
        changes = 0
        for key, entry in self._entries.items():
            target = descriptor.entry(*key)
            if target is None:
                continue
            if entry.enabled != target.enabled or entry.exported != target.exported:
                entry.enabled = target.enabled
                entry.exported = target.exported
                changes += 1
        if changes:
            self._reindex()
            self._bump()
        return changes

    # ------------------------------------------------------------------
    # Undo-log support (transactional evolution)
    # ------------------------------------------------------------------

    def entry_states_snapshot(self):
        """Capture every entry's (enabled, exported) flags.

        Taken by a DCDO at commit time so a failed commit can restore
        the pre-flip dispatch state exactly (see
        :meth:`restore_entry_states`).
        """
        return {
            key: (entry.enabled, entry.exported)
            for key, entry in self._entries.items()
        }

    def restore_entry_states(self, snapshot):
        """Reinstate flags captured by :meth:`entry_states_snapshot`.

        Entries added since the snapshot keep their current flags;
        entries removed since are skipped (the caller re-adds their
        components first when full restoration is needed).
        """
        changed = False
        for key, (enabled, exported) in snapshot.items():
            entry = self._entries.get(key)
            if entry is None:
                continue
            if entry.enabled != enabled or entry.exported != exported:
                entry.enabled = enabled
                entry.exported = exported
                changed = True
        if changed:
            self._reindex()
            self._bump()

    def restrictions_snapshot(self):
        """Capture markings, pins, and dependencies for rollback."""
        return (dict(self._markings), dict(self._pins), list(self._dependencies))

    def restore_restrictions(self, snapshot):
        """Reinstate a :meth:`restrictions_snapshot` capture."""
        markings, pins, dependencies = snapshot
        self._markings = dict(markings)
        self._pins = dict(pins)
        self._dependencies = list(dependencies)
        self._bump()

    def to_descriptor(self):
        """Snapshot this DFM as a :class:`DFMDescriptor` (for diffing)."""
        descriptor = DFMDescriptor()
        for component_id, incorporated in self._components.items():
            descriptor._component_refs[component_id] = None  # refs live in the manager
        for key, entry in self._entries.items():
            descriptor._entries[key] = DescriptorEntry(
                function=entry.function,
                component_id=entry.component_id,
                enabled=entry.enabled,
                exported=entry.exported,
            )
        descriptor._markings = dict(self._markings)
        descriptor._pins = dict(self._pins)
        descriptor._dependencies = list(self._dependencies)
        return descriptor
