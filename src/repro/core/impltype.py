"""Implementation types (§2.1).

An implementation type "describes properties such as the component's
architecture, its object code format, and (if important) the
programming language with which it was built".  Implementation types
are what let functionally-equivalent implementations be used
interchangeably on heterogeneous hosts.
"""

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class ImplementationType:
    """The characteristics of one kind of compiled implementation."""

    architecture: str
    code_format: str = "elf"
    language: str = "c++"

    def compatible_with_host(self, host):
        """True if code of this type can run on ``host``."""
        return self.architecture == host.architecture

    def __str__(self):
        return f"{self.architecture}/{self.code_format}/{self.language}"


#: The default implementation type used when tests and examples do not
#: care about heterogeneity (matches the default host architecture).
NATIVE = ImplementationType(architecture="x86-linux")
