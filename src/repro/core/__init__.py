"""The DCDO model: the paper's primary contribution.

Public API:

- :class:`DCDO` — the dynamically configurable distributed object.
- :class:`DCDOManager` — per-type version store + instance coordinator.
- :class:`ImplementationComponentObject` — active objects serving
  component code and descriptors.
- :class:`ImplementationComponent` / :class:`ComponentBuilder` — the
  unit of replaceable implementation.
- :class:`DynamicFunctionMapper` — the per-object indirection table.
- :class:`DFMDescriptor` — manager-side version definitions.
- :class:`VersionId` / :class:`VersionTree` — §2.1 version identifiers.
- :class:`Dependency` — §3.2 function dependencies (types A-D).
- :class:`Marking` — fully-dynamic / mandatory / permanent.
- :class:`RemovePolicy` — thread-activity removal behaviour.
- :mod:`repro.core.policies` — evolution management strategies.
"""

from repro.core.analysis import (
    annotate_component,
    check_closure,
    derive_structural_dependencies,
)
from repro.core.component import (
    ComponentBuilder,
    ComponentVariant,
    ImplementationComponent,
    content_digest,
)
from repro.core.dcdo import (
    DCDO,
    DynamicCallContext,
    EvolutionPhase,
    EvolutionTransaction,
    RemoveMode,
    RemovePolicy,
)
from repro.core.dependency import Dependency
from repro.core.descriptor import (
    ComponentRef,
    ConfigurationDiff,
    DescriptorEntry,
    DFMDescriptor,
    diff_descriptors,
)
from repro.core.dfm import DFMEntry, DynamicFunctionMapper, IncorporatedComponent
from repro.core.errors import (
    AmbiguousFunction,
    ComponentAlreadyIncorporated,
    ComponentBusy,
    ComponentNotIncorporated,
    DCDOError,
    DependencyViolation,
    EvolutionDisallowed,
    FunctionNotEnabled,
    FunctionNotExported,
    IncompatibleImplementationType,
    MandatoryViolation,
    ManagerRecoveryError,
    MarkingConflict,
    PermanenceViolation,
    RollbackFailed,
    UnknownVersion,
    VersionNotConfigurable,
    VersionNotInstantiable,
    WaveAborted,
)
from repro.core.functions import FunctionDef, Marking
from repro.core.ico import ImplementationComponentObject
from repro.core.impltype import NATIVE, ImplementationType
from repro.core.manager import (
    CanaryState,
    DCDOManager,
    VersionRecord,
    WaveMode,
    WavePolicy,
    define_dcdo_type,
)
from repro.core.policies.canary import (
    CanaryOutcome,
    CanaryWavePolicy,
    run_canary_wave,
)
from repro.core.partition import (
    HASH_SPACE,
    PartitionMap,
    PartitionRouter,
    ReplicatedPartitionMap,
    ShardRange,
    StalePartitionMap,
    partition_slot,
)
from repro.core.recovery import (
    Delivery,
    DeliveryStatus,
    ManagerJournal,
    PropagationTracker,
    estimate_entry_bytes,
    recover_manager,
)
from repro.core.replication import ReplicationLink, StandbyReplica
from repro.core.shardplane import ShardedManagerPlane
from repro.core.stub import DCDOStub, InterfaceCache
from repro.core.version import VersionId, VersionTree

__all__ = [
    "AmbiguousFunction",
    "CanaryOutcome",
    "CanaryState",
    "CanaryWavePolicy",
    "run_canary_wave",
    "ComponentAlreadyIncorporated",
    "ComponentBuilder",
    "ComponentBusy",
    "ComponentNotIncorporated",
    "ComponentRef",
    "ComponentVariant",
    "ConfigurationDiff",
    "DCDO",
    "DCDOError",
    "DCDOManager",
    "DCDOStub",
    "InterfaceCache",
    "DFMDescriptor",
    "DFMEntry",
    "Dependency",
    "Delivery",
    "DeliveryStatus",
    "DependencyViolation",
    "DescriptorEntry",
    "DynamicCallContext",
    "DynamicFunctionMapper",
    "EvolutionDisallowed",
    "EvolutionPhase",
    "EvolutionTransaction",
    "FunctionDef",
    "FunctionNotEnabled",
    "FunctionNotExported",
    "ImplementationComponent",
    "ImplementationComponentObject",
    "ImplementationType",
    "IncompatibleImplementationType",
    "IncorporatedComponent",
    "ManagerJournal",
    "MandatoryViolation",
    "Marking",
    "MarkingConflict",
    "NATIVE",
    "ManagerRecoveryError",
    "PermanenceViolation",
    "PropagationTracker",
    "RemoveMode",
    "RemovePolicy",
    "ReplicationLink",
    "RollbackFailed",
    "StandbyReplica",
    "HASH_SPACE",
    "PartitionMap",
    "PartitionRouter",
    "ReplicatedPartitionMap",
    "ShardRange",
    "ShardedManagerPlane",
    "StalePartitionMap",
    "partition_slot",
    "UnknownVersion",
    "VersionId",
    "VersionNotConfigurable",
    "VersionNotInstantiable",
    "content_digest",
    "VersionRecord",
    "VersionTree",
    "WaveAborted",
    "WaveMode",
    "WavePolicy",
    "annotate_component",
    "check_closure",
    "define_dcdo_type",
    "estimate_entry_bytes",
    "recover_manager",
    "derive_structural_dependencies",
    "diff_descriptors",
]
