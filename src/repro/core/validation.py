"""Shared validation rules for DFMs and DFM descriptors (§2.4, §3.2).

The same restrictions must hold whether a configuration change is made
directly on a live DCDO's DFM or on a DFM descriptor inside a manager,
so the rules are written once here against a small state protocol that
both implement:

- ``entry(function, component_id)`` -> entry or None (``.enabled``,
  ``.exported``)
- ``entries_for(function)`` -> list of entries
- ``entries_in(component_id)`` -> list of entries
- ``is_enabled(function, component_id)`` -> bool
- ``enabled_components_of(function)`` -> set of component ids
- ``marking(function)`` -> :class:`~repro.core.functions.Marking`
- ``pin(function)`` -> component id or None (permanent pin)
- ``dependencies`` -> list of :class:`~repro.core.dependency.Dependency`
- ``component_ids`` -> set of incorporated component ids
"""

from repro.core.dependency import check_dependencies
from repro.core.errors import (
    AmbiguousFunction,
    ComponentNotIncorporated,
    FunctionNotEnabled,
    MandatoryViolation,
    MarkingConflict,
    PermanenceViolation,
)
from repro.core.functions import Marking


def _check_dependencies_with(state, is_enabled, enabled_components_of):
    check_dependencies(state.dependencies, is_enabled, enabled_components_of)


def check_state_consistent(state):
    """Validate the state as it stands (used after atomic rebuilds)."""
    for function, components in _enabled_map(state).items():
        if len(components) > 1:
            raise AmbiguousFunction(
                f"{function!r} has multiple enabled implementations: {sorted(components)}"
            )
    _check_dependencies_with(state, state.is_enabled, state.enabled_components_of)
    _check_markings(state)


def _enabled_map(state):
    enabled = {}
    for component_id in state.component_ids:
        for entry in state.entries_in(component_id):
            if entry.enabled:
                enabled.setdefault(entry.function, set()).add(component_id)
    return enabled


def _check_markings(state):
    for function, marking in state.markings_items():
        if marking is Marking.FULLY_DYNAMIC:
            continue
        enabled = state.enabled_components_of(function)
        if not enabled:
            raise MandatoryViolation(
                f"{marking.value} function {function!r} has no enabled implementation"
            )
        if marking is Marking.PERMANENT:
            pinned = state.pin(function)
            if pinned is None or pinned not in enabled:
                raise PermanenceViolation(
                    f"permanent function {function!r} is not pinned to its "
                    f"enabled implementation"
                )


def check_can_enable(state, function, component_id, enforce_dependencies=True):
    """Rules for enabling the implementation of ``function`` in ``component_id``.

    Beyond ambiguity and permanence, enabling can *activate* the
    dependent side of a declared dependency, so dependencies are
    checked against the post-enable state.  Manager-side descriptors
    under configuration pass ``enforce_dependencies=False`` — they are
    staging areas whose invariants are enforced when the version is
    marked instantiable (§2.4); a *live* DFM enforces per operation,
    because a violating enable is an immediately callable hazard.
    """
    entry = state.entry(function, component_id)
    if entry is None:
        raise ComponentNotIncorporated(
            f"no implementation of {function!r} in component {component_id!r}"
        )
    if entry.enabled:
        return
    others = state.enabled_components_of(function) - {component_id}
    if others:
        raise AmbiguousFunction(
            f"{function!r} already has an enabled implementation in "
            f"{sorted(others)}; disable it first or use replace"
        )
    pinned = state.pin(function)
    if pinned is not None and pinned != component_id:
        raise PermanenceViolation(
            f"{function!r} is permanently pinned to component {pinned!r}"
        )
    if not enforce_dependencies:
        return

    def is_enabled_after(target_function, target_component):
        if (target_function, target_component) == (function, component_id):
            return True
        return state.is_enabled(target_function, target_component)

    def enabled_components_after(target_function):
        components = set(state.enabled_components_of(target_function))
        if target_function == function:
            components.add(component_id)
        return components

    _check_dependencies_with(state, is_enabled_after, enabled_components_after)


def check_can_disable(state, function, component_id, enforce_dependencies=True):
    """Rules for disabling the implementation of ``function`` in ``component_id``.

    ``enforce_dependencies=False`` skips the static dependency veto —
    used by the §3.2 thread-monitoring mode, where the disable was
    postponed until every dependent's active thread count reached zero
    instead of being statically refused.
    """
    entry = state.entry(function, component_id)
    if entry is None or not entry.enabled:
        raise FunctionNotEnabled(function, f"in component {component_id!r}")
    marking = state.marking(function)
    if marking is Marking.PERMANENT and state.pin(function) == component_id:
        raise PermanenceViolation(
            f"cannot disable permanent function {function!r} "
            f"(pinned to {component_id!r})"
        )
    remaining = state.enabled_components_of(function) - {component_id}
    if marking is Marking.MANDATORY and not remaining:
        raise MandatoryViolation(
            f"disabling {function!r} in {component_id!r} would leave the "
            f"mandatory function with no enabled implementation"
        )

    if not enforce_dependencies:
        return

    def is_enabled_after(target_function, target_component):
        if (target_function, target_component) == (function, component_id):
            return False
        return state.is_enabled(target_function, target_component)

    def enabled_components_after(target_function):
        components = set(state.enabled_components_of(target_function))
        if target_function == function:
            components.discard(component_id)
        return components

    _check_dependencies_with(state, is_enabled_after, enabled_components_after)


def check_can_remove_component(state, component_id):
    """Rules for removing a whole component.

    Entries implemented by the component vanish; dependencies whose
    *dependent* side lives only in this component are retracted with it
    ("a dynamic function's 'mandatory' or 'permanent' status can be
    essentially retracted when dependencies on it are removed", §3.2),
    while dependencies *requiring* this component's implementations
    must still hold for enabled dependents elsewhere.
    """
    if component_id not in state.component_ids:
        raise ComponentNotIncorporated(f"component {component_id!r} is not incorporated")
    removed_functions = {entry.function for entry in state.entries_in(component_id)}
    for function in removed_functions:
        marking = state.marking(function)
        if marking is Marking.PERMANENT and state.pin(function) == component_id:
            raise PermanenceViolation(
                f"component {component_id!r} holds the permanent implementation "
                f"of {function!r}"
            )
        if marking is Marking.MANDATORY:
            remaining = state.enabled_components_of(function) - {component_id}
            if not remaining:
                raise MandatoryViolation(
                    f"removing {component_id!r} would leave mandatory function "
                    f"{function!r} with no enabled implementation"
                )

    surviving = [
        dependency
        for dependency in state.dependencies
        if dependency.dependent_component != component_id
    ]

    def is_enabled_after(function, component):
        if component == component_id:
            return False
        return state.is_enabled(function, component)

    def enabled_components_after(function):
        return state.enabled_components_of(function) - {component_id}

    check_dependencies(surviving, is_enabled_after, enabled_components_after)
    return surviving


def check_can_incorporate(state, component):
    """Rules for incorporating ``component`` (marking conflicts, §3.2).

    "if a programmer attempts to incorporate component C that contains
    permanent function F2, into a DFM descriptor that contains another
    component with its own permanent implementation of function F1,
    then the attempt to incorporate component C fails."
    """
    if component.component_id in state.component_ids:
        from repro.core.errors import ComponentAlreadyIncorporated

        raise ComponentAlreadyIncorporated(
            f"component {component.component_id!r} is already incorporated"
        )
    for function, demanded in component.required_markings.items():
        if demanded is not Marking.PERMANENT:
            continue
        pinned = state.pin(function)
        if pinned is not None and pinned != component.component_id:
            raise MarkingConflict(
                f"component {component.component_id!r} demands the permanent "
                f"implementation of {function!r}, already pinned to {pinned!r}"
            )


def check_instantiable(state):
    """Rules for marking a version instantiable (§2.4, §3.2).

    "If the DFM descriptor contains a mandatory dynamic function with
    no enabled implementation, the version will not be allowed to be
    marked instantiable."
    """
    check_state_consistent(state)


def check_transition_preserves_rules(source, target):
    """The hybrid policy's rule check (§3.5).

    A transition must not remove a mandatory function or disable (or
    re-pin) a permanent one relative to the *source* version.  Raises
    the corresponding violation.
    """
    for function, marking in source.markings_items():
        if marking is Marking.FULLY_DYNAMIC:
            continue
        if not target.marking(function).at_least(marking):
            raise MandatoryViolation(
                f"target version weakens {function!r} from {marking.value} "
                f"to {target.marking(function).value}"
            )
        if not target.enabled_components_of(function):
            raise MandatoryViolation(
                f"target version has no enabled implementation of "
                f"{marking.value} function {function!r}"
            )
        if marking is Marking.PERMANENT:
            if target.pin(function) != source.pin(function):
                raise PermanenceViolation(
                    f"target version re-pins permanent function {function!r} "
                    f"({source.pin(function)!r} -> {target.pin(function)!r})"
                )
