"""Manager durability and crash recovery.

The DCDO Manager is a single per-type coordinator (§2.4), so its crash
mid-evolution would otherwise turn the §3.1 hazards into *permanent*
divergence.  This module gives it a durability story:

- :class:`ManagerJournal` — a write-ahead log plus checkpoint of the
  DFM store and DCDO table.  The journal object lives *outside* the
  manager (like a file on the host's disk), so it survives the manager
  object's death.  Every durable decision — component registered,
  version created or frozen, current version set, instance created or
  evolved, propagation started/acked — is appended before the manager
  acts on it.
- :class:`PropagationTracker` / :class:`Delivery` — per-instance
  delivery state for the ack-tracked, at-least-once evolution
  propagation protocol.  Acks are journaled, so a recovered manager
  resumes exactly the deliveries still outstanding, never re-deriving
  the version and never double-applying an update (application is
  idempotent, keyed by version id, on the DCDO side).
- :func:`recover_manager` — rebuild a crashed manager from its
  journal: replay, re-link live instances and ICOs, reactivate under a
  new binding incarnation, swap into the runtime, and resume
  propagation.

What is deliberately *not* durable: configurable (not-yet-instantiable)
versions.  Their descriptors are mutable in-memory scratch state; a
crash loses the edits, exactly as a real manager would lose an
uncommitted working copy.  The version *identifiers* are journaled so
a recovered manager never re-issues an id.
"""

import enum
from dataclasses import dataclass, field

#: CPU seconds charged per journal entry replayed during recovery.  A
#: cold restart pays this for the whole journal; a hot standby that has
#: been replaying shipped entries as they arrive pays only for the
#: un-replayed tail (see ``recover_manager(skip_entries=...)``).
REPLAY_ENTRY_S = 0.0002

#: Fixed per-entry framing estimate (kind tag, lengths, sequencing).
ENTRY_BASE_BYTES = 48


def _estimate_value_bytes(value):
    """Rough serialized size of one journal-entry value."""
    if value is None or isinstance(value, (bool, int, float)):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 16 + sum(_estimate_value_bytes(item) for item in value)
    if isinstance(value, dict):
        return 16 + sum(
            len(str(key)) + _estimate_value_bytes(item)
            for key, item in value.items()
        )
    # Rich objects (version ids, descriptors, component refs) journal as
    # compact references, not blobs.
    return 64


def estimate_entry_bytes(entry):
    """Estimated on-disk/wire size of one :class:`JournalEntry`.

    Deterministic and cheap — used for journal size gauges and for
    charging replication shipping traffic.  Sizes are estimates in the
    same spirit as the rest of the simulation: what matters is that
    they scale with content, not that they match any real encoding.
    """
    size = ENTRY_BASE_BYTES + len(entry.kind)
    for key, value in entry.data.items():
        size += len(str(key)) + _estimate_value_bytes(value)
    return size


class DeliveryStatus(enum.Enum):
    """Where one instance stands in a propagation."""

    PENDING = "pending"
    ACKED = "acked"
    FAILED = "failed"
    #: The delivery had been acked, but the wave crossed its abort
    #: threshold and this instance was returned to its prior version.
    ROLLED_BACK = "rolled-back"


@dataclass
class Delivery:
    """Ack-tracking state for one instance in one propagation."""

    loid: object
    status: DeliveryStatus = DeliveryStatus.PENDING
    attempts: int = 0
    acked_at: float = None
    last_error: object = None


class PropagationTracker:
    """Delivery state for pushing one version to a set of instances.

    At-least-once semantics: a delivery stays PENDING until the
    instance's evolution RPC returns (ACKED) or the retry policy gives
    up (FAILED).  ``rearm`` re-opens FAILED deliveries and admits newly
    created instances, so calling the propagation again after faults
    heal finishes the job.
    """

    def __init__(self, version, loids=(), prior_versions=None, wave_policy=None):
        self.version = version
        self.complete = False
        self.started_at = None
        self.completed_at = None
        #: loid -> the version each instance was on when admitted; the
        #: rollback targets if the wave aborts.  Journaled with the
        #: propagation-started entry so a recovered manager can still
        #: complete an abort.
        self.prior_versions = dict(prior_versions or {})
        #: The :class:`~repro.core.manager.WavePolicy` this wave runs
        #: under (None means converge).
        self.wave_policy = wave_policy
        #: True once the abort decision is journaled; the wave then
        #: only rolls back, never delivers.
        self.aborting = False
        #: True once every committed instance has been rolled back.
        self.aborted = False
        self._deliveries = {}
        for loid in loids:
            self._deliveries[loid] = Delivery(loid)

    def delivery(self, loid):
        """Get-or-create the :class:`Delivery` for ``loid``."""
        entry = self._deliveries.get(loid)
        if entry is None:
            entry = self._deliveries[loid] = Delivery(loid)
        return entry

    def deliveries(self):
        """All deliveries, in admission order."""
        return list(self._deliveries.values())

    def rearm(self, loids=()):
        """Re-open the propagation: admit ``loids``, retry failures.

        An aborted wave re-arms like any other: the abort flags clear
        and rolled-back deliveries re-open, so the operator can retry
        the whole wave after the fault heals.
        """
        self.complete = False
        self.completed_at = None
        self.aborting = False
        self.aborted = False
        for loid in loids:
            self.delivery(loid)
        for entry in self._deliveries.values():
            if entry.status in (DeliveryStatus.FAILED, DeliveryStatus.ROLLED_BACK):
                entry.status = DeliveryStatus.PENDING

    def ack(self, loid, now=None):
        """Mark ``loid`` delivered."""
        entry = self.delivery(loid)
        entry.status = DeliveryStatus.ACKED
        entry.acked_at = now
        entry.last_error = None

    def fail(self, loid, error=None):
        """Mark ``loid`` given up on (until the next rearm)."""
        entry = self.delivery(loid)
        entry.status = DeliveryStatus.FAILED
        entry.last_error = error

    def roll_back(self, loid):
        """Mark an acked delivery undone by a wave abort."""
        entry = self.delivery(loid)
        entry.status = DeliveryStatus.ROLLED_BACK

    def pending_loids(self):
        """LOIDs still awaiting delivery."""
        return [
            entry.loid
            for entry in self._deliveries.values()
            if entry.status is DeliveryStatus.PENDING
        ]

    def count(self, status):
        """Number of deliveries in ``status``."""
        return sum(1 for entry in self._deliveries.values() if entry.status is status)

    @property
    def all_acked(self):
        """True when every admitted delivery has been acked."""
        return all(
            entry.status is DeliveryStatus.ACKED
            for entry in self._deliveries.values()
        )

    def summary(self):
        """Plain-dict view for reports and assertions."""
        return {
            "version": str(self.version),
            "complete": self.complete,
            "pending": self.count(DeliveryStatus.PENDING),
            "acked": self.count(DeliveryStatus.ACKED),
            "failed": self.count(DeliveryStatus.FAILED),
            "rolled_back": self.count(DeliveryStatus.ROLLED_BACK),
            "aborting": self.aborting,
            "aborted": self.aborted,
        }

    def __repr__(self):
        s = self.summary()
        flags = " ABORTED" if s["aborted"] else (" aborting" if s["aborting"] else "")
        return (
            f"<PropagationTracker v{s['version']} pending={s['pending']} "
            f"acked={s['acked']} failed={s['failed']} "
            f"rolled_back={s['rolled_back']} complete={s['complete']}{flags}>"
        )


@dataclass
class JournalEntry:
    """One write-ahead record: a kind tag plus its payload."""

    kind: str
    data: dict = field(default_factory=dict)

    def __repr__(self):
        return f"<JournalEntry {self.kind} {self.data}>"


class ManagerJournal:
    """Simulated durable storage for one DCDO Manager.

    A checkpoint (a compacted entry list) plus a tail of appended
    entries; :meth:`replay` returns both in order.  ``meta`` records
    identity facts (type name, policies) the recovery path needs before
    any entry is replayed — set once at attach time.

    Durability is simulated by object lifetime: the journal is owned by
    the test/harness (the "disk"), not by the manager object that dies.
    """

    def __init__(self, name=None):
        self.name = name
        self.meta = {}
        self._checkpoint = []
        self._entries = []
        self.appends = 0
        self.checkpoints = 0
        self._checkpoint_bytes = 0
        self._tail_bytes = 0
        self._observers = []

    @property
    def entries(self):
        """Entries appended since the last checkpoint."""
        return list(self._entries)

    @property
    def bytes(self):
        """Estimated durable size: checkpoint plus appended tail."""
        return self._checkpoint_bytes + self._tail_bytes

    def subscribe(self, observer):
        """Register ``observer(event, payload)`` for journal writes.

        ``event`` is ``"append"`` (payload: the :class:`JournalEntry`)
        or ``"checkpoint"`` (payload: the new checkpoint entry list).
        Observers fire synchronously after the write lands — the hook
        hot-standby replication ships from.  Returns the observer so
        callers can hold it for :meth:`unsubscribe`.
        """
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer):
        """Remove a previously subscribed observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def _notify(self, event, payload):
        for observer in list(self._observers):
            observer(event, payload)

    def append(self, kind, **data):
        """Append one write-ahead entry."""
        entry = JournalEntry(kind, dict(data))
        self._entries.append(entry)
        self.appends += 1
        self._tail_bytes += estimate_entry_bytes(entry)
        self._notify("append", entry)

    def write_checkpoint(self, entries):
        """Replace the checkpoint with ``entries``; truncate the log."""
        self._checkpoint = list(entries)
        self._entries = []
        self.checkpoints += 1
        self._checkpoint_bytes = sum(
            estimate_entry_bytes(entry) for entry in self._checkpoint
        )
        self._tail_bytes = 0
        self._notify("checkpoint", list(self._checkpoint))

    def replay(self):
        """All durable entries in application order."""
        return list(self._checkpoint) + list(self._entries)

    def __len__(self):
        return len(self._checkpoint) + len(self._entries)

    def __repr__(self):
        return (
            f"<ManagerJournal {self.name or '?'} checkpoint={len(self._checkpoint)} "
            f"tail={len(self._entries)}>"
        )


def recover_manager(
    runtime,
    journal,
    host_name=None,
    evolution_policy=None,
    update_policy=None,
    remove_policy=None,
    resume=True,
    skip_entries=0,
):
    """Generator: rebuild a crashed DCDO Manager from its journal.

    Constructs a fresh manager (the class LOID is deterministic, so it
    *is* the same object identity), replays the journal into it,
    re-links still-live instances and ICOs, reactivates it — new
    endpoint, bumped binding incarnation, bumped fencing term — swaps
    it into the runtime's registries, and (by default) resumes any
    propagation the crash interrupted.  Returns the recovered manager.

    Policies default to the ones recorded in the journal's ``meta``
    (policy objects are code, which survives a crash on disk); pass
    explicit policies to override.

    Replay costs :data:`REPLAY_ENTRY_S` CPU per journal entry.  A hot
    standby that already replayed a prefix of the journal as it was
    shipped passes that prefix length as ``skip_entries`` and pays only
    for the tail — the "near-instant takeover" half of the standby
    design.
    """
    from repro.core.errors import ManagerRecoveryError
    from repro.core.manager import DCDOManager

    type_name = journal.meta.get("type_name")
    if type_name is None:
        raise ValueError("journal records no manager metadata; nothing to recover")
    if host_name is not None:
        host = runtime.host(host_name)
    else:
        host = journal.meta.get("host_name")
        host = runtime.host(host) if host in runtime.hosts else None
        if host is None or not host.is_up:
            host = None
            for candidate in runtime.hosts.values():
                if candidate.is_up:
                    host = candidate
                    break
            if host is None:
                # A bare ``next()`` here would leak StopIteration out of
                # this generator (PEP 479 turns it into RuntimeError);
                # fail with a recovery error callers can act on.
                raise ManagerRecoveryError(
                    f"cannot recover manager for type {type_name!r}: "
                    f"no live host available"
                )
    if not host.is_up:
        from repro.cluster.host import HostDown

        raise HostDown(host.name, "recover_manager")
    started = runtime.sim.now
    manager = DCDOManager(
        runtime,
        type_name,
        host,
        evolution_policy=evolution_policy or journal.meta.get("evolution_policy"),
        update_policy=update_policy or journal.meta.get("update_policy"),
        remove_policy=remove_policy or journal.meta.get("remove_policy"),
        loid=journal.meta.get("class_loid"),
    )
    shard_id = journal.meta.get("shard_id")
    if shard_id is not None:
        # A shard rejoins its plane before replay: the per-shard term
        # scope and the live partition map ref come from the journal's
        # meta, so the bump below fences only this shard's range.
        manager.configure_shard(shard_id, journal.meta.get("partition_map"))
    unreplayed = max(0, len(journal) - max(0, skip_entries))
    if unreplayed:
        yield host.cpu_work(REPLAY_ENTRY_S * unreplayed)
    yield from manager.restore_from_journal(journal)
    manager.attach_journal(journal)
    manager.bump_term()
    yield from manager.activate()
    if shard_id is None or shard_id == 0:
        runtime.adopt_class(manager)
    else:
        # Non-zero shards never owned ``_classes[type_name]``; adopting
        # them there would clobber shard 0.  They re-register under
        # their own LOID and per-shard context path instead.
        runtime.attach_object(manager)
        runtime.context_space.bind(
            f"/shards/{type_name}/{shard_id}", manager.loid
        )
    runtime.network.count("manager.recoveries")
    runtime.network.metrics.timer("manager.recovery_time_s").record(
        runtime.sim.now - started
    )
    if resume:
        yield from manager.resume_propagations()
    return manager
