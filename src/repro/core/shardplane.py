"""Sharded manager plane: N DCDO managers behind one partition map.

The paper's architecture gives each DCDO type exactly one manager.
Every PR so far hardened that single authority (journal, standby,
fencing, gray tolerance) without removing the bottleneck: each wave,
journal append, and recovery pass serializes through one object.  The
:class:`ShardedManagerPlane` splits the DCDO table across N
:class:`~repro.core.manager.DCDOManager` *shards*, each owning the
contiguous LOID-hash ranges assigned to it by a shared
:class:`~repro.core.partition.ReplicatedPartitionMap`:

- **Routing** — clients hold a :class:`~repro.core.partition.
  PartitionRouter` (cached map + bounce refresh); the plane itself
  routes creates by pre-minting the LOID and hashing it.
- **Versions and components are plane-global** — the version tree
  issues ids deterministically, so repeating each configuration
  operation on every shard yields identical version ids everywhere;
  exactly one shard creates each ICO and the rest adopt it.  The
  plane records the configuration log so shards created later (splits)
  replay it and join equivalent.
- **Waves fan out per shard in parallel** — each shard drives its own
  windowed/relay/announce wave over only its instances; with per-shard
  relay rosters no single manager (or tree root) touches more than its
  range.
- **Handoff is map-commit ordered** — rows copy to the target (which
  journals them) *before* the map's epoch bump, and the source drops
  and term-fences its moved range only *after*; the map is the single
  ownership authority, so a crash anywhere in between leaves at most
  orphan rows that :meth:`reconcile` prunes against the map — a moved
  range is never writable by two shards.
- **Failure handling is per shard** — each shard gets its own journal,
  standby link, and :class:`~repro.cluster.supervisor.Supervisor`;
  recovery replays only the failed shard's journal.
"""

from repro.core.partition import (
    HASH_SPACE,
    PartitionMap,
    PartitionRouter,
    ReplicatedPartitionMap,
    partition_slot,
)
from repro.core.recovery import ManagerJournal
from repro.legion.loid import class_loid, mint_loid

#: Simulated copy cost per handed-off DCDO-table row (seconds).  Small
#: — rows are metadata, not state — but nonzero so a rebalance has a
#: real window for the chaos harness to crash into.
HANDOFF_ROW_S = 0.00005

#: Poll interval while a create waits out a handoff of its slot.
HANDOFF_WAIT_S = 0.01


class HandoffAborted(Exception):
    """A shard involved in a rebalance died before the map committed."""


class ShardedManagerPlane:
    """N journaled manager shards of one DCDO type plus their map.

    Parameters
    ----------
    runtime:
        The Legion runtime.
    type_name:
        The managed DCDO type (shared by every shard).
    shard_count:
        Initial shard count; the map starts as an even split.
    shard_hosts:
        Optional ``shard_id -> host_name`` placement for the shard
        manager objects (defaults to spreading over the runtime's
        hosts).
    journals:
        Optional per-shard :class:`ManagerJournal` list; fresh journals
        are created when omitted.
    map_replica_hosts:
        Hosts carrying partition-map replica views (router refresh
        points); defaults to the shard managers' hosts.
    manager_kwargs:
        Forwarded to every shard's :class:`DCDOManager` (policies,
        retry, fanout window, ...).
    """

    def __init__(
        self,
        runtime,
        type_name,
        shard_count=2,
        shard_hosts=None,
        journals=None,
        map_replica_hosts=None,
        **manager_kwargs,
    ):
        from repro.core.manager import DCDOManager

        if shard_count < 1:
            raise ValueError("need at least one shard")
        self.runtime = runtime
        self.type_name = type_name
        self._manager_kwargs = dict(manager_kwargs)
        self._manager_cls = DCDOManager
        self._shards = {}
        self._supervisors = {}
        self._relay_slices = {}
        self._relay_settings = None
        self._config_log = []
        self._mid_handoff = []
        self._host_cursor = 0
        host_names = list(runtime.hosts)
        shard_hosts = dict(shard_hosts or {})
        placements = {
            k: shard_hosts.get(k, host_names[k % len(host_names)])
            for k in range(shard_count)
        }
        if map_replica_hosts is None:
            map_replica_hosts = sorted(set(placements.values()))
        self.map = ReplicatedPartitionMap(
            runtime,
            f"{type_name}.pmap",
            PartitionMap.even(shard_count),
            replica_hosts=map_replica_hosts,
        )
        journals = list(journals or [])
        for k in range(shard_count):
            journal = (
                journals[k]
                if k < len(journals)
                else ManagerJournal(name=f"{type_name}/s{k}")
            )
            self._spawn_shard(k, placements[k], journal)

    # ------------------------------------------------------------------
    # Shard construction
    # ------------------------------------------------------------------

    def _spawn_shard(self, shard_id, host_name, journal):
        """Build, activate, and register shard ``shard_id``.

        Shard 0 registers as *the* class object for the type (so every
        unsharded code path — ``runtime.class_of``, context lookups,
        detectors — keeps working); other shards attach under their own
        deterministic LOID and a per-shard context path.
        """
        runtime = self.runtime
        kwargs = dict(self._manager_kwargs)
        if shard_id == 0 and self.type_name not in runtime._classes:

            def factory(
                runtime_, type_name_, host_, implementations=(), instance_factory=None
            ):
                return self._manager_cls(
                    runtime_,
                    type_name_,
                    host_,
                    implementations=implementations,
                    instance_factory=instance_factory,
                    journal=journal,
                    **kwargs,
                )

            manager = runtime.define_class(
                self.type_name, class_factory=factory, host_name=host_name
            )
        else:
            loid = class_loid(
                runtime.domain, f"{self.type_name}/s{shard_id}"
            )
            manager = self._manager_cls(
                runtime,
                self.type_name,
                runtime.host(host_name),
                journal=journal,
                loid=loid,
                **kwargs,
            )
            runtime.sim.run_process(manager.activate())
            runtime.attach_object(manager)
        manager.configure_shard(shard_id, self.map)
        runtime.context_space.bind(
            f"/shards/{self.type_name}/{shard_id}", manager.loid
        )
        self._shards[shard_id] = manager
        return manager

    def _replay_config(self, manager):
        """Bring a late-created shard up to the plane's configuration."""
        for op in self._config_log:
            if op[0] == "adopt":
                __, component, ico_loid, host_name = op
                manager.adopt_component(component, ico_loid, host_name)
            elif op[0] == "enable":
                __, version, name, component_id, enable_kwargs = op
                manager.descriptor_of(version).enable(
                    name, component_id, **enable_kwargs
                )
            else:
                __, method, args, kwargs = op
                getattr(manager, method)(*args, **kwargs)

    # ------------------------------------------------------------------
    # Introspection / routing
    # ------------------------------------------------------------------

    @property
    def shard_ids(self):
        return tuple(sorted(self._shards))

    @property
    def shards(self):
        """Live ``shard_id -> manager`` view (promotions update it)."""
        return dict(self._shards)

    @property
    def supervisors(self):
        return dict(self._supervisors)

    def shard_manager(self, shard_id):
        manager = self._shards.get(shard_id)
        if manager is None:
            raise KeyError(f"no live shard {shard_id} for {self.type_name!r}")
        return manager

    def manager_for(self, loid):
        """The shard manager currently owning ``loid`` (by the map)."""
        return self.shard_manager(self.map.current.shard_for(loid))

    def router(self, host_name=None):
        """A client-side :class:`PartitionRouter` over this plane."""
        return PartitionRouter(
            self.map, lambda shard_id: self._shards.get(shard_id), host_name
        )

    def instance_loids(self):
        """Every managed LOID across the plane, shard order."""
        out = []
        for shard_id in self.shard_ids:
            out.extend(self._shards[shard_id].instance_loids())
        return out

    def record(self, loid):
        return self.manager_for(loid).record(loid)

    def instance_version(self, loid):
        return self.manager_for(loid).instance_version(loid)

    @property
    def current_version(self):
        return self._primary.current_version

    @property
    def _primary(self):
        return self._shards[min(self._shards)]

    def status(self):
        """Per-shard snapshot rows for the obs layer."""
        rows = []
        for shard_id in self.shard_ids:
            manager = self._shards[shard_id]
            journal = manager.journal
            rows.append(
                {
                    "shard_id": shard_id,
                    "type_name": self.type_name,
                    "host": manager.host.name,
                    "term": manager.term,
                    "active": manager.is_active,
                    "instances": len(manager.instance_loids()),
                    "spans": manager.owned_spans(),
                    "journal_entries": len(journal) if journal else 0,
                    "map_epoch": self.map.epoch,
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Plane-global configuration (mirrored onto every shard)
    # ------------------------------------------------------------------

    def register_component(self, component, host_name=None):
        """Register a component once, adopt it on every other shard."""
        shard_ids = self.shard_ids
        ico_loid = self._shards[shard_ids[0]].register_component(
            component, host_name=host_name
        )
        for shard_id in shard_ids[1:]:
            self._shards[shard_id].adopt_component(
                component, ico_loid, host_name
            )
        self._config_log.append(("adopt", component, ico_loid, host_name))
        return ico_loid

    def _mirror(self, method, *args, **kwargs):
        """Apply one configuration op to every shard, log it, and
        return the primary's result (identical everywhere: version ids
        issue deterministically)."""
        results = [
            getattr(self._shards[shard_id], method)(*args, **kwargs)
            for shard_id in self.shard_ids
        ]
        self._config_log.append(("call", method, args, kwargs))
        first = results[0]
        assert all(result == first for result in results), (
            f"shards diverged on {method}: {results}"
        )
        return first

    def new_version(self):
        return self._mirror("new_version")

    def derive_version(self, parent):
        return self._mirror("derive_version", parent)

    def incorporate_into(self, version, component_id):
        return self._mirror("incorporate_into", version, component_id)

    def mark_instantiable(self, version):
        return self._mirror("mark_instantiable", version)

    def set_current_version(self, version):
        return self._mirror("set_current_version", version)

    def enable_function(self, version, name, component_id, **enable_kwargs):
        """Enable a function in every shard's configurable descriptor.

        Descriptor edits happen on the descriptor object, not the
        manager, so the mirror is explicit here — shard descriptors
        must stay byte-equivalent or their instances would diverge.
        """
        for shard_id in self.shard_ids:
            self._shards[shard_id].descriptor_of(version).enable(
                name, component_id, **enable_kwargs
            )
        self._config_log.append(
            ("enable", version, name, component_id, enable_kwargs)
        )

    def descriptor_of(self, version):
        """The primary shard's descriptor (read it, don't edit it —
        use :meth:`enable_function` for plane-wide edits)."""
        return self._primary.descriptor_of(version)

    def configure(self, method, *args, **kwargs):
        """Mirror any other manager configuration method plane-wide."""
        return self._mirror(method, *args, **kwargs)

    # ------------------------------------------------------------------
    # Instances
    # ------------------------------------------------------------------

    def create_instance(self, host_name=None, state=None, state_bytes=0):
        """Generator: create an instance on its hash-owning shard.

        The LOID is pre-minted so the owning shard is known before the
        create lands anywhere.  A create whose slot is mid-handoff
        waits for the map commit — it must journal on the shard that
        will own it, not the one about to release it.
        """
        loid = mint_loid(self.runtime.domain, self.type_name)
        slot = partition_slot(loid)
        while any(lo <= slot < hi for lo, hi in self._mid_handoff):
            yield self.runtime.sim.timeout(HANDOFF_WAIT_S)
        shard = self.shard_manager(self.map.current.shard_for_slot(slot))
        if host_name is None:
            host_name = self._default_host_for(shard)
        result = yield from shard.create_instance(
            host_name=host_name, state=state, state_bytes=state_bytes, loid=loid
        )
        return result

    def _default_host_for(self, shard):
        """Round-robin placement within the shard's relay slice.

        With relays deployed, keeping a shard's instances on its
        roster hosts is what lets its announce waves commit whole
        hosts; without relays any host will do.
        """
        slice_hosts = self._relay_slices.get(shard.shard_id)
        if not slice_hosts:
            return None
        self._host_cursor += 1
        return slice_hosts[self._host_cursor % len(slice_hosts)]

    # ------------------------------------------------------------------
    # Waves (per-shard parallel fan-out)
    # ------------------------------------------------------------------

    def propagate_version(
        self, version, retry_policy=None, window=None, wave_policy=None
    ):
        """Generator: drive every shard's wave for ``version`` in
        parallel; returns ``shard_id -> PropagationTracker``."""
        from repro.net import run_windowed

        shard_ids = self.shard_ids
        thunks = [
            (
                lambda m=self._shards[shard_id]: m.propagate_version(
                    version,
                    retry_policy=retry_policy,
                    window=window,
                    wave_policy=wave_policy,
                )
            )
            for shard_id in shard_ids
        ]
        outcomes = yield from run_windowed(
            self.runtime.sim, thunks, len(thunks)
        )
        self.runtime.network.count("manager.shard.waves", len(shard_ids))
        trackers = {}
        for shard_id, (ok, value) in zip(shard_ids, outcomes):
            if not ok:
                raise value
            trackers[shard_id] = value
        return trackers

    def set_current_version_async(self, version):
        """Mirror the designation; each shard spawns its own wave."""
        processes = []
        for shard_id in self.shard_ids:
            process = self._shards[shard_id].set_current_version_async(version)
            if process is not None:
                processes.append(process)
        self._config_log.append(("call", "set_current_version", (version,), {}))
        if processes:
            self.runtime.network.count("manager.shard.waves", len(processes))
        return processes

    # ------------------------------------------------------------------
    # Relays (per-shard roster slices)
    # ------------------------------------------------------------------

    def use_relays(
        self, directory, fanout_k=0, batch_window=None, announce=False
    ):
        """Split the relay directory into per-shard host slices.

        Each shard announces over its own roster (named
        ``"<type>/s<k>"``), so N shard waves run N disjoint diffusion
        trees concurrently — no shared root, no shared egress port.
        """
        self._relay_settings = {
            "directory": dict(directory),
            "fanout_k": fanout_k,
            "batch_window": batch_window,
            "announce": announce,
        }
        self._reslice_relays()

    def _reslice_relays(self):
        from repro.cluster.relay import seed_announce_roster

        settings = self._relay_settings
        if settings is None:
            return
        directory = settings["directory"]
        hosts = sorted(directory)
        shard_ids = self.shard_ids
        self._relay_slices = {}
        for index, shard_id in enumerate(shard_ids):
            lo = (index * len(hosts)) // len(shard_ids)
            hi = ((index + 1) * len(hosts)) // len(shard_ids)
            slice_hosts = hosts[lo:hi] or hosts
            sub_directory = {h: directory[h] for h in slice_hosts}
            roster_id = f"{self.type_name}/s{shard_id}"
            seed_announce_roster(self.runtime, sub_directory, roster_id=roster_id)
            self._shards[shard_id].use_relays(
                sub_directory,
                fanout_k=settings["fanout_k"],
                batch_window=settings["batch_window"],
                announce=settings["announce"],
                roster_id=roster_id,
            )
            self._relay_slices[shard_id] = tuple(slice_hosts)

    # ------------------------------------------------------------------
    # Rebalancing (split / merge / move under live traffic)
    # ------------------------------------------------------------------

    def split_shard(
        self, shard_id, new_shard_id=None, host_name=None, journal=None,
        mode="consistent",
    ):
        """Generator: halve a shard's widest range onto a new shard."""
        if new_shard_id is None:
            new_shard_id = max(self._shards) + 1
        host_name = (
            host_name
            or list(self.runtime.hosts)[new_shard_id % len(self.runtime.hosts)]
        )
        journal = journal or ManagerJournal(
            name=f"{self.type_name}/s{new_shard_id}"
        )
        manager = self._spawn_shard(new_shard_id, host_name, journal)
        self._replay_config(manager)
        new_map = self.map.current.split(shard_id, new_shard_id)
        yield from self._commit_handoff(new_map, mode)
        self._reslice_relays()
        return manager

    def merge_shards(self, source, target, mode="consistent"):
        """Generator: fold ``source``'s ranges into ``target`` and
        retire the source shard."""
        new_map = self.map.current.merge(source, target)
        yield from self._commit_handoff(new_map, mode)
        supervisor = self._supervisors.pop(source, None)
        if supervisor is not None:
            supervisor.stop()
        retired = self._shards.pop(source)
        if retired.is_active:
            retired.deactivate()
        self._reslice_relays()
        return self._shards[target]

    def move_range(self, span, target, mode="consistent"):
        """Generator: rebalance one slot span onto ``target``."""
        new_map = self.map.current.move(span, target)
        yield from self._commit_handoff(new_map, mode)

    def _commit_handoff(self, new_map, mode):
        """Generator: the crash-safe handoff order.

        1. copy rows source→target (target journals them);
        2. ``map.apply`` — the epoch bump *is* the commit point;
        3. source journals the release, drops rows, bumps its term.

        A crash before (2) aborts: the map still names the source, the
        target's journaled orphans are pruned by :meth:`reconcile`.  A
        crash after (2) needs no undo: ownership already moved, and
        the source's release replays from its journal on recovery —
        with the term fence rejecting any of its in-flight deliveries
        for the moved range.
        """
        sim = self.runtime.sim
        moves = self._diff_moves(self.map.current, new_map)
        spans = [span for span, __, __ in moves]
        self._mid_handoff.extend(spans)
        try:
            for span, source_id, target_id in moves:
                source = self.shard_manager(source_id)
                target = self.shard_manager(target_id)
                rows = source.export_rows(span)
                # The copy takes real time: this window is what
                # mid-rebalance chaos crashes into.
                yield sim.timeout(HANDOFF_ROW_S * max(1, len(rows)))
                if not source.is_active or not target.is_active:
                    raise HandoffAborted(
                        f"shard died copying span {span} "
                        f"(s{source_id}→s{target_id})"
                    )
                target.adopt_rows(rows)
            yield from self.map.apply(new_map, mode=mode)
            for span, source_id, __ in moves:
                self.shard_manager(source_id).release_span(span)
            self.runtime.network.count("manager.shard.handoffs", len(moves))
        finally:
            for span in spans:
                self._mid_handoff.remove(span)

    @staticmethod
    def _diff_moves(old_map, new_map):
        """Coalesced ``(span, old_owner, new_owner)`` ownership moves."""
        bounds = sorted(
            {r.lo for r in old_map.ranges}
            | {r.lo for r in new_map.ranges}
            | {HASH_SPACE}
        )
        moves = []
        for lo, hi in zip(bounds, bounds[1:]):
            old_owner = old_map.shard_for_slot(lo)
            new_owner = new_map.shard_for_slot(lo)
            if old_owner == new_owner:
                continue
            if (
                moves
                and moves[-1][0][1] == lo
                and moves[-1][1] == old_owner
                and moves[-1][2] == new_owner
            ):
                moves[-1] = ((moves[-1][0][0], hi), old_owner, new_owner)
            else:
                moves.append(((lo, hi), old_owner, new_owner))
        return moves

    # ------------------------------------------------------------------
    # Supervision + reconciliation (per-shard scope)
    # ------------------------------------------------------------------

    def supervise(self, standby_hosts, detector_host_name, **supervisor_kwargs):
        """Start one :class:`Supervisor` per shard; returns them.

        Each supervisor watches its shard's own LOID, promotes from its
        shard's own standby journal, and re-points the plane's routing
        at the promotee — one shard's failover never touches the rest
        of the plane.
        """
        from repro.cluster.supervisor import Supervisor

        settings = self._relay_settings or {}
        for shard_id in self.shard_ids:
            manager = self._shards[shard_id]
            slice_hosts = self._relay_slices.get(shard_id)
            relays = None
            if slice_hosts and settings:
                relays = {
                    h: settings["directory"][h]
                    for h in slice_hosts
                    if h in settings["directory"]
                }

            def on_promote(promoted, shard_id=shard_id):
                if shard_id in self._shards:
                    self._shards[shard_id] = promoted

            self._supervisors[shard_id] = Supervisor(
                self.runtime,
                self.type_name,
                standby_hosts=standby_hosts,
                detector_host_name=detector_host_name,
                manager=manager,
                on_promote=on_promote,
                relays=relays,
                relay_fanout_k=settings.get("fanout_k", 0) if relays else 0,
                relay_batch_window=settings.get("batch_window"),
                relay_announce=bool(settings.get("announce")) if relays else False,
                relay_roster_id=f"{self.type_name}/s{shard_id}" if relays else None,
                **supervisor_kwargs,
            ).start()
        return dict(self._supervisors)

    def stop_supervision(self):
        for supervisor in self._supervisors.values():
            supervisor.stop()

    def adopt_shard(self, shard_id, manager):
        """Re-point the plane at a recovered manager for ``shard_id``.

        :func:`~repro.core.recovery.recover_manager` rebuilds a crashed
        shard from its journal and re-registers it with the *runtime*
        (same LOID, bumped term), but the plane's own routing table
        still holds the dead object; supervised planes fix that in
        their ``on_promote`` hook, unsupervised callers fix it here.
        """
        if shard_id not in self._shards:
            raise KeyError(
                f"no shard {shard_id} in plane for {self.type_name!r}"
            )
        if manager.shard_id != shard_id:
            raise ValueError(
                f"manager is configured as shard {manager.shard_id}, "
                f"not {shard_id}"
            )
        self._shards[shard_id] = manager
        return manager

    def reconcile(self):
        """Prune rows the map says a shard no longer owns.

        Closes the aborted-handoff window: a target that journaled
        adopted rows before the commit crashed keeps them as orphans —
        harmless (the map never routed to it) but a double-ownership
        hazard for table enumeration.  Spans mid-handoff are exempt
        (their adoption is supposed to be ahead of the map).
        """
        pruned = 0
        for shard_id in self.shard_ids:
            manager = self._shards[shard_id]
            orphans = [
                loid
                for loid in manager.instance_loids()
                if self.map.current.shard_for(loid) != shard_id
                and not any(
                    lo <= partition_slot(loid) < hi
                    for lo, hi in self._mid_handoff
                )
            ]
            if orphans:
                manager.prune_rows(orphans)
                pruned += len(orphans)
        if pruned:
            self.runtime.network.count("manager.shard.orphans_pruned", pruned)
        return pruned
