"""Hot-standby replication of the DCDO Manager journal.

PR 3 made the manager recoverable: a :class:`ManagerJournal` survives
its owner's crash and :func:`~repro.core.recovery.recover_manager`
rebuilds the manager from it.  That model still has two availability
gaps.  First, the journal lives on the *primary's* "disk" — a machine
failure that destroys the disk loses it.  Second, cold recovery pays
:data:`~repro.core.recovery.REPLAY_ENTRY_S` CPU for every journal
entry, so takeover time grows with history.

A :class:`ReplicationLink` closes both gaps: the primary ships every
journal write (appends and checkpoints) over the simulated network to
a :class:`StandbyReplica` on another host, and the standby replays
each record into its own journal copy *as it arrives*.  At takeover
the standby's journal is handed to ``recover_manager`` with
``skip_entries=len(journal)`` — the replay cost was paid continuously,
so promotion is near-instant regardless of history length.

Design points:

- **Real transport.**  Records travel through :class:`Endpoint`s named
  under each side's host prefix, so crashes and partitions sever the
  link honestly: a partitioned standby falls behind (``repl.lag_entries``
  grows) and catches up from the queue after heal.
- **Ordered, exactly-once application.**  Every record carries a
  monotonic sequence number; the standby remembers the highest applied
  and skips duplicates, so a re-shipped batch after a lost reply is
  harmless.  The link ships one batch at a time (single flight) and the
  standby rejects overlapping batches, so records never apply out of
  order.
- **Bootstrap through the front door.**  The initial full snapshot is
  enqueued as an ordinary checkpoint record, paying the same transfer
  cost as any other ship — no magic state copy.
- **Sync or async.**  ``mode="sync"`` ships on every journal write;
  ``mode="async"`` batches writes and ships on a background interval,
  trading bounded lag for fewer messages.
"""

import itertools

from repro.core.recovery import (
    REPLAY_ENTRY_S,
    JournalEntry,
    ManagerJournal,
    estimate_entry_bytes,
)

#: Per-record wire framing (seq + kind tag) on top of entry payloads.
RECORD_FRAMING_BYTES = 32
#: Nominal wire size of the journal ``meta`` dict shipped per batch.
META_BYTES = 96
#: Per-attempt reply timeout for a ship request.
SHIP_TIMEOUT_S = 5.0
#: Backoff before re-trying a failed ship in sync mode (async mode
#: retries on its own interval).
SHIP_RETRY_BACKOFF_S = 1.0

_link_ids = itertools.count(1)


class ReplicaBusy(Exception):
    """A ship arrived while the standby was still applying another.

    Single-flight shipping makes this rare (a re-ship racing a slow
    apply after a lost reply); the primary treats it as a transient
    failure and retries from its queue.
    """


class StandbyReplica:
    """The receiving side of a replication link.

    Owns a private :class:`ManagerJournal` copy plus the endpoint that
    accepts ship batches.  Applies records in sequence order, charging
    replay CPU for each entry *as it lands* — the invariant is that
    every entry in :attr:`journal` has already been replayed, so a
    takeover passes ``skip_entries=len(replica.journal)`` and pays
    nothing for history.
    """

    def __init__(self, runtime, type_name, host_name):
        self._runtime = runtime
        self.type_name = type_name
        self.host_name = host_name
        self._host = runtime.host(host_name)
        self.journal = ManagerJournal(name=f"{type_name}@{host_name}-standby")
        self.address = f"{host_name}/standby:{type_name}@{next(_link_ids)}"
        from repro.net import Endpoint

        self._endpoint = Endpoint(
            runtime.network, self.address, request_handler=self._handle_ship
        )
        self.applied_seq = 0
        self.records_applied = 0
        self.entries_applied = 0
        self.checkpoints_applied = 0
        self._applying = False

    @property
    def reachable(self):
        """False once the standby host crashed (endpoint severed)."""
        return not self._endpoint.is_closed

    def close(self):
        """Stop accepting ships; the journal copy stays readable."""
        if not self._endpoint.is_closed:
            self._endpoint.close()

    # ------------------------------------------------------------------
    # Ship application
    # ------------------------------------------------------------------

    def _handle_ship(self, message):
        """Generator: apply one ship batch; replies the applied seq."""
        payload = message.payload
        if payload.get("op") != "ship":
            raise ValueError(f"unexpected replication op {payload.get('op')!r}")
        if self._applying:
            raise ReplicaBusy(self.address)
        self._applying = True
        try:
            meta = payload.get("meta")
            if meta:
                self.journal.meta.update(meta)
            fresh = [
                (seq, kind, record)
                for seq, kind, record in payload["records"]
                if seq > self.applied_seq
            ]
            # Replay cost: every appended entry is new state; a
            # checkpoint is a compaction of state we already hold (the
            # in-order prefix), so only the part beyond what we have
            # replayed — the bootstrap snapshot — costs anything.
            cost_entries = 0
            for __, kind, record in fresh:
                if kind == "entry":
                    cost_entries += 1
                else:
                    cost_entries += max(0, len(record) - len(self.journal))
            if cost_entries:
                yield self._host.cpu_work(REPLAY_ENTRY_S * cost_entries)
            # Apply atomically (no yields): the batch either lands
            # whole before the reply or not at all.
            for seq, kind, record in fresh:
                if kind == "entry":
                    self.journal.append(record.kind, **record.data)
                    self.entries_applied += 1
                else:
                    self.journal.write_checkpoint(
                        JournalEntry(e.kind, dict(e.data)) for e in record
                    )
                    self.checkpoints_applied += 1
                self.applied_seq = seq
                self.records_applied += 1
        finally:
            self._applying = False
        return {"applied_seq": self.applied_seq}

    def __repr__(self):
        return (
            f"<StandbyReplica {self.type_name}@{self.host_name} "
            f"seq={self.applied_seq} entries={len(self.journal)}>"
        )


class ReplicationLink:
    """Primary-side journal shipping to one :class:`StandbyReplica`.

    Subscribes to the primary manager's journal; every write becomes a
    sequenced record in the ship queue.  ``mode="sync"`` drains the
    queue immediately on every write; ``mode="async"`` drains on a
    daemon interval (``ship_interval_s``), coalescing bursts into one
    batch.  Failed ships leave the queue intact — lag is visible as
    the ``repl.lag_entries`` gauge — and retry on backoff (sync) or
    the next interval (async).

    Call :meth:`stop` before promoting the standby: it unsubscribes
    from the (possibly still-live) primary journal and severs both
    endpoints, so a zombie primary cannot keep shipping into a journal
    that has become the new authority.
    """

    def __init__(
        self,
        runtime,
        manager,
        standby_host_name,
        mode="sync",
        ship_interval_s=0.25,
    ):
        if mode not in ("sync", "async"):
            raise ValueError(f"mode must be 'sync' or 'async', got {mode!r}")
        if manager.journal is None:
            raise ValueError("manager has no journal to replicate")
        self._runtime = runtime
        self._manager = manager
        self._journal = manager.journal
        self.mode = mode
        self.ship_interval_s = ship_interval_s
        # Shards of one type replicate under their per-shard scope
        # (e.g. "Sorter/s2"), so a plane's N standby journals never
        # collide in naming or metrics.
        scope = getattr(manager, "replication_scope", manager.type_name)
        self.replica = StandbyReplica(runtime, scope, standby_host_name)
        from repro.net import Endpoint

        self.address = (
            f"{manager.host.name}/repl:{scope}@{next(_link_ids)}"
        )
        self._endpoint = Endpoint(runtime.network, self.address)
        self._seq = 0
        self._queue = []  # [(seq, kind, payload), ...] in ship order
        self._stopped = False
        self._shipping = False
        self._retry_armed = False
        # Bootstrap: the standby starts from a full snapshot, shipped
        # through the same queue as every later write.
        self._enqueue("checkpoint", self._journal.replay())
        self._observer = self._journal.subscribe(self._on_journal_write)
        if mode == "async":
            runtime.sim.spawn(
                self._ship_interval_loop(), name=f"repl-loop:{self.address}"
            )
        else:
            self._kick()

    # ------------------------------------------------------------------
    # Queueing
    # ------------------------------------------------------------------

    def _on_journal_write(self, event, payload):
        if self._stopped:
            return
        self._enqueue("entry" if event == "append" else "checkpoint", payload)
        if self.mode == "sync":
            self._kick()

    def _enqueue(self, kind, payload):
        self._seq += 1
        self._queue.append((self._seq, kind, payload))
        self._publish_lag()

    @property
    def lag(self):
        """Records queued but not yet confirmed applied by the standby."""
        return len(self._queue)

    def _publish_lag(self):
        self._runtime.network.metrics.gauge("repl.lag_entries").set(len(self._queue))

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------

    def _kick(self):
        if self._shipping or self._stopped:
            return
        self._shipping = True
        self._runtime.sim.spawn(self._drain(), name=f"repl-ship:{self.address}")

    def _drain(self):
        try:
            while self._queue and not self._stopped:
                ok = yield from self._ship_batch()
                if not ok:
                    if self.mode == "sync":
                        self._arm_retry()
                    return
        finally:
            self._shipping = False

    def _ship_batch(self):
        """Generator: ship everything queued in one request; True on ack."""
        from repro.net import RemoteError, TransportError

        if self._endpoint.is_closed or not self.replica.reachable:
            # Our host (or the standby's) is down; nothing to do until
            # restart or re-arm.  The queue keeps the backlog.
            return False
        batch = list(self._queue)
        size = META_BYTES
        shipped_entries = 0
        shipped_checkpoints = 0
        for __, kind, payload in batch:
            size += RECORD_FRAMING_BYTES
            if kind == "entry":
                size += estimate_entry_bytes(payload)
                shipped_entries += 1
            else:
                size += sum(estimate_entry_bytes(e) for e in payload)
                shipped_checkpoints += 1
        started = self._runtime.sim.now
        try:
            reply = yield from self._endpoint.request(
                self.replica.address,
                {
                    "op": "ship",
                    "records": batch,
                    "meta": dict(self._journal.meta),
                },
                size_bytes=size,
                timeout_s=SHIP_TIMEOUT_S,
                max_attempts=1,  # ordering: retries go through the queue
            )
        except (RemoteError, TransportError):
            self._runtime.network.count("repl.ship_failures")
            return False
        applied_seq = reply["applied_seq"]
        self._queue = [r for r in self._queue if r[0] > applied_seq]
        self._publish_lag()
        network = self._runtime.network
        network.count("repl.entries_shipped", shipped_entries)
        if shipped_checkpoints:
            network.count("repl.checkpoints_shipped", shipped_checkpoints)
        network.count("repl.bytes_shipped", size)
        network.metrics.timer("repl.ship_latency_s").record(
            self._runtime.sim.now - started
        )
        return True

    def _arm_retry(self):
        if self._retry_armed or self._stopped:
            return
        self._retry_armed = True
        self._runtime.sim.spawn(
            self._retry_later(), name=f"repl-retry:{self.address}"
        )

    def _retry_later(self):
        yield self._runtime.sim.timeout(SHIP_RETRY_BACKOFF_S, daemon=True)
        self._retry_armed = False
        if not self._stopped and self._queue:
            self._kick()

    def _ship_interval_loop(self):
        sim = self._runtime.sim
        while not self._stopped:
            yield sim.timeout(self.ship_interval_s, daemon=True)
            if self._stopped or self._endpoint.is_closed:
                return
            if self._queue:
                self._kick()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def stop(self):
        """Sever the link: no more shipping, both endpoints closed.

        Must run before the standby's journal is promoted — a link left
        live would let a zombie primary keep writing into the new
        authority's history.
        """
        if self._stopped:
            return
        self._stopped = True
        self._journal.unsubscribe(self._observer)
        if not self._endpoint.is_closed:
            self._endpoint.close()
        self.replica.close()

    def __repr__(self):
        state = "stopped" if self._stopped else self.mode
        return (
            f"<ReplicationLink {self._manager.type_name} -> "
            f"{self.replica.host_name} {state} lag={len(self._queue)}>"
        )
