"""DFM descriptors: manager-side version definitions (§2.4).

"A DFM descriptor's structure mirrors that of a DFM, but it is not
used to map function calls to their implementations; instead DFM
descriptors are used by the DCDO Manager to configure its DCDOs" —
when a DCDO is created, when it migrates, and when it evolves.

A descriptor records, per (function, component) pair, whether that
implementation is enabled and exported, plus the §3.2 restriction
state: markings, permanent pins, and dependencies.  Configuration
operations validate against the shared rules in
:mod:`repro.core.validation`.
"""

import itertools
from dataclasses import dataclass, field, replace

from repro.core import validation
from repro.core.errors import ComponentNotIncorporated, PermanenceViolation
from repro.core.functions import Marking

_descriptor_ids = itertools.count(1)


@dataclass(frozen=True)
class DescriptorEntry:
    """State of one function implementation within a descriptor."""

    function: str
    component_id: str
    enabled: bool
    exported: bool


@dataclass(frozen=True)
class ComponentRef:
    """How to obtain a component: its id and its ICO's LOID.

    ``component`` carries the component descriptor itself when the
    ref was built by a manager (which maintains the components): a
    DCDO applying a configuration can then skip the metadata round
    trip and only contact the ICO for code data it does not have
    cached — this is what makes cached-component evolution cost
    microseconds rather than a round trip (§4).
    """

    component_id: str
    ico_loid: object
    component: object = None


@dataclass
class ConfigurationDiff:
    """The change set taking one descriptor state to another.

    Produced by :func:`diff_descriptors`; consumed by a DCDO's
    ``applyConfiguration``.  ``target`` carries the full destination
    descriptor so the object can rebuild its DFM atomically; the add /
    remove lists let it pay exactly the incremental incorporation
    costs.
    """

    target: object
    components_to_add: list = field(default_factory=list)
    components_to_remove: list = field(default_factory=list)
    entry_changes: int = 0
    target_version: object = None
    #: False for compensating (wave-rollback) diffs: returning to the
    #: prior version may legitimately weaken §3.2 markings the aborted
    #: version had introduced, so the prepare-time transition-rule
    #: check is waived (the prior version was itself validated when it
    #: was marked instantiable).
    enforce_restrictions: bool = True

    @property
    def is_noop(self):
        """True when nothing changes."""
        return (
            not self.components_to_add
            and not self.components_to_remove
            and self.entry_changes == 0
        )


class DFMDescriptor:
    """A configurable mirror of a DFM, defining one version.

    Descriptors start empty; managers build them up with the
    configuration operations below, then freeze them by marking the
    owning version instantiable (freezing is the manager's job — the
    descriptor itself stays mutable and is defensively cloned).
    """

    def __init__(self):
        self.descriptor_id = next(_descriptor_ids)
        self._entries = {}
        self._component_refs = {}
        self._markings = {}
        self._pins = {}
        self._dependencies = []

    # ------------------------------------------------------------------
    # State-protocol accessors (shared with the live DFM)
    # ------------------------------------------------------------------

    @property
    def component_ids(self):
        """Set of incorporated component ids."""
        return set(self._component_refs)

    @property
    def dependencies(self):
        """Declared dependencies (list copy)."""
        return list(self._dependencies)

    def entry(self, function, component_id):
        """The entry for (function, component) or None."""
        return self._entries.get((function, component_id))

    def entries_for(self, function):
        """All entries implementing ``function``."""
        return [entry for entry in self._entries.values() if entry.function == function]

    def entries_in(self, component_id):
        """All entries implemented by ``component_id``."""
        return [
            entry for entry in self._entries.values() if entry.component_id == component_id
        ]

    def is_enabled(self, function, component_id):
        """True if that particular implementation is enabled."""
        entry = self._entries.get((function, component_id))
        return entry is not None and entry.enabled

    def enabled_components_of(self, function):
        """Component ids with an enabled implementation of ``function``."""
        return {
            entry.component_id
            for entry in self._entries.values()
            if entry.function == function and entry.enabled
        }

    def marking(self, function):
        """The function's marking (FULLY_DYNAMIC by default)."""
        return self._markings.get(function, Marking.FULLY_DYNAMIC)

    def markings_items(self):
        """(function, marking) pairs for non-default markings."""
        return list(self._markings.items())

    def pin(self, function):
        """The permanent pin for ``function``, or None."""
        return self._pins.get(function)

    def component_ref(self, component_id):
        """The :class:`ComponentRef` for an incorporated component."""
        ref = self._component_refs.get(component_id)
        if ref is None:
            raise ComponentNotIncorporated(f"component {component_id!r} is not incorporated")
        return ref

    def component_refs(self):
        """All component refs, keyed by component id."""
        return dict(self._component_refs)

    def function_names(self):
        """Sorted names of all functions with at least one entry."""
        return sorted({entry.function for entry in self._entries.values()})

    def exported_interface(self):
        """Sorted names of enabled, exported functions (the interface)."""
        return sorted(
            {
                entry.function
                for entry in self._entries.values()
                if entry.enabled and entry.exported
            }
        )

    # ------------------------------------------------------------------
    # Configuration operations (§2.4: "functions for deriving new
    # versions from existing ones, and for configuring the new
    # versions; these functions are similar to a DCDO's configuration
    # functions")
    # ------------------------------------------------------------------

    def incorporate(self, component, ico_loid):
        """Add ``component`` (entries start disabled).

        Merges the component's demanded markings and shipped
        dependencies; fails on permanent-marking conflicts.
        """
        validation.check_can_incorporate(self, component)
        self._component_refs[component.component_id] = ComponentRef(
            component.component_id, ico_loid, component
        )
        for name, function_def in component.functions.items():
            self._entries[(name, component.component_id)] = DescriptorEntry(
                function=name,
                component_id=component.component_id,
                enabled=False,
                exported=function_def.exported,
            )
        for name, demanded in component.required_markings.items():
            self._raise_marking(name, demanded, pin_component=component.component_id)
        for dependency in component.declared_dependencies:
            if dependency not in self._dependencies:
                self._dependencies.append(dependency)

    def remove_component(self, component_id):
        """Remove a component and every entry it implements."""
        surviving_dependencies = validation.check_can_remove_component(self, component_id)
        self._dependencies = surviving_dependencies
        del self._component_refs[component_id]
        self._entries = {
            key: entry
            for key, entry in self._entries.items()
            if entry.component_id != component_id
        }

    def enable(self, function, component_id, replace_current=False):
        """Enable one implementation of ``function``.

        With ``replace_current`` the currently-enabled implementation
        (if any) is swapped out *atomically* — the "replace the
        implementation" evolution step.  Mandatory functions allow
        replacement (some implementation stays enabled throughout);
        permanent ones do not.

        Descriptors are staging areas: dependency closure is NOT
        enforced per enable (enable in any order you like) but is
        validated when the owning version is marked instantiable.
        """
        others = self.enabled_components_of(function) - {component_id}
        if replace_current and others:
            if self.entry(function, component_id) is None:
                raise ComponentNotIncorporated(
                    f"no implementation of {function!r} in component {component_id!r}"
                )
            pinned = self.pin(function)
            if pinned is not None and pinned != component_id:
                raise PermanenceViolation(
                    f"{function!r} is permanently pinned to component {pinned!r}"
                )
            for other in others:
                other_key = (function, other)
                self._entries[other_key] = replace(self._entries[other_key], enabled=False)
            key = (function, component_id)
            self._entries[key] = replace(self._entries[key], enabled=True)
            return
        validation.check_can_enable(self, function, component_id, enforce_dependencies=False)
        key = (function, component_id)
        self._entries[key] = replace(self._entries[key], enabled=True)

    def disable(self, function, component_id):
        """Disable one implementation of ``function``."""
        validation.check_can_disable(self, function, component_id)
        key = (function, component_id)
        self._entries[key] = replace(self._entries[key], enabled=False)

    def set_exported(self, function, component_id, exported):
        """Move a function between the public and private interfaces."""
        entry = self._entries.get((function, component_id))
        if entry is None:
            raise ComponentNotIncorporated(
                f"no implementation of {function!r} in component {component_id!r}"
            )
        self._entries[(function, component_id)] = replace(entry, exported=exported)

    def mark_mandatory(self, function):
        """Mark ``function`` mandatory (irreversible, §3.2)."""
        self._raise_marking(function, Marking.MANDATORY)

    def mark_permanent(self, function, component_id=None):
        """Mark ``function`` permanent, pinning one implementation.

        Defaults to the currently-enabled implementation; fails if the
        function is already pinned elsewhere.
        """
        if component_id is None:
            enabled = self.enabled_components_of(function)
            if len(enabled) != 1:
                raise PermanenceViolation(
                    f"cannot infer the permanent implementation of {function!r}; "
                    f"enabled in {sorted(enabled)}"
                )
            component_id = next(iter(enabled))
        self._raise_marking(function, Marking.PERMANENT, pin_component=component_id)

    def _raise_marking(self, function, marking, pin_component=None):
        current = self.marking(function)
        if marking is Marking.PERMANENT:
            existing_pin = self._pins.get(function)
            if existing_pin is not None and existing_pin != pin_component:
                raise PermanenceViolation(
                    f"{function!r} is already permanently pinned to {existing_pin!r}"
                )
            self._pins[function] = pin_component
        if marking.at_least(current):
            self._markings[function] = marking
        elif not current.at_least(marking):
            self._markings[function] = marking
        # Weakening attempts are ignored rather than raised: markings
        # are monotone ("once a DCDO evolves to a version that contains
        # a function marked mandatory, all future versions ... will
        # contain some implementation", §3.2).

    def add_dependency(self, dependency):
        """Declare a dependency; the current state must satisfy it."""
        trial = self._dependencies + [dependency]
        from repro.core.dependency import check_dependencies

        check_dependencies(trial, self.is_enabled, self.enabled_components_of)
        self._dependencies.append(dependency)

    def remove_dependency(self, dependency):
        """Retract a declared dependency."""
        if dependency in self._dependencies:
            self._dependencies.remove(dependency)

    # ------------------------------------------------------------------
    # Cloning, equivalence, validation, diffing
    # ------------------------------------------------------------------

    def clone(self):
        """Deep copy, used when deriving a new version (§2.4)."""
        copy = DFMDescriptor()
        copy._entries = dict(self._entries)
        copy._component_refs = dict(self._component_refs)
        copy._markings = dict(self._markings)
        copy._pins = dict(self._pins)
        copy._dependencies = list(self._dependencies)
        return copy

    def functionally_equivalent(self, other):
        """§2.1 equivalence: same components, same enabled/exported map."""
        return (
            self.component_ids == other.component_ids
            and self._entries == other._entries
        )

    def validate_instantiable(self):
        """Raise unless this descriptor may be marked instantiable."""
        validation.check_instantiable(self)


def diff_descriptors(current, target):
    """Compute the :class:`ConfigurationDiff` from ``current`` to ``target``."""
    current_components = current.component_ids
    target_components = target.component_ids
    to_add = [
        target.component_ref(component_id)
        for component_id in sorted(target_components - current_components)
    ]
    to_remove = sorted(current_components - target_components)
    changes = 0
    for key, entry in target._entries.items():
        old = current._entries.get(key)
        if old is None or old != entry:
            changes += 1
    changes += sum(1 for key in current._entries if key not in target._entries)
    return ConfigurationDiff(
        target=target.clone(),
        components_to_add=to_add,
        components_to_remove=to_remove,
        entry_changes=changes,
    )
