"""Version identifiers and version trees (§2.1, §3.5).

A :class:`VersionId` is "an array of positive integers that identifies
some version of an object type's implementation"; identifiers are
unique only within one type.  Versions form a derivation tree: deriving
from ``3.2`` yields ``3.2.1``, then ``3.2.2``, and so on, and under the
increasing-version-number policy "objects can only evolve to versions
that are descendants in that tree".
"""

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class VersionId:
    """An immutable dotted version identifier, e.g. ``1.2.3``."""

    parts: tuple

    def __post_init__(self):
        if not self.parts:
            raise ValueError("a version identifier needs at least one part")
        for part in self.parts:
            if not isinstance(part, int) or part < 1:
                raise ValueError(f"version parts must be positive integers, got {self.parts!r}")

    @classmethod
    def parse(cls, text):
        """Build a VersionId from a dotted string like ``"1.2.3"``."""
        try:
            parts = tuple(int(piece) for piece in str(text).split("."))
        except ValueError as error:
            raise ValueError(f"invalid version string {text!r}") from error
        return cls(parts)

    @classmethod
    def root(cls):
        """The conventional first version of a type, ``1``."""
        return cls((1,))

    @property
    def depth(self):
        """Number of dotted parts."""
        return len(self.parts)

    @property
    def parent(self):
        """The version this one was derived from, or None for a root."""
        if len(self.parts) == 1:
            return None
        return VersionId(self.parts[:-1])

    def child(self, index):
        """The ``index``-th version derived from this one."""
        if index < 1:
            raise ValueError(f"child index must be >= 1, got {index}")
        return VersionId(self.parts + (index,))

    def derives_from(self, ancestor):
        """True if this version is ``ancestor`` or a descendant of it.

        ``3.2.1`` derives from ``3.2``; ``3.3`` does not (§3.5).
        """
        if len(ancestor.parts) > len(self.parts):
            return False
        return self.parts[: len(ancestor.parts)] == ancestor.parts

    def __str__(self):
        return ".".join(str(part) for part in self.parts)


class VersionTree:
    """The set of versions defined for one object type.

    Tracks parentage and hands out fresh child identifiers; the
    DFM-store bookkeeping (descriptors, instantiability) lives in the
    manager, which keys it by these identifiers.
    """

    def __init__(self):
        self._children = {}
        self._known = set()
        self._roots = 0

    @property
    def known_versions(self):
        """All version ids ever created, unordered."""
        return set(self._known)

    def new_root(self):
        """Create a fresh top-level version (1, then 2, ...)."""
        self._roots += 1
        version = VersionId((self._roots,))
        self._known.add(version)
        return version

    def derive(self, parent):
        """Create the next child of ``parent`` and return it."""
        if parent not in self._known:
            raise KeyError(f"unknown version {parent}")
        index = self._children.get(parent, 0) + 1
        self._children[parent] = index
        child = parent.child(index)
        self._known.add(child)
        return child

    def restore(self, version):
        """Re-admit a version id replayed from a journal.

        Advances the root/child allocation counters past it, so a
        recovered tree never re-issues an id the crashed manager
        already handed out.
        """
        self._known.add(version)
        if version.depth == 1:
            self._roots = max(self._roots, version.parts[0])
        else:
            parent = version.parent
            self._children[parent] = max(
                self._children.get(parent, 0), version.parts[-1]
            )

    def __contains__(self, version):
        return version in self._known

    def descendants(self, ancestor):
        """All known versions deriving from ``ancestor`` (inclusive)."""
        return {version for version in self._known if version.derives_from(ancestor)}
