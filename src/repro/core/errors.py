"""Errors raised by the DCDO model.

The §3.1 hazard errors (:class:`FunctionNotEnabled`,
:class:`ComponentBusy`) are what programs observe when evolution is
*not* restricted; the restriction errors
(:class:`DependencyViolation`, :class:`PermanenceViolation`,
:class:`MandatoryViolation`) are what configuration calls get when the
§3.2 mechanisms refuse an unsafe change.
"""

from repro.legion.errors import LegionError


class DCDOError(LegionError):
    """Base class for DCDO-model errors."""


class FunctionNotEnabled(DCDOError):
    """No enabled implementation of the function exists in the DFM.

    Raised for internal calls (the *missing/disappearing internal
    function problem*, §3.1) and surfaced to remote clients as
    :class:`~repro.legion.errors.MethodNotFound` (the *disappearing
    exported function problem*).
    """

    def __init__(self, function, detail=""):
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"no enabled implementation of {function!r}{suffix}")
        self.function = function


class FunctionNotExported(DCDOError):
    """The function exists but is internal; remote calls may not use it."""

    def __init__(self, function):
        super().__init__(f"function {function!r} is internal, not exported")
        self.function = function


class ComponentNotIncorporated(DCDOError):
    """The named component is not part of this DCDO."""


class ComponentAlreadyIncorporated(DCDOError):
    """The named component is already part of this DCDO."""


class ComponentBusy(DCDOError):
    """A remove/config request found active threads in the component.

    This is the guard against the *disappearing component problem*
    (§3.1) under the ``error`` removal policy.
    """

    def __init__(self, component_id, active_threads):
        super().__init__(
            f"component {component_id!r} has {active_threads} active thread(s)"
        )
        self.component_id = component_id
        self.active_threads = active_threads


class DependencyViolation(DCDOError):
    """A configuration change would break a declared dependency (§3.2)."""

    def __init__(self, dependency, detail):
        super().__init__(f"{dependency} violated: {detail}")
        self.dependency = dependency


class MandatoryViolation(DCDOError):
    """A change would leave a mandatory function without an enabled
    implementation (§3.2)."""


class PermanenceViolation(DCDOError):
    """A change would alter or disable a permanent function's pinned
    implementation (§3.2)."""


class MarkingConflict(DCDOError):
    """Two components demand incompatible permanent implementations of
    the same function (§3.2: the incorporation "fails")."""


class AmbiguousFunction(DCDOError):
    """Enabling would leave two enabled implementations of one function."""


class VersionError(DCDOError):
    """Base class for version-management errors."""


class UnknownVersion(VersionError):
    """The manager's DFM store has no such version."""


class VersionNotInstantiable(VersionError):
    """The version is still configurable; it cannot create or evolve
    DCDOs until marked instantiable (§2.4)."""


class VersionNotConfigurable(VersionError):
    """The version is instantiable; its DFM descriptor "cannot be
    changed any further" (§2.4)."""


class EvolutionDisallowed(VersionError):
    """The manager's evolution policy refuses this version transition."""


class IncompatibleImplementationType(DCDOError):
    """No component variant matches the target host's implementation type."""


class RollbackFailed(DCDOError):
    """A compensating rollback itself failed mid-undo.

    The transactional evolution guarantee ("never half-applied") rests
    on rollback being infallible in-memory work; if it raises, the
    instance may genuinely be half-applied and operators must
    intervene.  Carries both the original failure that triggered the
    rollback and the error the rollback hit.
    """

    def __init__(self, cause, rollback_error):
        super().__init__(
            f"rollback after {cause!r} failed with {rollback_error!r}; "
            f"instance state may be inconsistent"
        )
        self.cause = cause
        self.rollback_error = rollback_error


class ManagerRecoveryError(DCDOError):
    """Manager recovery could not proceed (e.g. no live host to run on).

    Distinct from transient delivery failures: the recovery call itself
    is impossible right now and should be retried after conditions
    change, not treated as a half-done recovery.
    """


class WaveAborted(VersionError):
    """An evolution wave crossed its abort threshold and was rolled
    back; instances that had committed the new version were returned
    to their prior versions (see :class:`~repro.core.manager.WavePolicy`)."""

    def __init__(self, version, failed, threshold):
        super().__init__(
            f"wave for version {version} aborted: {failed} deliveries failed "
            f"(threshold {threshold})"
        )
        self.version = version
        self.failed = failed
        self.threshold = threshold
