"""Evolution management strategies (§3.3-3.5).

Two orthogonal axes, composed by the DCDO Manager:

- An :class:`EvolutionPolicy` defines *which version transitions are
  legal* — the single-version style (§3.4) and the multi-version
  styles (§3.5: no-update, increasing-version-number, general
  evolution, and the hybrid rule-checking variant).
- An :class:`UpdatePolicy` defines *when instances are brought to a
  new version* — proactive, explicit, or lazy (every call, every k
  calls, every t time units, or on migration).

"Slight variations of the proactive, explicit, and lazy update
policies can be implemented" within the multi-version styles (§3.5);
this composition is exactly that.
"""

from repro.core.policies.base import EvolutionPolicy, UpdatePolicy
from repro.core.policies.canary import (
    CanaryOutcome,
    CanaryWavePolicy,
    run_canary_wave,
)
from repro.core.policies.evolution import (
    GeneralEvolutionPolicy,
    HybridEvolutionPolicy,
    IncreasingVersionPolicy,
    NoUpdatePolicy,
    SingleVersionPolicy,
)
from repro.core.policies.remediation import (
    REMEDIATION_POLICIES,
    DemoteDegradedVersion,
    MigrateOffFlakyHost,
    PrewarmBlobCaches,
    RebalanceHotShard,
    RemediationIntent,
    RemediationPolicy,
    default_remediation_policies,
    register_remediation_policy,
)
from repro.core.policies.update import (
    ExplicitUpdatePolicy,
    LazyUpdatePolicy,
    ProactiveUpdatePolicy,
    ReliableUpdatePolicy,
)

__all__ = [
    "CanaryOutcome",
    "CanaryWavePolicy",
    "DemoteDegradedVersion",
    "EvolutionPolicy",
    "ExplicitUpdatePolicy",
    "GeneralEvolutionPolicy",
    "HybridEvolutionPolicy",
    "IncreasingVersionPolicy",
    "LazyUpdatePolicy",
    "MigrateOffFlakyHost",
    "NoUpdatePolicy",
    "PrewarmBlobCaches",
    "ProactiveUpdatePolicy",
    "REMEDIATION_POLICIES",
    "RebalanceHotShard",
    "ReliableUpdatePolicy",
    "RemediationIntent",
    "RemediationPolicy",
    "SingleVersionPolicy",
    "UpdatePolicy",
    "default_remediation_policies",
    "register_remediation_policy",
]
