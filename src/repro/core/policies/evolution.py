"""Version-transition policies (§3.4 single-version, §3.5 multi-version)."""

from repro.core.errors import EvolutionDisallowed
from repro.core.policies.base import EvolutionPolicy
from repro.core.validation import check_transition_preserves_rules


class SingleVersionPolicy(EvolutionPolicy):
    """§3.4: "exactly one official version ... at any given moment".

    Instances "will only evolve to the current version maintained by
    the DCDO Manager, not to any other version, even if it is marked
    as instantiable".
    """

    name = "single-version"

    def check_transition(self, manager, from_version, to_version):
        current = manager.current_version
        if to_version != current:
            raise EvolutionDisallowed(
                f"single-version policy: instances may only evolve to the "
                f"current version {current}, not {to_version}"
            )


class NoUpdatePolicy(EvolutionPolicy):
    """§3.5: "each DCDO is created with a particular version number,
    and never evolves to a different version"."""

    name = "no-update"

    def check_transition(self, manager, from_version, to_version):
        raise EvolutionDisallowed(
            "no-update policy: deployed objects do not evolve"
        )

    def default_target(self, manager, from_version):
        return None


class IncreasingVersionPolicy(EvolutionPolicy):
    """§3.5: "a DCDO of version V can only evolve to other versions
    that are (eventually) derived from V" — descendants in the
    version tree.  Works well with mandatory functions: a client is
    assured the function exists in all future versions.
    """

    name = "increasing-version"

    def check_transition(self, manager, from_version, to_version):
        if from_version is None:
            return
        if not to_version.derives_from(from_version):
            raise EvolutionDisallowed(
                f"increasing-version policy: {to_version} does not derive "
                f"from {from_version}"
            )

    def default_target(self, manager, from_version):
        """The current version, but only if it derives from ours (§3.5's
        lazy-variant refinement: "the DCDO updates its implementation,
        but only if the new current version is derived from the DCDO's
        version; otherwise the DCDO remains at its present version")."""
        current = manager.current_version
        if current is None or from_version is None:
            return current
        if current.derives_from(from_version):
            return current
        return None


class GeneralEvolutionPolicy(EvolutionPolicy):
    """§3.5: "a DCDO can evolve to any other ready version at any
    time".  This undermines mandatory/permanent assurances — clients
    must re-query interfaces — but is maximally flexible."""

    name = "general-evolution"

    def check_transition(self, manager, from_version, to_version):
        return None


class HybridEvolutionPolicy(EvolutionPolicy):
    """§3.5's hybrid: general evolution, except transitions that would
    "violate any rules, such as removing a mandatory function or
    disabling a permanent function" are disallowed."""

    name = "hybrid"

    def check_transition(self, manager, from_version, to_version):
        if from_version is None:
            return
        source = manager.descriptor_of(from_version, allow_instantiable=True)
        target = manager.descriptor_of(to_version, allow_instantiable=True)
        check_transition_preserves_rules(source, target)

    def default_target(self, manager, from_version):
        current = manager.current_version
        if current is None or from_version is None:
            return current
        try:
            self.check_transition(manager, from_version, current)
        except Exception:  # noqa: BLE001 - any rule violation means "stay put"
            return None
        return current
