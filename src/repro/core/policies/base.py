"""Policy protocols the DCDO Manager composes with."""


class EvolutionPolicy:
    """Decides which version transitions are legal for instances.

    Subclasses raise
    :class:`~repro.core.errors.EvolutionDisallowed` from
    :meth:`check_transition` to veto a transition.  The manager has
    already verified that the target version exists and is
    instantiable before consulting the policy.
    """

    name = "abstract"

    def check_transition(self, manager, from_version, to_version):
        """Raise :class:`EvolutionDisallowed` to veto; return to allow."""
        raise NotImplementedError

    def default_target(self, manager, from_version):
        """The version an unqualified update request should aim for.

        Returns ``None`` when the policy defines no automatic target
        (e.g. no-update).  The default is the manager's current
        version.
        """
        return manager.current_version

    def __repr__(self):
        return f"<{self.__class__.__name__}>"


class UpdatePolicy:
    """Decides when instances are brought to a new version.

    All hooks are optional; the base class is a valid "never update
    automatically" policy (explicit update relies on exactly that).
    """

    name = "abstract"

    def on_new_current_version(self, manager):
        """Called after ``set_current_version``; may return a process
        generator for the manager to spawn (proactive updates do)."""
        return None

    def on_instance_created(self, manager, record):
        """Called after an instance is created and active."""

    def on_instance_migrated(self, manager, record):
        """Called after an instance migrated to a new host; may return
        a process generator (lazy on-migrate checks do)."""
        return None

    def make_instance_checker(self, manager, record):
        """Return an object-side checker for lazy policies, or None.

        The checker protocol is ``should_check(dcdo) -> bool`` plus
        ``run_check(dcdo) -> generator``.
        """
        return None

    def __repr__(self):
        return f"<{self.__class__.__name__}>"
