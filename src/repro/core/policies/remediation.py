"""Pluggable remediation policies for the reactive controller.

The paper's configuration manager evolves objects when *told* to; the
:class:`~repro.cluster.controller.ReactiveController` closes the loop
by deciding *when* — and these policies are the deciding.  Each one
looks at the controller's sensed state (bus events plus polled
health/SLO/shard signals) and proposes :class:`RemediationIntent`\\ s;
the controller owns admission (lease, budget, cooldown, convergence
guard) and then drives the policy's ``execute`` through the existing
transactional machinery.  A policy never mutates manager state
directly: everything goes through ``migrate_instance``,
``propagate_version``, ``split_shard`` — the same paths an operator
would call, with the same journaling and fencing.

The registry is extension-style: decorate a policy class with
:func:`register_remediation_policy` and every controller built with
:func:`default_remediation_policies` picks it up.
"""

from dataclasses import dataclass, field

#: name -> policy class, in registration order (dicts preserve it).
REMEDIATION_POLICIES = {}


def register_remediation_policy(cls):
    """Class decorator: add ``cls`` to the policy registry."""
    REMEDIATION_POLICIES[cls.name] = cls
    return cls


def default_remediation_policies(**overrides):
    """Fresh instances of every registered policy, registration order.

    ``overrides`` maps a policy name to a kwargs dict for its
    constructor (e.g. ``{"rebalance-hot-shard": {"outlier_factor": 2}}``).
    """
    policies = []
    for name, cls in REMEDIATION_POLICIES.items():
        kwargs = overrides.get(name, {})
        policies.append(cls(**kwargs))
    return policies


@dataclass(frozen=True)
class RemediationIntent:
    """One proposed action: what to do, to what, touching which LOIDs.

    ``loids`` is the convergence-guard claim set — every instance the
    action may drive configuration onto.  Empty means the action
    touches no instance configuration (cache prewarms) and needs no
    claim.
    """

    policy: str
    kind: str
    target: str
    loids: tuple = ()
    params: dict = field(default_factory=dict)

    @property
    def cooldown_key(self):
        """Rate-limit key: one cooldown per (policy, target)."""
        return (self.policy, self.target)


class RemediationPolicy:
    """Base class: subclasses override ``evaluate`` and ``execute``."""

    name = "base"
    #: Seconds the controller waits before acting on the same
    #: (policy, target) pair again.
    cooldown_s = 30.0

    def evaluate(self, ctx):
        """Return a list of :class:`RemediationIntent` proposals."""
        return []

    def execute(self, ctx, intent):
        """Generator: carry out one admitted intent; returns a summary
        dict.  Raised transport/legion errors are absorbed by the
        controller (the intent closes as failed; converge repairs)."""
        return {}
        yield  # pragma: no cover - uniform generator shape

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}>"


@register_remediation_policy
class MigrateOffFlakyHost(RemediationPolicy):
    """Move instances off quarantined hosts while they limp.

    Senses the health registry's quarantine set (kept fresh by
    ``health.quarantined`` events); proposes one migration batch per
    quarantined host that still carries active instances.  Execution
    uses the paper's implementation-type machinery —
    ``migrate_instance`` deactivates, ships the OPR, and re-activates
    on the healthiest up host — so a gray host sheds its load instead
    of dragging every wave and client call through its slow NIC.
    """

    name = "migrate-off-flaky-host"
    cooldown_s = 20.0

    def __init__(self, max_instances_per_action=8):
        self.max_instances_per_action = max_instances_per_action

    def evaluate(self, ctx):
        health = ctx.runtime.network.health
        if health is None:
            return []
        manager = ctx.manager
        frozen = manager.canary_frozen_loids()
        intents = []
        for host_name in health.quarantined_hosts():
            if host_name == manager.host.name:
                # The manager's own host is the supervisor's problem
                # (failover), not a migration target set.
                continue
            loids = []
            for loid in manager.instance_loids():
                if loid in frozen:
                    continue
                record = manager.record(loid)
                if record.active and record.host.name == host_name:
                    loids.append(loid)
                if len(loids) >= self.max_instances_per_action:
                    break
            if loids:
                intents.append(
                    RemediationIntent(
                        policy=self.name,
                        kind="migrate",
                        target=host_name,
                        loids=tuple(loids),
                    )
                )
        return intents

    def _pick_target(self, ctx, exclude):
        health = ctx.runtime.network.health
        quarantined = set(health.quarantined_hosts()) if health else set()
        best, best_score = None, -1.0
        for name, host in ctx.runtime.hosts.items():
            if name in exclude or name in quarantined or not host.is_up:
                continue
            score = health.score(name) if health else 1.0
            if score > best_score:
                best, best_score = name, score
        return best

    def execute(self, ctx, intent):
        target = self._pick_target(ctx, exclude={intent.target})
        if target is None:
            return {"moved": 0, "reason": "no-healthy-target"}
        moved = 0
        for loid in intent.loids:
            record = ctx.manager.record(loid)
            if not record.active or record.host.name != intent.target:
                continue  # already moved or died; converge handles it
            yield from ctx.manager.migrate_instance(loid, target)
            moved += 1
        ctx.runtime.network.count("controller.migrations", moved)
        return {"moved": moved, "target": target}


@register_remediation_policy
class DemoteDegradedVersion(RemediationPolicy):
    """Roll the fleet back when the current version breaches its SLO.

    A canary-gated rollout aborts itself on breach — but an unguarded
    adoption (operator push, or a regression that only shows under
    production traffic after the gates passed) leaves the whole fleet
    on a burning version with nothing watching.  This policy senses
    ``slo.breach`` events (and polls registered monitors as a backstop
    for breaches that predate the controller), and originates a
    rollback wave to the current version's parent through the same
    transactional propagation machinery the canary abort uses.
    """

    name = "demote-degraded-version"
    cooldown_s = 60.0

    def __init__(self, streams=None):
        #: Optional SLO stream-name allowlist; None senses every stream.
        self.streams = set(streams) if streams else None

    def _breached(self, ctx):
        for event in ctx.events:
            if event.topic != "slo.breach":
                continue
            if self.streams is None or event.subject in self.streams:
                return str(event.subject)
        for key, snap in ctx.runtime.network.slo_snapshot().items():
            if self.streams is not None and key not in self.streams:
                continue
            if not snap["healthy"]:
                return key
        return None

    def evaluate(self, ctx):
        manager = ctx.manager
        current = manager.current_version
        if current is None:
            return []
        # A still-open canary owns its own breach handling: the gate
        # runner aborts and rolls back; demoting under it would fight.
        for summary in manager.canary_status():
            if not (summary["complete"] or summary["aborted"]):
                return []
        stream = self._breached(ctx)
        if stream is None:
            return []
        prior = manager.version_record(current).parent
        if prior is None:
            return []
        frozen = manager.canary_frozen_loids()
        loids = tuple(
            loid for loid in manager.instance_loids() if loid not in frozen
        )
        return [
            RemediationIntent(
                policy=self.name,
                kind="rollback",
                target=str(current),
                loids=loids,
                params={"prior": prior, "version": current, "stream": stream},
            )
        ]

    def execute(self, ctx, intent):
        from repro.core.manager import WavePolicy

        manager = ctx.manager
        prior = intent.params["prior"]
        demoted = intent.params["version"]
        # 1. Re-designate the prior version (journaled): the official
        #    version stops naming the burning build, and strict
        #    evolution policies stop admitting transitions onto it.
        if manager.current_version != prior:
            manager.set_current_version_async(prior)
        # 2. Breach-abort the demoted version's wave if one is open:
        #    delivered instances roll back through the transactional
        #    abort machinery, and its pending deliveries stop retrying
        #    (otherwise the still-open wave races the rollback,
        #    re-upgrading instances behind it).
        yield from manager.abort_wave(demoted, reason="controller-demote")
        # 3. Converge: anything the abort could not reach (crashed
        #    hosts, inherited trackers) is driven to the prior version.
        tracker = yield from manager.propagate_version(
            prior,
            loids=list(intent.loids),
            retry_policy=ctx.retry_policy,
            wave_policy=WavePolicy.converge(),
        )
        ctx.runtime.network.count("controller.rollbacks")
        return {
            "rolled_back_to": str(prior),
            "all_acked": tracker.all_acked,
            "stream": intent.params.get("stream"),
        }


@register_remediation_policy
class PrewarmBlobCaches(RemediationPolicy):
    """Push component blobs to hosts ahead of a scheduled wave.

    Senses ``deploy.scheduled`` events (published by whoever plans a
    rollout — an operator harness, a canary runner, or the controller
    itself).  For every host carrying instances, any blob of the
    scheduled version not yet in the host cache is fetched ahead of
    time, so the wave's prepare phase links from cache on every host
    instead of serializing on the download protocol.
    """

    name = "prewarm-blob-caches"
    cooldown_s = 5.0

    def evaluate(self, ctx):
        intents = []
        for event in ctx.events:
            if event.topic != "deploy.scheduled":
                continue
            version = event.details.get("version")
            if version is None:
                continue
            intents.append(
                RemediationIntent(
                    policy=self.name,
                    kind="prewarm",
                    target=str(version),
                    params={"version": version},
                )
            )
        return intents

    def execute(self, ctx, intent):
        from repro.net.fabric import DEFAULT_BANDWIDTH_BPS

        manager = ctx.manager
        version = intent.params["version"]
        try:
            descriptor = manager.descriptor_of(version, allow_instantiable=True)
        except Exception:
            return {"prewarmed": 0, "reason": "unknown-version"}
        network = ctx.runtime.network
        targets = {}
        for loid in manager.instance_loids():
            record = manager.record(loid)
            if record.active and record.host.is_up:
                targets[record.host.name] = record.host
        prewarmed = 0
        for host in targets.values():
            for ref in descriptor.component_refs().values():
                component = ref.component
                if component is None:
                    continue
                try:
                    variant = component.variant_for_host(host)
                except Exception:
                    continue  # no build for this architecture
                if host.cache.peek(variant.blob_id) is not None:
                    continue
                # Model the push as one streamed transfer per blob per
                # host — the same bytes the wave's prepare phase would
                # move, paid off the critical path.
                yield ctx.runtime.sim.timeout(
                    network.latency_s
                    + variant.size_bytes / DEFAULT_BANDWIDTH_BPS
                )
                if host.is_up and host.cache.peek(variant.blob_id) is None:
                    host.cache.insert(variant.blob_id, variant.size_bytes)
                    prewarmed += 1
        ctx.runtime.network.count("controller.prewarmed_blobs", prewarmed)
        return {"prewarmed": prewarmed, "hosts": len(targets)}


@register_remediation_policy
class RebalanceHotShard(RemediationPolicy):
    """Split a shard whose waves run persistently slower than its peers.

    The controller folds every ``wave.complete`` event (per-shard
    duration) into an EWMA per shard; a shard whose smoothed wave
    latency exceeds ``outlier_factor``× the median of its peers — with
    at least ``min_samples`` waves observed — is split via the PR 9
    plane machinery, halving its widest range onto a new shard.
    """

    name = "rebalance-hot-shard"
    cooldown_s = 120.0

    def __init__(self, outlier_factor=2.0, min_samples=3, max_shards=8):
        self.outlier_factor = outlier_factor
        self.min_samples = min_samples
        self.max_shards = max_shards

    def evaluate(self, ctx):
        plane = ctx.plane
        if plane is None or len(plane.shards) >= self.max_shards:
            return []
        stats = ctx.controller.shard_wave_stats
        if len(stats) < 2:
            return []
        eligible = {
            shard_id: entry
            for shard_id, entry in stats.items()
            if entry["samples"] >= self.min_samples
            and shard_id in plane.shards
        }
        if len(eligible) < 2:
            return []
        ewmas = sorted(entry["ewma"] for entry in eligible.values())
        # Lower median: with two shards, the outlier must beat the
        # *other* shard's latency, not its own.
        median = ewmas[(len(ewmas) - 1) // 2]
        if median <= 0:
            return []
        intents = []
        for shard_id, entry in eligible.items():
            if entry["ewma"] > self.outlier_factor * median:
                intents.append(
                    RemediationIntent(
                        policy=self.name,
                        kind="split",
                        target=f"s{shard_id}",
                        params={"shard_id": shard_id},
                    )
                )
        return intents

    def execute(self, ctx, intent):
        shard_id = intent.params["shard_id"]
        if shard_id not in ctx.plane.shards:
            return {"split": False, "reason": "shard-gone"}
        manager = yield from ctx.plane.split_shard(shard_id)
        # The hot shard's history no longer describes its halved range.
        ctx.controller.shard_wave_stats.pop(shard_id, None)
        ctx.runtime.network.count("controller.shard_splits")
        return {"split": True, "new_shard": manager.shard_id}
