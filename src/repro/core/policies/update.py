"""Instance-update (propagation) policies (§3.4).

These decide *when* a DCDO's implementation is brought in line with
its manager's versions — the cache-coherence half of the problem: "the
DFM descriptor for the current version in the DCDO Manager represents
the official copy of the data, and the DFMs in the DCDOs represent
cached copies".
"""

from repro.core.policies.base import UpdatePolicy
from repro.legion.errors import LegionError
from repro.net import TransportError


class ProactiveUpdatePolicy(UpdatePolicy):
    """§3.4: "the manager incorporates changes into existing DCDOs as
    soon as a new current version is set ... designating a new current
    version triggers an immediate attempt to update all existing
    instances".

    ``parallel`` controls whether instances are updated concurrently
    (the default; the version cut completes in roughly one instance's
    update time) or serially (cost grows linearly with the fleet — the
    §3.4 caveat that the strategy "does not scale well with the number
    of DCDOs").
    """

    name = "proactive"

    def __init__(self, parallel=True):
        self.parallel = parallel

    def on_new_current_version(self, manager):
        return self._update_all(manager)

    def _update_all(self, manager):
        loids = [record.loid for record in manager.active_instances()]
        if self.parallel:
            updates = [
                manager.runtime.sim.spawn(
                    manager.try_evolve_instance(loid), name=f"update:{loid}"
                )
                for loid in loids
            ]
            from repro.sim.events import AllOf

            if updates:
                yield AllOf(manager.runtime.sim, updates)
        else:
            for loid in loids:
                yield from manager.try_evolve_instance(loid)


class ReliableUpdatePolicy(UpdatePolicy):
    """Proactive propagation with acks, retries, and journaling.

    Where :class:`ProactiveUpdatePolicy` fires one best-effort update
    wave, this routes through the manager's ack-tracked, at-least-once
    :meth:`~repro.core.manager.DCDOManager.propagate_version` protocol:
    per-instance delivery state, backoff-spaced retries, and journal
    entries that let a recovered manager resume mid-wave.  The policy
    the chaos harness (and any deployment that cares about convergence
    under faults) should use.
    """

    name = "reliable"

    def __init__(self, retry_policy=None):
        self.retry_policy = retry_policy

    def on_new_current_version(self, manager):
        return self._propagate(manager, manager.current_version)

    def _propagate(self, manager, version):
        yield from manager.propagate_version(
            version, retry_policy=self.retry_policy
        )


class ExplicitUpdatePolicy(UpdatePolicy):
    """§3.4: "the DCDO Manager relies on other objects to call to the
    manager in order to evolve them to the new current version".

    Nothing happens automatically; external objects invoke the
    manager's exported ``updateInstance`` when they choose — e.g. "a
    client [can] discover that a DCDO is out of date, and initiate the
    update to the current version before invoking a function on the
    object".
    """

    name = "explicit"


class _LazyChecker:
    """Object-side state for one DCDO under a lazy policy."""

    def __init__(self, policy, manager_loid):
        self._policy = policy
        self._manager_loid = manager_loid
        self._calls_since_check = 0
        self._last_check_time = None

    def should_check(self, dcdo):
        """Consult policy cadence: every k calls and/or every t seconds."""
        policy = self._policy
        self._calls_since_check += 1
        now = dcdo.sim.now
        due = False
        if policy.every_k_calls is not None and self._calls_since_check >= policy.every_k_calls:
            due = True
        if policy.every_t_seconds is not None:
            if self._last_check_time is None or now - self._last_check_time >= policy.every_t_seconds:
                due = True
        if policy.every_k_calls is None and policy.every_t_seconds is None:
            # Strict consistency: "having DCDOs consult their class
            # every time they get an invocation request" (§3.4).
            due = True
        return due

    def run_check(self, dcdo):
        """Generator: ask the manager to bring us up to date."""
        self._calls_since_check = 0
        self._last_check_time = dcdo.sim.now
        try:
            yield from dcdo.invoker.invoke(
                self._manager_loid,
                "syncInstance",
                (dcdo.loid,),
                timeout_schedule=(120.0,),
            )
        except (LegionError, TransportError):
            # The manager being unreachable — or our own endpoint
            # closing mid-check (we are being migrated) — must not
            # take user calls down with it; stay at the current
            # version.
            pass


class LazyUpdatePolicy(UpdatePolicy):
    """§3.4: "a DCDO itself determines when it gets updated".

    Variants, matching the paper's list:

    - ``LazyUpdatePolicy()`` — strict consistency, check on every
      invocation request;
    - ``every_k_calls=k`` — "once every k member function calls";
    - ``every_t_seconds=t`` — "once every t time units" (measured at
      call time: the next call after the window expires checks first);
    - ``check_on_migrate=True`` — "only when it migrates from one host
      to another";
    - ``background_every_s=t`` — the §3.5 refinement "after some
      timeout period, a DCDO may check to see if a new current version
      has been set": a per-instance background thread polls the
      manager every ``t`` simulated seconds even with no client
      traffic.
    """

    name = "lazy"

    def __init__(
        self,
        every_k_calls=None,
        every_t_seconds=None,
        check_on_migrate=False,
        background_every_s=None,
    ):
        if every_k_calls is not None and every_k_calls < 1:
            raise ValueError(f"every_k_calls must be >= 1, got {every_k_calls}")
        if every_t_seconds is not None and every_t_seconds <= 0:
            raise ValueError(f"every_t_seconds must be > 0, got {every_t_seconds}")
        if background_every_s is not None and background_every_s <= 0:
            raise ValueError(f"background_every_s must be > 0, got {background_every_s}")
        self.every_k_calls = every_k_calls
        self.every_t_seconds = every_t_seconds
        self.check_on_migrate = check_on_migrate
        self.background_every_s = background_every_s

    def _call_time_checking(self):
        return not (
            self.every_k_calls is None
            and self.every_t_seconds is None
            and (self.check_on_migrate or self.background_every_s is not None)
        )

    def make_instance_checker(self, manager, record):
        if not self._call_time_checking():
            # Pure on-migrate / pure background: no per-call checks.
            return None
        return _LazyChecker(self, manager.loid)

    def on_instance_created(self, manager, record):
        checker = self.make_instance_checker(manager, record)
        if checker is not None:
            record.obj.set_update_checker(checker)
        if self.background_every_s is not None:
            manager.runtime.sim.spawn(
                self._background_poller(manager, record),
                name=f"lazy-bg:{record.loid}",
            )

    def _background_poller(self, manager, record):
        """Process body: poll the manager while the instance is active.

        Sleeps on *daemon* timeouts so the poller never keeps an
        unbounded simulation run alive.
        """
        sim = manager.runtime.sim
        while record.active:
            yield sim.timeout(self.background_every_s, daemon=True)
            if not record.active:
                return
            try:
                yield from manager.try_evolve_instance(record.loid)
            except (LegionError, TransportError):
                # Unreachable manager or instance: try again next tick.
                continue

    def on_instance_migrated(self, manager, record):
        if not self.check_on_migrate:
            return None
        return manager.try_evolve_instance(record.loid)
