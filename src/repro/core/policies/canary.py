"""SLO-gated canary waves: staged evolution behind tail-latency gates.

The paper's update policies (§3.3) decide *when* instances move to a
new version; its transactional waves (our PR 3) decide *what happens*
when deliveries fail.  Neither protects against the nastier failure
mode in long-running grids: a version that installs perfectly and then
quietly ruins the service — p99 latency regressions, elevated error
rates — which structural dependency checks (§3.2) cannot see.

:func:`run_canary_wave` closes that gap.  It evolves a small canary
subset first, holds each ramp stage for a *bake window* while an
:class:`~repro.obs.slo.SLOMonitor` watches live traffic, and either
ramps onward (1% → 10% → 100% by default) or drives the existing
transactional abort — rolling every touched instance back to its prior
version.  Every gate decision is journaled by the manager, so a
promoted standby (PR 5 supervisor) resumes the frozen admitted set or
completes the abort instead of blindly re-converging the fleet onto an
unvetted version.

Canary fleets must use a multi-version evolution policy
(:class:`~repro.core.policies.evolution.IncreasingVersionPolicy` or
laxer): a canary *is* a §3.5 multi-version deployment state — part of
the fleet runs v-next while the current version stays put — which the
single-version policy (§3.4) correctly vetoes.
"""

import math
from dataclasses import dataclass

from repro.core.errors import WaveAborted
from repro.legion.errors import LegionError, UnknownObject
from repro.net import TransportError


@dataclass(frozen=True)
class CanaryWavePolicy:
    """How a gated rollout ramps and when it gives up."""

    #: Cumulative fleet fractions per ramp stage.  Each stage admits
    #: enough instances to reach its fraction, then bakes.
    stages: tuple = (0.01, 0.10, 1.0)
    #: Seconds each stage must stay SLO-healthy before its gate passes.
    bake_s: float = 10.0
    #: How often the gate re-evaluates the monitor during a bake.
    check_interval_s: float = 1.0
    #: Smallest useful canary: fractions round up to at least this.
    min_canary: int = 1
    #: Delivery-level wave policy for each stage's propagation.  Left
    #: None it defaults to ``WavePolicy.abort_after(0)`` — a canary
    #: that cannot even be delivered is not worth baking.
    wave_policy: object = None

    def __post_init__(self):
        if self.wave_policy is None:
            # Deferred import: repro.core.manager imports this package.
            from repro.core.manager import WavePolicy

            object.__setattr__(self, "wave_policy", WavePolicy.abort_after(0))
        if not self.stages:
            raise ValueError("stages must be non-empty")
        last = 0.0
        for fraction in self.stages:
            if not 0.0 < fraction <= 1.0:
                raise ValueError(f"stage fraction {fraction} outside (0, 1]")
            if fraction < last:
                raise ValueError("stage fractions must be non-decreasing")
            last = fraction
        if self.stages[-1] != 1.0:
            raise ValueError("final stage must cover the whole fleet (1.0)")
        if self.bake_s < 0:
            raise ValueError("bake_s must be >= 0")
        if self.check_interval_s <= 0:
            raise ValueError("check_interval_s must be > 0")


@dataclass
class CanaryOutcome:
    """What a gated rollout ultimately did."""

    version: object
    completed: bool = False
    breached: bool = False
    breach_reason: str = None
    #: Gates passed before the rollout ended.
    stage_reached: int = 0
    #: Instances the wave ever touched.
    admitted: int = 0
    fleet_size: int = 0
    #: ``admitted / fleet_size`` — the damage cap a breach enjoyed.
    blast_radius: float = 0.0
    #: True when the runner gave up waiting for a live manager.
    stalled: bool = False


def _live_manager(runtime, type_name):
    """The current authority for ``type_name``, or None while down.

    Resolved fresh on every loop turn: after a failover the runtime
    adopts the promoted standby under the same type name, so the gate
    runner transparently continues against the new primary.
    """
    try:
        manager = runtime.class_of(type_name)
    except UnknownObject:
        return None
    if manager.deposed or not manager.is_active:
        return None
    return manager


def _stage_target(fraction, fleet_size, min_canary):
    return min(fleet_size, max(min_canary, math.ceil(fraction * fleet_size)))


def run_canary_wave(
    runtime,
    type_name,
    version,
    policy=None,
    monitor=None,
    retry_policy=None,
    deadline_s=None,
):
    """Generator: drive ``version`` through an SLO-gated canary rollout.

    Survives manager crashes and failovers mid-rollout: the authority
    is re-resolved every turn and all gate state lives in the manager's
    journal, so the runner picks up exactly where the previous primary
    left off — including finishing an abort the crash interrupted.
    Returns a :class:`CanaryOutcome`.
    """
    policy = policy or CanaryWavePolicy()
    sim = runtime.sim
    started = sim.now

    def outcome(state, fleet_size, stalled=False):
        admitted = len(state.admitted) if state is not None else 0
        return CanaryOutcome(
            version=version,
            completed=state is not None and state.complete,
            breached=state is not None and (state.breached or state.aborted),
            breach_reason=state.breach_reason if state is not None else None,
            stage_reached=state.stage_index if state is not None else 0,
            admitted=admitted,
            fleet_size=fleet_size,
            blast_radius=(admitted / fleet_size) if fleet_size else 0.0,
            stalled=stalled,
        )

    last_state = None
    last_fleet = 0
    #: The gate's own memory of its verdict.  A promoted standby can
    #: legitimately miss the breach journal entry (it ships
    #: asynchronously), and by the time the runner engages it the
    #: monitor may read healthy again because the rollback already
    #: landed — without this the runner would re-ramp a version it
    #: already condemned.
    decided_reason = None
    #: Managers (by identity) with a live background abort driver.
    aborting = set()

    def _drive_abort(mgr, reason):
        """Process body: push one manager's abort; never raises."""
        try:
            yield from mgr.abort_wave(version, reason)
        except (LegionError, TransportError):
            pass  # fenced or died mid-rollback: journal keeps ABORTING
        finally:
            aborting.discard(id(mgr))

    while True:
        if deadline_s is not None and sim.now - started > deadline_s:
            return outcome(last_state, last_fleet, stalled=True)
        manager = _live_manager(runtime, type_name)
        if manager is None:
            yield sim.timeout(policy.check_interval_s)
            continue

        try:
            state = manager.begin_canary(version, policy.stages, policy.bake_s)
            last_state = state
            fleet = manager.instance_loids()
            last_fleet = len(fleet)

            if decided_reason is not None and not (
                state.breached or state.aborted or state.complete
            ):
                # This authority never heard the verdict (failover lost
                # the breach entry): re-assert it before it can ramp.
                manager.mark_canary_breached(version, decided_reason)
                continue

            if state.breached or state.aborted:
                decided_reason = (
                    decided_reason or state.breach_reason or "slo-breach"
                )
                if state.aborted:
                    return outcome(state, len(fleet))
                # Drive the rollback in the background and poll: the
                # abort can take minutes against a sick fleet, and the
                # authority may be deposed mid-way — the runner must
                # keep re-resolving instead of blocking inside one
                # manager's abort.
                if id(manager) not in aborting:
                    aborting.add(id(manager))
                    sim.spawn(
                        _drive_abort(manager, decided_reason),
                        name=f"canary-abort:{type_name}",
                    )
                yield sim.timeout(policy.check_interval_s)
                continue

            if state.complete:
                return outcome(state, len(fleet))

            if state.stage_index >= len(state.stages):
                manager.complete_canary(version)
                return outcome(state, len(fleet))

            # Admit up to this stage's cumulative target, then deliver.
            target = _stage_target(
                state.stages[state.stage_index], len(fleet), policy.min_canary
            )
            if len(state.admitted) < target:
                known = set(state.admitted)
                fresh = [loid for loid in fleet if loid not in known]
                manager.admit_canary_stage(
                    version, fresh[: target - len(state.admitted)]
                )
            try:
                yield from manager.propagate_version(
                    version,
                    loids=list(state.admitted),
                    retry_policy=retry_policy,
                    wave_policy=policy.wave_policy,
                )
            except WaveAborted:
                if manager.is_active and not manager.deposed:
                    decided_reason = decided_reason or "delivery-failures"
                    manager.mark_canary_breached(version, "delivery-failures")
                # A fenced/dead manager's delivery failures say nothing
                # about the version; let the next authority retry.
                continue

            # Bake: hold the stage while the SLO gate watches traffic.
            baked = 0.0
            verdict = "pass"
            while baked < state.bake_s:
                step = min(policy.check_interval_s, state.bake_s - baked)
                yield sim.timeout(step)
                baked += step
                if (
                    manager.deposed
                    or not manager.is_active
                    or _live_manager(runtime, type_name) is not manager
                ):
                    verdict = "retry"  # authority changed under the bake
                    break
                if monitor is not None and not monitor.healthy():
                    status = monitor.evaluate()
                    reason = "; ".join(status.violations) or "slo-breach"
                    decided_reason = decided_reason or reason
                    manager.mark_canary_breached(version, reason)
                    verdict = "breach"
                    break
            if verdict != "pass":
                continue  # breach/abort handled at the top of the loop

            manager.record_canary_gate(version)
        except (LegionError, TransportError):
            # Authority died under us (crash, fencing, stale binding):
            # everything decided so far is journaled; re-resolve.
            yield sim.timeout(policy.check_interval_s)
            continue
