"""Dynamic functions and their evolution markings (§2, §3.2).

A dynamic function implementation lives inside a component and can be
*exported* (callable from other objects) or *internal* (callable only
from within the object).  Independently, the §3.2 restrictions mark a
function name as *fully dynamic* (the default), *mandatory* (some
implementation must stay enabled), or *permanent* (one particular
implementation is frozen in).
"""

import enum
from dataclasses import dataclass


class Marking(enum.Enum):
    """Evolution restriction applied to a dynamic function name."""

    FULLY_DYNAMIC = "fully-dynamic"
    MANDATORY = "mandatory"
    PERMANENT = "permanent"

    def at_least(self, other):
        """True if this marking is as strong as ``other``.

        Permanent subsumes mandatory: a permanent function's pinned
        implementation satisfies "some implementation must be present".
        """
        order = {
            Marking.FULLY_DYNAMIC: 0,
            Marking.MANDATORY: 1,
            Marking.PERMANENT: 2,
        }
        return order[self] >= order[other]


@dataclass(frozen=True)
class FunctionDef:
    """One dynamic function implementation as shipped in a component.

    Attributes
    ----------
    name:
        The dynamic function's name; the DFM's dispatch key.
    body:
        ``body(ctx, *args)`` — a generator function (may yield
        simulated time) or plain function implementing the behaviour.
    exported:
        True if remote objects may invoke the function; internal
        functions "may be called only from within the object" (§2).
    signature:
        Free-form signature string, reported by status functions so
        clients can build invocations.
    """

    name: str
    body: object
    exported: bool = True
    signature: str = ""

    def __post_init__(self):
        if not callable(self.body):
            raise TypeError(f"body of {self.name!r} must be callable")

    @property
    def visibility(self):
        """Human-readable 'exported' / 'internal'."""
        return "exported" if self.exported else "internal"
