"""The DCDO object type (§2, §2.2).

A DCDO is an active Legion object whose user-defined behaviour is
dispatched through a :class:`~repro.core.dfm.DynamicFunctionMapper`.
Its method table holds only the model's **configuration functions**
(``incorporateComponent``, ``removeComponent``, ``enableFunction``,
``disableFunction``, ...) and **status-reporting functions**
(``getInterface``, ``getVersion``, ...); every other name dispatches
through the DFM at the calibrated 10–15 µs indirection cost, with
per-function active-thread counters maintained for thread activity
monitoring (§3.2).

Removal of components with active threads is governed by a
:class:`RemovePolicy` — "it can return an error, it can delay handling
the request until all thread counts go to zero, or it can simply go
ahead with the operation after some time-out period" (§3.2).
"""

import enum
from dataclasses import dataclass, field

from repro.core import validation
from repro.core.dfm import DynamicFunctionMapper
from repro.core.errors import (
    ComponentBusy,
    FunctionNotEnabled,
    FunctionNotExported,
    RollbackFailed,
)
from repro.core.impltype import ImplementationType
from repro.legion.errors import MethodNotFound
from repro.legion.objects import CallContext, LegionObject
from repro.legion.rpc import ReplyEnvelope
from repro.sim import Signal


class RemoveMode(enum.Enum):
    """What to do when a component slated for removal has active threads."""

    ERROR = "error"
    DELAY = "delay"
    TIMEOUT = "timeout"


@dataclass(frozen=True)
class RemovePolicy:
    """A removal mode plus its grace period (for TIMEOUT)."""

    mode: RemoveMode = RemoveMode.ERROR
    grace_s: float = 1.0

    @classmethod
    def error(cls):
        """Fail removals of busy components with :class:`ComponentBusy`."""
        return cls(RemoveMode.ERROR)

    @classmethod
    def delay(cls):
        """Block removals until every thread count reaches zero."""
        return cls(RemoveMode.DELAY)

    @classmethod
    def timeout(cls, grace_s):
        """Wait up to ``grace_s`` for threads to drain, then proceed."""
        return cls(RemoveMode.TIMEOUT, grace_s)


class EvolutionPhase(enum.Enum):
    """Where an instance stands in its evolution transaction."""

    IDLE = "idle"
    PREPARING = "preparing"
    COMMITTING = "committing"
    ROLLING_BACK = "rolling-back"


@dataclass
class EvolutionTransaction:
    """The undo log for one in-flight ``applyConfiguration``.

    *Prepare* records every component it incorporated; *commit* records
    the pre-flip entry states, the pre-adoption restrictions, and every
    component it removed (metadata and variant kept in hand, so re-
    adding costs only DFM updates — the blob is still in the host
    cache).  A rollback replays this log in reverse, leaving the
    instance byte-for-byte on its old version.
    """

    diff: object
    phase: EvolutionPhase = EvolutionPhase.PREPARING
    #: Component ids incorporated during prepare (newest last).
    incorporated: list = field(default_factory=list)
    #: ``(component, variant)`` pairs removed during commit.
    removed: list = field(default_factory=list)
    #: Entry-state snapshot taken at commit start, or None.
    entry_states: object = None
    #: Restrictions snapshot taken at commit start, or None.
    restrictions: object = None


class DynamicCallContext(CallContext):
    """Call context for dynamic-function bodies.

    Adds access to the executing component's private data structures;
    local calls route back through the DFM, so sibling calls pay the
    indirection and hit the §3.1 hazards when the target is gone.
    """

    def __init__(self, obj, method_name, entry):
        super().__init__(obj, method_name)
        self._entry = entry

    @property
    def component_id(self):
        """The component this function's implementation lives in."""
        return self._entry.component_id

    @property
    def component_state(self):
        """The executing component's private data structures (§2)."""
        return self._obj.dfm.component(self._entry.component_id).private_state


class DCDO(LegionObject):
    """A dynamically configurable distributed object.

    Parameters
    ----------
    runtime, loid, host:
        As for :class:`~repro.legion.objects.LegionObject`.
    manager_loid:
        The DCDO Manager coordinating this object's evolution, if any
        (used by lazy update checks).
    remove_policy:
        Behaviour when removing components with active threads.
    """

    def __init__(self, runtime, loid, host, manager_loid=None, remove_policy=None):
        super().__init__(runtime, loid, host)
        self.dfm = DynamicFunctionMapper()
        self._manager_loid = manager_loid
        self._remove_policy = remove_policy or RemovePolicy.error()
        self._version = None
        self._update_checker = None
        self._thread_exit = Signal(runtime.sim, name=f"{loid}.thread-exit")
        self.evolutions_applied = 0
        #: version id -> how many times a diff targeting it was actually
        #: applied (the chaos invariant asserts every count is 1).
        self.applications_by_version = {}
        #: deliveries suppressed by idempotence (already at / already
        #: applying the target) — at-least-once redundancy made visible.
        self.duplicate_deliveries = 0
        #: compensating rollbacks run after failed prepares/commits.
        self.rollbacks = 0
        self._applying = {}
        self._txn = None
        self._register_dcdo_interface()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def version(self):
        """The :class:`~repro.core.version.VersionId` of the current
        implementation, or None before first configuration."""
        return self._version

    @property
    def manager_loid(self):
        """The coordinating DCDO Manager's LOID, or None."""
        return self._manager_loid

    @property
    def observed_manager_term(self):
        """Highest fencing term seen from this object's manager.

        None until a term-stamped management RPC has arrived.  After a
        failover this is the promoted manager's term, and any traffic
        still carrying a lower number is rejected (see
        :meth:`~repro.legion.objects.LegionObject.observed_term`) — so
        comparing this across a fleet shows exactly which instances a
        zombie primary could still confuse.
        """
        if self._manager_loid is None:
            return None
        return self.observed_term(self._manager_loid.type_name)

    @property
    def implementation_type(self):
        """The implementation type of this object's current build.

        Derived from the incorporated component variants when they
        agree (the common case); falls back to an architecture-only
        tag for empty or mixed-format builds.
        """
        impl_types = {
            self.dfm.component(component_id).variant.impl_type
            for component_id in self.dfm.component_ids
        }
        if len(impl_types) == 1:
            return next(iter(impl_types))
        return ImplementationType(architecture=self.host.architecture)

    @property
    def evolution_phase(self):
        """The current :class:`EvolutionPhase` (IDLE when no
        ``applyConfiguration`` transaction is in flight)."""
        if self._txn is None:
            return EvolutionPhase.IDLE
        return self._txn.phase

    @property
    def remove_policy(self):
        """The active removal policy."""
        return self._remove_policy

    def set_remove_policy(self, policy):
        """Install a different removal policy."""
        self._remove_policy = policy

    def set_update_checker(self, checker):
        """Attach a lazy-update checker (installed by update policies)."""
        self._update_checker = checker

    def set_version(self, version):
        """Record the version this object's implementation reflects."""
        self._version = version

    # ------------------------------------------------------------------
    # Dispatch: one level of indirection through the DFM
    # ------------------------------------------------------------------

    def _dynamic_call_overhead(self):
        """The 10-15 us DFM indirection charge (§4 Overhead)."""
        calibration = self.calibration
        cost = self.runtime.rng.jitter(
            "dfm-overhead", calibration.dynamic_call_overhead_s, calibration.dynamic_call_jitter
        )
        return self.sim.timeout(cost)

    def _dispatch_dynamic(self, name, args, external):
        """Generator: route one call through the DFM."""
        try:
            entry = self.dfm.lookup(name, external=external)
        except (FunctionNotEnabled, FunctionNotExported) as error:
            if external:
                # What a remote client observes for the disappearing
                # exported function problem (§3.1): the invocation it
                # built against a stale interface fails.
                raise MethodNotFound(self.loid, name) from error
            raise
        yield self._dynamic_call_overhead()
        self.dfm.enter(entry)
        context = DynamicCallContext(self, name, entry)
        try:
            result, context = yield from self._run_body(
                name, entry.function_def.body, args, context=context
            )
        finally:
            self.dfm.leave(entry)
            self._thread_exit.fire()
        return result, context

    def _dispatch_local(self, name, args, caller=None):
        """Intra-object call: config/status directly, user code via DFM."""
        if name in self._methods:
            return super()._dispatch_local(name, args, caller=caller)
        return self._strip_context(self._dispatch_dynamic(name, args, external=False))

    def _dispatch_external(self, name, args):
        """Network call: config/status directly, user code via DFM."""
        if name in self._methods:
            return super()._dispatch_external(name, args)
        return self._external_result(self._dispatch_dynamic(name, args, external=True))

    @staticmethod
    def _strip_context(dispatch):
        result, __ = yield from dispatch
        return result

    @staticmethod
    def _external_result(dispatch):
        result, context = yield from dispatch
        return result, context.reply_bytes

    def _handle_request(self, message):
        """Lazy-update hook, then normal request service."""
        payload = message.payload
        checker = self._update_checker
        if (
            checker is not None
            and payload.get("op") == "invoke"
            and payload.get("method") not in self._methods
            and checker.should_check(self)
        ):
            yield from checker.run_check(self)
        result = yield from super()._handle_request(message)
        # Piggyback the configuration epoch on every reply (tentpole
        # layer 1): clients' interface leases validate for free on
        # traffic they were sending anyway.
        value, reply_bytes = result
        return ReplyEnvelope(value, self.dfm.epoch), reply_bytes

    # ------------------------------------------------------------------
    # Configuration functions (§2.2), internal generator forms
    # ------------------------------------------------------------------

    def incorporate_component(self, ico_loid, bootstrap=False):
        """Generator: incorporate the component served by ``ico_loid``.

        Fetches metadata from the ICO, then either re-links a locally
        cached variant (~200 us) or pulls the variant data (download-
        dominated for large components) and maps it in.  ``bootstrap``
        marks object-creation time, where per-function dispatch-table
        registration is charged at the (heavier) creation rate.

        Returns the component id.
        """
        component = yield from self.invoker.invoke(
            ico_loid, "getComponent", breaker=self._ico_breaker(ico_loid)
        )
        yield from self._incorporate(component, ico_loid, bootstrap=bootstrap)
        return component.component_id

    def _ico_breaker(self, ico_loid):
        """The shared circuit breaker guarding one ICO's fetch path.

        Keyed cluster-wide on the ICO's LOID: every DCDO fetching from a
        dead ICO contributes failures to the same breaker, so once it
        opens, subsequent fetches across the whole wave fail in
        microseconds instead of each walking minutes of timeouts.
        """
        return self.runtime.network.breaker(f"ico:{ico_loid}")

    def _incorporate(self, component, ico_loid, bootstrap=False, validate=True):
        """Generator: map ``component`` in, metadata already in hand.

        This is the path a manager-driven evolution takes: the diff
        carries the component descriptor, so a locally-cached component
        costs only the ~200 us re-link (§4), with no round trip at all.
        ``validate=False`` is used during atomic descriptor application,
        where marking conflicts against components that are about to be
        removed are transient and the final state is checked instead.
        """
        calibration = self.calibration
        if validate:
            validation.check_can_incorporate(self.dfm, component)
        elif component.component_id in self.dfm.component_ids:
            from repro.core.errors import ComponentAlreadyIncorporated

            raise ComponentAlreadyIncorporated(
                f"component {component.component_id!r} is already incorporated"
            )
        variant = component.variant_for_host(self.host)
        was_cached = yield from self._ensure_variant_cached(variant, ico_loid)
        self.dfm.add_component(component, variant, validate=validate)
        per_function = (
            calibration.function_register_s if bootstrap else calibration.dfm_update_s
        )
        yield self.host.cpu_work(len(component.functions) * per_function)
        self.runtime.trace(
            "component-incorporated",
            self.loid,
            component=component.component_id,
            cached=was_cached,
            bootstrap=bootstrap,
        )
        return component.component_id

    def _ensure_variant_cached(self, variant, ico_loid):
        """Generator: get the variant's blob onto this host, once.

        Blobs are content-addressed (the blob id digests the build), so
        presence in the host :class:`~repro.cluster.filecache.FileCache`
        *is* validity — a rebuilt component carries a new id and never
        collides with a stale entry.  Fills are single-flight per host:
        the first instance to miss becomes the fill leader and pays the
        ICO fetch (guarded by the shared per-ICO circuit breaker);
        colocated instances missing concurrently wait on the host's
        fill gate and re-link from cache when it lands, so one evolution
        wave moves each blob across the network once per *host*, not
        once per instance.  Returns True when the blob was served from
        cache (including the coalesced-wait case).
        """
        calibration = self.calibration
        cache = self.host.cache
        while True:
            if cache.peek(variant.blob_id) is not None:
                cache.record_hit(variant.blob_id)
                # §4: "when the components are cached and available to
                # the DCDO that is evolving, the cost is approximately
                # 200 microseconds per component".
                yield self.host.cpu_work(calibration.component_cached_link_s)
                return True
            leader, gate = self.host.blob_fill_gate(variant.blob_id)
            if not leader:
                self._network_count("blobcache.coalesced_waits")
                yield gate
                continue
            break
        try:
            cache.record_miss()
            # Blob fetches are idempotent reads of immutable content,
            # so a hedged backup fetch is safe (off unless enabled).
            yield from self.invoker.invoke(
                ico_loid,
                "fetchVariant",
                (variant.impl_type,),
                timeout_schedule=(60.0, 60.0),
                breaker=self._ico_breaker(ico_loid),
                hedge=True,
            )
            # Write the fetched data into the local file system.
            yield self.host.cpu_work(
                variant.size_bytes / calibration.component_transfer_bps
            )
            cache.insert(variant.blob_id, variant.size_bytes)
            self._network_count("blobcache.fills")
            self.runtime.network.count(
                "blobcache.bytes_fetched", variant.size_bytes
            )
        finally:
            self.host.blob_fill_done(variant.blob_id)
        # Map it into the address space (dlopen + symbol resolution).
        yield self.host.cpu_work(calibration.component_link_s)
        return False

    def remove_component(self, component_id, validate=True):
        """Generator: remove a component, honouring the removal policy.

        With active threads inside the component, behaviour follows
        :attr:`remove_policy`: ERROR raises :class:`ComponentBusy`,
        DELAY waits for thread counts to reach zero, TIMEOUT waits up
        to the grace period and then proceeds regardless (accepting the
        disappearing-component hazard, as §3.2 allows).
        """
        yield from self._await_component_idle(component_id)
        entry_count = len(self.dfm.entries_in(component_id))
        self.dfm.remove_component(component_id, validate=validate)
        yield self.host.cpu_work(entry_count * self.calibration.dfm_update_s)
        self.runtime.trace("component-removed", self.loid, component=component_id)
        return True

    def _await_component_idle(self, component_id):
        policy = self._remove_policy
        active = self.dfm.active_threads_in(component_id)
        if active == 0:
            return
        if policy.mode is RemoveMode.ERROR:
            raise ComponentBusy(component_id, active)
        deadline = (
            self.sim.now + policy.grace_s if policy.mode is RemoveMode.TIMEOUT else None
        )
        while self.dfm.active_threads_in(component_id) > 0:
            if deadline is not None:
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    return  # grace expired: proceed anyway
                from repro.sim.events import AnyOf

                grace = self.sim.timeout(remaining)
                yield AnyOf(self.sim, [self._thread_exit.wait(), grace])
                grace.cancel()
            else:
                yield self._thread_exit.wait()

    def enable_function(self, function, component_id, replace_current=False):
        """Generator: enable one implementation (one DFM update).

        ``replace_current`` atomically swaps out the currently-enabled
        implementation, the upgrade step Type A dependencies are
        designed to permit.
        """
        self.dfm.enable(function, component_id, replace_current=replace_current)
        yield self.host.cpu_work(self.calibration.dfm_update_s)
        return True

    def disable_function(self, function, component_id, wait_for_dependents=False):
        """Generator: disable one implementation.

        ``wait_for_dependents`` implements the §3.2 refinement: "the
        DCDO can postpone any request to disable F2 until the active
        thread count for F1 (and for all other functions that depend on
        F2) goes to zero".
        """
        if wait_for_dependents:
            dependents = self.dfm.functions_depending_on(function, component_id)
            yield from self._await_functions_idle(dependents)
            # Having drained every dependent thread, the runtime guard
            # replaces the static dependency veto (§3.2).
            self.dfm.disable(function, component_id, enforce_dependencies=False)
        else:
            self.dfm.disable(function, component_id)
        yield self.host.cpu_work(self.calibration.dfm_update_s)
        return True

    def _await_functions_idle(self, function_names):
        def active():
            return sum(
                entry.active_threads
                for name in function_names
                for entry in self.dfm.entries_for(name)
            )

        while active() > 0:
            yield self._thread_exit.wait()

    def apply_configuration(self, diff):
        """Generator: atomically evolve to the diff's target descriptor.

        This is the manager-plane entry point (§2.4: DFM descriptors
        "are used by the DCDO Manager to configure its DCDOs").  The
        target was validated when its version was marked instantiable,
        so intermediate steps skip per-step validation.

        Ordering matters for continuous availability: new components
        are mapped in first (slow — possibly a download — but the old
        implementation keeps serving), then the DFM entry states flip
        in one cheap step, and only then are dropped components removed
        (honouring thread activity via the removal policy).  Concurrent
        callers therefore never observe a window where a function that
        exists in both versions has no enabled implementation.

        The operation is idempotent keyed by the target version id:
        managers deliver at-least-once (retries on timeouts, redelivery
        after a manager recovery), so a duplicate of an already-applied
        diff returns immediately, and a duplicate racing a slow first
        application waits for it rather than interleaving half-applied
        steps.  Per-version application counters make the exactly-once
        *effect* checkable from outside.
        """
        target = diff.target_version
        while target is not None:
            if self._version == target:
                self.duplicate_deliveries += 1
                self._network_count("dcdo.duplicate_deliveries")
                return str(self._version)
            in_flight = self._applying.get(target)
            if in_flight is None:
                break
            # Another delivery of this same version is mid-application:
            # wait for its outcome, then re-check (it may have failed,
            # in which case this duplicate becomes the applier).
            self.duplicate_deliveries += 1
            self._network_count("dcdo.duplicate_deliveries")
            yield in_flight
        if target is not None:
            gate = self._applying[target] = self.sim.event(
                name=f"{self.loid}.applying:{target}"
            )
        try:
            result = yield from self._apply_configuration_body(diff)
        finally:
            if target is not None:
                self._applying.pop(target, None)
                if not gate.triggered:
                    gate.succeed(None)
        return result

    def _network_count(self, name):
        self.runtime.network.count(name)

    def _apply_configuration_body(self, diff):
        """Generator: the two-phase transactional application.

        *Prepare* does the slow, fallible work — ICO fetches for new
        components and the §3.2 transition-rule check against the live
        DFM — without touching any entry state the dispatch path reads.
        *Commit* then flips entry states, adopts the target's
        restrictions, and drops removed components.  Any failure in
        either phase triggers a compensating rollback that returns the
        instance exactly to its pre-transaction state, so an observer
        never finds it half-applied: it is fully on the old version or
        fully on the new one.
        """
        txn = self._txn = EvolutionTransaction(
            diff=diff,
            entry_states=self.dfm.entry_states_snapshot(),
            restrictions=self.dfm.restrictions_snapshot(),
        )
        self._network_count("dcdo.prepares")
        try:
            yield from self._prepare_configuration(txn)
            txn.phase = EvolutionPhase.COMMITTING
            result = yield from self._commit_configuration(txn)
        except Exception as error:
            if not (self.is_active and self.host.is_up):
                # The host died mid-apply: the in-memory state vanishes
                # with the process, so there is nothing local to undo.
                raise
            yield from self._rollback(txn, error)
            raise
        finally:
            self._txn = None
        return result

    def _prepare_configuration(self, txn):
        """Generator: incorporate new components; validate; no flips.

        Everything here either leaves the live dispatch state untouched
        (new components' entries start disabled) or is recorded in the
        transaction's undo log for the compensating rollback.
        """
        diff = txn.diff
        if diff.enforce_restrictions:
            validation.check_transition_preserves_rules(self.dfm, diff.target)
        for ref in diff.components_to_add:
            if ref.component_id in self.dfm.component_ids:
                continue  # duplicate delivery: already incorporated
            if ref.component is not None:
                yield from self._incorporate(ref.component, ref.ico_loid, validate=False)
            else:
                yield from self.incorporate_component(ref.ico_loid)
            txn.incorporated.append(ref.component_id)

    def _commit_configuration(self, txn):
        """Generator: flip entry states, adopt restrictions, drop the
        removed components, and bump the version."""
        diff = txn.diff
        changes = self.dfm.apply_entry_states(diff.target)
        self.dfm.adopt_restrictions(diff.target)
        yield self.host.cpu_work(max(changes, 1) * self.calibration.dfm_update_s)
        for component_id in diff.components_to_remove:
            if component_id not in self.dfm.component_ids:
                continue  # duplicate delivery: already removed
            incorporated = self.dfm.component(component_id)
            yield from self.remove_component(component_id, validate=False)
            txn.removed.append((incorporated.component, incorporated.variant))
        validation.check_state_consistent(self.dfm)
        from_version = self._version
        if diff.target_version is not None:
            self._version = diff.target_version
            self.applications_by_version[diff.target_version] = (
                self.applications_by_version.get(diff.target_version, 0) + 1
            )
        self.evolutions_applied += 1
        self._network_count("dcdo.commits")
        self.runtime.trace(
            "evolved",
            self.loid,
            from_version=str(from_version) if from_version else None,
            to_version=str(self._version) if self._version else None,
            added=len(diff.components_to_add),
            removed=len(diff.components_to_remove),
        )
        return str(self._version) if self._version else None

    def _rollback(self, txn, cause):
        """Generator: compensate a failed prepare or commit.

        Undo runs in reverse order: unmap components incorporated
        during prepare, re-map components removed during commit (their
        variants are still in the host cache, so this is pure re-link
        work), then restore the entry-state and restriction snapshots.
        Rollback is in-memory work and must not fail; if it does, the
        error is wrapped in :class:`RollbackFailed` because the
        never-half-applied guarantee no longer holds for this instance.
        """
        txn.phase = EvolutionPhase.ROLLING_BACK
        try:
            for component_id in reversed(txn.incorporated):
                if component_id in self.dfm.component_ids:
                    yield from self.remove_component(component_id, validate=False)
            for component, variant in reversed(txn.removed):
                if component.component_id not in self.dfm.component_ids:
                    self.dfm.add_component(component, variant, validate=False)
                    yield self.host.cpu_work(
                        len(component.functions) * self.calibration.dfm_update_s
                    )
            self.dfm.restore_entry_states(txn.entry_states)
            self.dfm.restore_restrictions(txn.restrictions)
            yield self.host.cpu_work(self.calibration.dfm_update_s)
            validation.check_state_consistent(self.dfm)
        except Exception as rollback_error:
            raise RollbackFailed(cause, rollback_error)
        self.rollbacks += 1
        self._network_count("dcdo.rollbacks")
        self.runtime.trace(
            "evolution-rolled-back",
            self.loid,
            cause=type(cause).__name__,
            target=str(txn.diff.target_version) if txn.diff.target_version else None,
        )

    # ------------------------------------------------------------------
    # Exported configuration + status interface (§2.2)
    # ------------------------------------------------------------------

    def _register_dcdo_interface(self):
        # Configuration functions.
        self.register_method("incorporateComponent", self._m_incorporate)
        self.register_method("incorporateComponentByPath", self._m_incorporate_by_path)
        self.register_method("removeComponent", self._m_remove)
        self.register_method("enableFunction", self._m_enable)
        self.register_method("disableFunction", self._m_disable)
        self.register_method("setExported", self._m_set_exported)
        self.register_method("applyConfiguration", self._m_apply_configuration)
        # Status-reporting functions.
        self.register_method("getInterface", self._m_get_interface)
        self.register_method("getInterfaceDetailed", self._m_get_interface_detailed)
        self.register_method("getVersion", self._m_get_version)
        self.register_method("getStatus", self._m_get_status)
        self.register_method("getComponents", self._m_get_components)
        self.register_method("getFunctionStatus", self._m_get_function_status)
        self.register_method("getImplementationType", self._m_get_impl_type)

    def _m_incorporate(self, ctx, ico_loid):
        component_id = yield from self.incorporate_component(ico_loid)
        return component_id

    def _m_incorporate_by_path(self, ctx, path):
        """Incorporate a component named through the global namespace
        (§2.3: "implementation components can be named using whatever
        scheme exists for naming objects in the system")."""
        from repro.legion.context_service import lookup_path

        ico_loid = yield from lookup_path(self._endpoint, path)
        component_id = yield from self.incorporate_component(ico_loid)
        return component_id

    def _m_remove(self, ctx, component_id):
        result = yield from self.remove_component(component_id)
        return result

    def _m_enable(self, ctx, function, component_id, replace_current=False):
        result = yield from self.enable_function(
            function, component_id, replace_current=replace_current
        )
        return result

    def _m_disable(self, ctx, function, component_id, wait_for_dependents=False):
        result = yield from self.disable_function(
            function, component_id, wait_for_dependents=wait_for_dependents
        )
        return result

    def _m_set_exported(self, ctx, function, component_id, exported):
        self.dfm.set_exported(function, component_id, exported)
        yield self.host.cpu_work(self.calibration.dfm_update_s)
        return True

    def _m_apply_configuration(self, ctx, diff):
        result = yield from self.apply_configuration(diff)
        return result

    def _m_get_interface(self, ctx):
        """The object's current public interface (§3.1: what clients
        build invocations against)."""
        return self.dfm.exported_interface()
        yield  # pragma: no cover - uniform generator shape

    def _m_get_interface_detailed(self, ctx):
        """The public interface with signatures, serving components,
        and markings — what a client needs to build invocations and
        judge the §3.2 stability assurances."""
        rows = []
        for function in self.dfm.exported_interface():
            entry = self.dfm.lookup(function, external=True)
            rows.append(
                {
                    "function": function,
                    "signature": entry.function_def.signature,
                    "component": entry.component_id,
                    "marking": self.dfm.marking(function).value,
                }
            )
        return rows
        yield  # pragma: no cover - uniform generator shape

    def _m_get_version(self, ctx):
        return str(self._version) if self._version is not None else None
        yield  # pragma: no cover - uniform generator shape

    def _m_get_status(self, ctx):
        """Interface, version, and epoch in one round trip — the
        coalesced form of ``getInterface`` + ``getVersion`` stubs use
        to refresh a lease with a single RPC."""
        return {
            "interface": self.dfm.exported_interface(),
            "version": str(self._version) if self._version is not None else None,
            "epoch": self.dfm.epoch,
        }
        yield  # pragma: no cover - uniform generator shape

    def _m_get_components(self, ctx):
        return sorted(self.dfm.component_ids)
        yield  # pragma: no cover - uniform generator shape

    def _m_get_function_status(self, ctx, function):
        return [
            {
                "component": entry.component_id,
                "enabled": entry.enabled,
                "exported": entry.exported,
                "active_threads": entry.active_threads,
                "calls": entry.calls,
                "marking": self.dfm.marking(function).value,
            }
            for entry in self.dfm.entries_for(function)
        ]
        yield  # pragma: no cover - uniform generator shape

    def _m_get_impl_type(self, ctx):
        return self.implementation_type
        yield  # pragma: no cover - uniform generator shape
