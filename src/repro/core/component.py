"""Implementation components (§2, §2.3).

An :class:`ImplementationComponent` is the unit of replaceable
implementation: a set of dynamic function implementations, optional
private data, per-function evolution markings the component *demands*
of any DCDO that incorporates it, and dependencies shipped with the
component (the paper notes structural dependencies "could be automated
via static analysis" by whatever builds the component).

A component may carry several :class:`ComponentVariant` builds — one
per implementation type — which is what lets a DCDO migrate between
heterogeneous hosts while staying at the same version (§2.1).
"""

import hashlib
from dataclasses import dataclass, field

from repro.core.errors import IncompatibleImplementationType
from repro.core.functions import FunctionDef, Marking
from repro.core.impltype import NATIVE


def content_digest(component_id, impl_type, size_bytes, content_rev=0):
    """Content address for one compiled component build.

    The digest keys on everything that identifies the build's *bytes*:
    the component id, its content revision (bumped whenever the code is
    rebuilt), the implementation type it was compiled for, and the
    build's size.  Two hosts fetching the same build therefore agree on
    the blob id, and a rebuilt component gets a fresh id — so caches
    keyed by blob id are invalidated by construction rather than by any
    explicit protocol: a stale entry is simply never asked for again.
    """
    key = f"{component_id}|{content_rev}|{impl_type}|{size_bytes}"
    return "sha256:" + hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ComponentVariant:
    """One compiled build of a component for one implementation type."""

    impl_type: object
    size_bytes: int
    blob_id: str

    def __post_init__(self):
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")


@dataclass
class ImplementationComponent:
    """A named, versionable fragment of an object's implementation.

    Attributes
    ----------
    component_id:
        Globally unique component name (also used in dependency and
        permanence declarations).
    functions:
        name -> :class:`FunctionDef` implemented by this component.
    variants:
        impl_type -> :class:`ComponentVariant`; at least one required
        before the component can be incorporated anywhere.
    required_markings:
        name -> :class:`Marking` the component demands in any DCDO it
        is incorporated into ("programmers can mark a dynamic function
        as mandatory (or permanent) within a descriptor that is
        maintained with the component itself", §3.2).
    declared_dependencies:
        Dependencies shipped with the component, merged into a DFM
        descriptor at incorporation.
    """

    component_id: str
    functions: dict = field(default_factory=dict)
    variants: dict = field(default_factory=dict)
    required_markings: dict = field(default_factory=dict)
    declared_dependencies: list = field(default_factory=list)

    def function_names(self):
        """Sorted names of functions implemented here."""
        return sorted(self.functions)

    def exported_names(self):
        """Sorted names of exported functions (the component interface)."""
        return sorted(name for name, fn in self.functions.items() if fn.exported)

    def add_variant(self, variant):
        """Register a build for one implementation type."""
        self.variants[variant.impl_type] = variant
        return variant

    def variant_for_host(self, host):
        """The variant that runs on ``host``.

        Raises :class:`IncompatibleImplementationType` if none match.
        """
        for impl_type, variant in self.variants.items():
            if impl_type.compatible_with_host(host):
                return variant
        raise IncompatibleImplementationType(
            f"component {self.component_id!r} has no variant for "
            f"architecture {host.architecture!r}"
        )

    def marking_demand(self, function):
        """The marking this component requires for ``function``."""
        return self.required_markings.get(function, Marking.FULLY_DYNAMIC)


class ComponentBuilder:
    """Fluent construction of components, used by tests and examples.

    >>> component = (
    ...     ComponentBuilder("math-v1")
    ...     .function("add", lambda ctx, a, b: a + b, signature="int add(int,int)")
    ...     .internal_function("carry", lambda ctx: 0)
    ...     .variant(size_bytes=120_000)
    ...     .build()
    ... )
    """

    def __init__(self, component_id):
        self._component = ImplementationComponent(component_id=component_id)
        self._variant_count = 0
        self._content_rev = 0

    def revision(self, content_rev):
        """Declare the build revision of this component's code.

        Default variants minted after this call carry a content digest
        keyed by the revision, so rebuilding a component (same id, new
        code) yields new blob ids and old cache entries go stale
        harmlessly instead of being served as the new build.
        """
        if content_rev < 0:
            raise ValueError(f"content_rev must be >= 0, got {content_rev}")
        self._content_rev = content_rev
        return self

    def function(self, name, body, signature="", exported=True):
        """Add an exported (by default) dynamic function."""
        self._component.functions[name] = FunctionDef(
            name=name, body=body, exported=exported, signature=signature
        )
        return self

    def internal_function(self, name, body, signature=""):
        """Add an internal dynamic function."""
        return self.function(name, body, signature=signature, exported=False)

    def require_mandatory(self, name):
        """Demand the function be mandatory wherever this is incorporated."""
        self._component.required_markings[name] = Marking.MANDATORY
        return self

    def require_permanent(self, name):
        """Demand the function be permanent wherever this is incorporated."""
        self._component.required_markings[name] = Marking.PERMANENT
        return self

    def depends(self, dependency):
        """Ship a dependency with the component."""
        self._component.declared_dependencies.append(dependency)
        return self

    def variant(self, size_bytes, impl_type=NATIVE, blob_id=None):
        """Add a compiled build of the component.

        Without an explicit ``blob_id`` the build is content-addressed:
        the id is a digest over (component id, revision, impl type,
        size), shared by every host that fetches this exact build.
        """
        self._variant_count += 1
        blob_id = blob_id or content_digest(
            self._component.component_id,
            impl_type,
            size_bytes,
            content_rev=self._content_rev,
        )
        self._component.add_variant(
            ComponentVariant(impl_type=impl_type, size_bytes=size_bytes, blob_id=blob_id)
        )
        return self

    def build(self):
        """Return the finished component (adds a default variant if none)."""
        if not self._component.variants:
            self.variant(size_bytes=64_000)
        return self._component
