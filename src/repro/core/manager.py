"""The DCDO Manager (§2.4).

"A DCDO Manager is in charge of maintaining implementation components
for a particular object type, and for evolving the DCDOs that it
manages."  It extends the Legion class object with:

- a **DFM store**: version id -> (DFM descriptor, instantiable flag);
  configurable versions are derived by logically copying existing
  ones, configured, and eventually marked instantiable — after which
  they "cannot be changed any further";
- a **DCDO table**: per-instance version identifier and implementation
  type, used "when deciding when and how to evolve its DCDOs";
- component registration (creating ICOs);
- the evolution entry points the update policies drive.
"""

import enum
from dataclasses import dataclass

from repro.core.dcdo import DCDO, RemovePolicy
from repro.core.descriptor import DFMDescriptor, diff_descriptors
from repro.core.errors import (
    EvolutionDisallowed,
    UnknownVersion,
    VersionNotConfigurable,
    VersionNotInstantiable,
    WaveAborted,
)
from repro.core.ico import ImplementationComponentObject
from repro.core.partition import HASH_SPACE, StalePartitionMap, partition_slot
from repro.core.policies.evolution import SingleVersionPolicy
from repro.core.policies.update import ExplicitUpdatePolicy
from repro.core.recovery import DeliveryStatus, PropagationTracker
from repro.core.version import VersionTree
from repro.legion.errors import LegionError, StaleManagerTerm, UnknownObject
from repro.legion.klass import ClassObject, InstanceRecord
from repro.legion.loid import mint_loid
from repro.net import ManagerTerm, RetryPolicy, TransportError, run_windowed

#: Spacing for at-least-once propagation deliveries: patient enough to
#: ride out a host outage plus stale-binding rediscovery, bounded so a
#: permanently dead instance is eventually marked FAILED.
DEFAULT_PROPAGATION_RETRY = RetryPolicy(
    base_s=1.0, multiplier=2.0, max_backoff_s=60.0, max_attempts=6
)


class WaveMode(enum.Enum):
    """What a propagation wave does about delivery failures."""

    #: Keep converging: failed deliveries stay FAILED until a later
    #: re-propagation re-arms them (the pre-transactional behaviour).
    CONVERGE = "converge"
    #: All-or-nothing: past the failure threshold the wave rolls every
    #: committed instance back to its prior version and marks itself
    #: aborted.
    ABORT = "abort"


@dataclass(frozen=True)
class WavePolicy:
    """How :meth:`DCDOManager.propagate_version` handles a failing wave.

    ``abort_threshold=k`` means the wave tolerates up to ``k`` FAILED
    deliveries; one more and it aborts — already-committed instances
    are evolved *back* to the versions they were on when the wave
    started (captured in the tracker's ``prior_versions``), the wave
    is journaled ABORTED, and :class:`WaveAborted` is raised.  The
    abort decision and every rollback are write-ahead logged, so a
    manager crash mid-abort resumes — and completes — the abort on
    recovery.
    """

    mode: WaveMode = WaveMode.CONVERGE
    abort_threshold: int = 0

    @classmethod
    def converge(cls):
        """Today's behaviour: failures wait for a later re-propagation."""
        return cls(mode=WaveMode.CONVERGE)

    @classmethod
    def abort_after(cls, threshold):
        """Abort (and roll back) once more than ``threshold`` deliveries fail."""
        if threshold < 0:
            raise ValueError("abort_threshold must be >= 0")
        return cls(mode=WaveMode.ABORT, abort_threshold=threshold)

    def should_abort(self, failed_count):
        """True when ``failed_count`` failures cross the threshold."""
        return self.mode is WaveMode.ABORT and failed_count > self.abort_threshold


@dataclass
class VersionRecord:
    """One entry in the DFM store."""

    version: object
    descriptor: DFMDescriptor
    instantiable: bool = False
    parent: object = None


@dataclass
class CanaryState:
    """Durable gate state for one SLO-gated canary rollout.

    Every transition (stage admitted, gate passed, breach declared,
    rollout completed) is journaled by the manager, so a promoted
    standby knows exactly which instances a half-finished canary had
    already touched — it resumes the frozen admitted set (or completes
    the abort) instead of blindly re-converging the whole fleet.
    """

    version: object
    #: Cumulative fleet fractions per ramp stage, e.g. (0.01, 0.1, 1.0).
    stages: tuple
    #: Bake window (seconds of healthy SLO) each stage must survive.
    bake_s: float
    #: Instances admitted to the wave so far, admission order.
    admitted: list = None
    #: Number of stages whose health gate has passed.
    stage_index: int = 0
    breached: bool = False
    breach_reason: str = None
    #: True when the final gate passed and the version was adopted.
    complete: bool = False
    #: True when a breach-triggered abort finished rolling back.
    aborted: bool = False

    def __post_init__(self):
        if self.admitted is None:
            self.admitted = []

    @property
    def closed(self):
        """True when the rollout is finished, either way."""
        return self.complete or self.aborted

    def summary(self):
        """Plain-dict view for reports and assertions."""
        return {
            "version": str(self.version),
            "stages": list(self.stages),
            "stage_index": self.stage_index,
            "admitted": len(self.admitted),
            "breached": self.breached,
            "breach_reason": self.breach_reason,
            "complete": self.complete,
            "aborted": self.aborted,
        }


class DCDOManager(ClassObject):
    """Coordinates creation and evolution for one DCDO type.

    Parameters
    ----------
    runtime, type_name, host:
        As for :class:`~repro.legion.klass.ClassObject`.
    evolution_policy:
        Which version transitions are legal (default: single-version).
    update_policy:
        When instances are updated (default: explicit).
    remove_policy:
        Removal policy installed on created instances.
    journal:
        Optional :class:`~repro.core.recovery.ManagerJournal`; when
        attached, every durable decision is write-ahead logged so the
        manager can be rebuilt after a crash (see
        :func:`~repro.core.recovery.recover_manager`).
    propagation_retry_policy:
        Spacing/limits for at-least-once propagation deliveries.
    fanout_window:
        Maximum concurrent in-flight deliveries when pushing an
        evolution to many instances (default 8).  Bounds the burst of
        management RPCs a wave puts on the network while still keeping
        the pipe full; ``window=1`` degenerates to the old sequential
        loop.
    wave_policy:
        Default :class:`WavePolicy` for :meth:`propagate_version`
        (converge unless told otherwise).
    """

    def __init__(
        self,
        runtime,
        type_name,
        host,
        implementations=(),
        instance_factory=None,
        evolution_policy=None,
        update_policy=None,
        remove_policy=None,
        journal=None,
        propagation_retry_policy=None,
        fanout_window=8,
        wave_policy=None,
        loid=None,
    ):
        super().__init__(
            runtime,
            type_name,
            host,
            implementations=implementations,
            instance_factory=instance_factory,
            loid=loid,
        )
        self.evolution_policy = evolution_policy or SingleVersionPolicy()
        self.update_policy = update_policy or ExplicitUpdatePolicy()
        self._remove_policy = remove_policy or RemovePolicy.error()
        self._version_tree = VersionTree()
        self._dfm_store = {}
        self._current_version = None
        self._components = {}
        self._instance_versions = {}
        self._instance_impl_types = {}
        self._propagations = {}
        self._canaries = {}
        self._journal = None
        self.propagation_retry_policy = (
            propagation_retry_policy or DEFAULT_PROPAGATION_RETRY
        )
        if fanout_window < 1:
            raise ValueError("fanout_window must be >= 1")
        self.fanout_window = fanout_window
        self._relay_directory = None
        self._relay_fanout_k = 0
        self._relay_batch_window = None
        self._relay_announce = False
        self._relay_roster_id = None
        self.wave_policy = wave_policy or WavePolicy.converge()
        self.evolutions_performed = 0
        #: Monotonic fencing term: every management RPC this manager
        #: sends carries (type_name, term).  Recovery bumps it, so a
        #: deposed primary's traffic is rejected by anything the newer
        #: primary already touched.
        self._term = 1
        #: Set once a peer proves a newer term exists; the manager has
        #: deactivated itself and must never act again.
        self.deposed = False
        #: Sharded-plane identity (see :mod:`repro.core.shardplane`).
        #: None for the paper's unsharded one-manager-per-type shape.
        #: ``_term_scope`` keys :class:`ManagerTerm` fencing — shards
        #: fence independently, so one shard's failover never deposes
        #: its siblings' in-flight waves.
        self.shard_id = None
        self._term_scope = type_name
        self._partition_view = None
        self._released_spans = []
        #: Remediation plane: one term-fenced lease gating automated
        #: (controller-originated) actions, plus the journaled intents
        #: of in-flight remediations (see the remediation section).
        self._remediation_lease = None
        self._remediations = {}
        self._register_manager_methods()
        if journal is not None:
            self.attach_journal(journal)

    # ------------------------------------------------------------------
    # Durability (write-ahead journal)
    # ------------------------------------------------------------------

    @property
    def journal(self):
        """The attached :class:`ManagerJournal`, or None."""
        return self._journal

    def attach_journal(self, journal):
        """Start write-ahead logging to ``journal``.

        Records identity metadata (type name, home host, policy
        objects) so :func:`~repro.core.recovery.recover_manager` can
        rebuild an equivalent manager from the journal alone.
        """
        self._journal = journal
        journal.meta.setdefault("type_name", self.type_name)
        journal.meta["host_name"] = self._host.name
        journal.meta["evolution_policy"] = self.evolution_policy
        journal.meta["update_policy"] = self.update_policy
        journal.meta["remove_policy"] = self._remove_policy
        journal.meta["class_loid"] = self.loid
        if self.shard_id is not None:
            journal.meta["shard_id"] = self.shard_id
            journal.meta["term_scope"] = self._term_scope
            journal.meta["partition_map"] = self._partition_view

    def _journal_append(self, kind, **data):
        if self._journal is not None:
            self._journal.append(kind, **data)
            self._publish_journal_gauges()

    def _publish_journal_gauges(self):
        if self._journal is None:
            return
        metrics = self._runtime.network.metrics
        metrics.gauge("journal.entries").set(len(self._journal))
        metrics.gauge("journal.bytes").set(self._journal.bytes)

    def _count(self, name, amount=1):
        self._runtime.network.count(name, amount)

    # ------------------------------------------------------------------
    # Fencing terms (failover safety)
    # ------------------------------------------------------------------

    @property
    def term(self):
        """This manager's fencing term number."""
        return self._term

    def current_term(self):
        """The :class:`~repro.net.ManagerTerm` stamped on outgoing RPCs."""
        return ManagerTerm(self._term_scope, self._term)

    def bump_term(self):
        """Advance the fencing term (journaled); returns the new number.

        Called on every recovery/promotion, so a standby taking over
        always outranks the primary it replaces — even across double
        failover, because the bump is journaled and shipped like any
        other durable decision.
        """
        self._term += 1
        self._journal_append("term", number=self._term)
        self._count("manager.term_bumps")
        self._runtime.trace("manager-term", self.loid, term=self._term)
        return self._term

    def _fence(self, error):
        """Stand down: a peer proved a newer term exists.

        A healed old primary discovers its deposal the first time one
        of its RPCs reaches an object the new primary already touched;
        the only safe reaction is to stop acting entirely — the journal
        the new primary recovered from already owns the durable state.
        """
        if self.deposed:
            return
        self.deposed = True
        self._count("manager.fenced_stepdowns")
        self._runtime.trace(
            "manager-fenced",
            self.loid,
            term=self._term,
            latest=getattr(error, "latest", None),
        )
        self.deactivate()

    def activate(self):
        binding = yield from super().activate()
        # Stamp every outgoing management RPC with the current term.
        self._invoker.term_source = self.current_term
        return binding

    # ------------------------------------------------------------------
    # Sharded manager plane (partition-map ownership)
    # ------------------------------------------------------------------

    def configure_shard(self, shard_id, partition_map):
        """Scope this manager to one shard of a partitioned plane.

        ``partition_map`` is the plane's shared
        :class:`~repro.core.partition.ReplicatedPartitionMap`; the map
        — not the DCDO table — is the ownership authority, so this
        manager answers only for LOIDs hashing into its mapped spans.
        Fencing terms move to the per-shard scope
        ``"<type>/s<shard_id>"``: shards fail over independently.
        """
        self.shard_id = shard_id
        self._term_scope = f"{self.type_name}/s{shard_id}"
        self._partition_view = partition_map
        if self._journal is not None:
            self._journal.meta["shard_id"] = shard_id
            self._journal.meta["term_scope"] = self._term_scope
            self._journal.meta["partition_map"] = partition_map
        return self

    @property
    def partition_map(self):
        """The plane's replicated partition map (None when unsharded)."""
        return self._partition_view

    @property
    def replication_scope(self):
        """Naming scope for standby journals/links (per-shard when sharded)."""
        return self._term_scope

    def owns(self, loid):
        """Does this manager own ``loid`` under the *current* map?

        Unsharded managers own everything.  Sharded managers consult
        the map, not their table: after a handoff commit the source
        still holds the moved rows for a moment, but must already
        refuse writes for them.
        """
        if self._partition_view is None:
            return True
        return self._partition_view.current.shard_for(loid) == self.shard_id

    def owned_spans(self):
        """This shard's ``(lo, hi)`` slot spans under the current map."""
        if self._partition_view is None:
            return ((0, HASH_SPACE),)
        return self._partition_view.current.spans_of(self.shard_id)

    def _shard_guard(self, epoch, loid):
        """Bounce a routed RPC whose map epoch no longer covers ``loid``.

        The bounce piggybacks this shard's current map snapshot (the
        PR 2 stale-epoch pattern), so the caller refreshes from the
        rejection itself.  A *stale but correctly routed* caller is
        served — ownership, not epoch equality, is what's guarded.
        """
        if self._partition_view is None:
            return
        current = self._partition_view.current
        if current.shard_for(loid) != self.shard_id:
            raise StalePartitionMap(epoch, current.epoch, snapshot=current)

    def _announce_hash_range(self):
        """Slot spans announcements should filter on (None unsharded).

        Relays enumerate *their own* colocated instances when applying
        an announcement; on a sharded plane several shards' instances
        share every host, so the bundle must carry the announcing
        shard's spans or the relay would evolve (and count into the
        ack digest) its siblings' instances.
        """
        if self._partition_view is None:
            return None
        return self.owned_spans()

    def adopt_component(self, component, ico_loid, host_name=None):
        """Mirror a sibling shard's component registration.

        Exactly one shard (shard 0) creates the ICO and binds the
        context path; every other shard adopts the same live ICO so
        descriptors resolve identically plane-wide.  The adoption is
        journaled as a normal ``component`` entry — replay re-links the
        shared ICO (or re-creates it if its host died).
        """
        if component.component_id in self._components:
            raise ValueError(
                f"component {component.component_id!r} already registered"
            )
        self._components[component.component_id] = (component, ico_loid)
        self._journal_append(
            "component",
            component=component,
            ico_loid=ico_loid,
            host_name=host_name,
        )
        return ico_loid

    def export_rows(self, span):
        """DCDO-table rows whose slot falls in ``span``, for handoff."""
        lo, hi = span
        rows = []
        for loid, record in self._instances.items():
            if lo <= partition_slot(loid) < hi:
                rows.append(
                    (loid, record, self._instance_versions.get(loid))
                )
        return rows

    def adopt_rows(self, rows):
        """Install handed-off rows (journaled before the map commits).

        The target journals each row as ordinary ``instance`` /
        ``instance-version`` entries *before* the partition map's epoch
        bump makes it the owner — a crash between the two leaves the
        map (the authority) pointing at the source, and the target's
        orphan rows are pruned by reconciliation against the map.
        """
        for loid, record, version in rows:
            self._instances[loid] = record
            if record.obj is not None:
                self._instance_impl_types[loid] = record.obj.implementation_type
            self._journal_append(
                "instance", loid=loid, host_name=record.host.name
            )
            if version is not None:
                self._instance_versions[loid] = version
                self._journal_append(
                    "instance-version", loid=loid, version=version
                )

    def release_span(self, span):
        """Drop rows in ``span`` after the map has moved them away.

        Journaled as ``range-released`` so replay of the source's
        journal also forgets the rows; the fencing term bumps so any
        in-flight wave delivery this shard still has queued for the
        moved instances is rejected by instances the new owner already
        touched.
        """
        lo, hi = span
        dropped = []
        for loid in list(self._instances):
            if lo <= partition_slot(loid) < hi:
                dropped.append(loid)
                del self._instances[loid]
                self._instance_versions.pop(loid, None)
                self._instance_impl_types.pop(loid, None)
        self._released_spans.append(span)
        self._journal_append("range-released", span=span)
        self.bump_term()
        self._count("manager.shard.ranges_released")
        return dropped

    def prune_rows(self, loids):
        """Drop specific rows the partition map assigns elsewhere.

        Reconciliation uses this to clear orphans left by an aborted
        handoff (rows adopted and journaled before the map commit
        failed).  Journaled so replay forgets them too.
        """
        pruned = []
        for loid in loids:
            if loid in self._instances:
                del self._instances[loid]
                self._instance_versions.pop(loid, None)
                self._instance_impl_types.pop(loid, None)
                pruned.append(loid)
        if pruned:
            self._journal_append("rows-pruned", loids=tuple(pruned))
        return pruned

    # ------------------------------------------------------------------
    # Component registration (ICOs)
    # ------------------------------------------------------------------

    def register_component(self, component, host_name=None):
        """Create an ICO serving ``component``; returns its LOID.

        The ICO is a full active object, bound into the context space
        under ``/components/<type>/<component-id>`` so it benefits from
        the system's global namespace (§2.3).
        """
        if component.component_id in self._components:
            raise ValueError(f"component {component.component_id!r} already registered")
        host = self._pick_host(host_name)
        loid = mint_loid(self._runtime.domain, f"{self.type_name}.ICO")
        ico = ImplementationComponentObject(self._runtime, loid, host, component=component)
        self._runtime.sim.run_process(ico.activate())
        self._runtime.attach_object(ico)
        self._runtime.context_space.bind(
            f"/components/{self.type_name}/{component.component_id}", loid
        )
        self._components[component.component_id] = (component, loid)
        self._journal_append(
            "component", component=component, ico_loid=loid, host_name=host.name
        )
        return loid

    def component_ico(self, component_id):
        """The ICO LOID serving ``component_id``."""
        try:
            return self._components[component_id][1]
        except KeyError:
            raise UnknownVersion(
                f"component {component_id!r} is not registered with this manager"
            ) from None

    def registered_components(self):
        """Sorted registered component ids."""
        return sorted(self._components)

    # ------------------------------------------------------------------
    # The DFM store: version derivation and configuration (§2.4)
    # ------------------------------------------------------------------

    @property
    def current_version(self):
        """The designated current version, or None."""
        return self._current_version

    def versions(self):
        """All version ids in the DFM store."""
        return sorted(self._dfm_store, key=lambda version: version.parts)

    def version_record(self, version):
        """The :class:`VersionRecord`, or raise :class:`UnknownVersion`."""
        record = self._dfm_store.get(version)
        if record is None:
            raise UnknownVersion(f"no version {version} in the DFM store")
        return record

    def is_instantiable(self, version):
        """True if ``version`` may create / evolve DCDOs."""
        return self.version_record(version).instantiable

    def new_version(self):
        """Create a fresh root version with an empty descriptor."""
        version = self._version_tree.new_root()
        self._dfm_store[version] = VersionRecord(version=version, descriptor=DFMDescriptor())
        self._journal_append("version-created", version=version, parent=None)
        return version

    def derive_version(self, parent):
        """§2.4: create a configurable version by logically copying
        ``parent``; returns the new version id."""
        parent_record = self.version_record(parent)
        version = self._version_tree.derive(parent)
        self._dfm_store[version] = VersionRecord(
            version=version,
            descriptor=parent_record.descriptor.clone(),
            parent=parent,
        )
        self._journal_append("version-created", version=version, parent=parent)
        return version

    def descriptor_of(self, version, allow_instantiable=False):
        """The version's descriptor, for configuration.

        Configurable versions are freely editable; instantiable ones
        "cannot be changed any further" and are only readable
        (``allow_instantiable=True``).
        """
        record = self.version_record(version)
        if record.instantiable and not allow_instantiable:
            raise VersionNotConfigurable(
                f"version {version} is instantiable and cannot be changed"
            )
        return record.descriptor

    def incorporate_into(self, version, component_id):
        """Incorporate a registered component into a configurable version."""
        component, ico_loid = self._components_entry(component_id)
        self.descriptor_of(version).incorporate(component, ico_loid)

    def _components_entry(self, component_id):
        entry = self._components.get(component_id)
        if entry is None:
            raise UnknownVersion(
                f"component {component_id!r} is not registered with this manager"
            )
        return entry

    def mark_instantiable(self, version):
        """Freeze a configurable version after validating it (§2.4/§3.2)."""
        record = self.version_record(version)
        if record.instantiable:
            return
        record.descriptor.validate_instantiable()
        record.instantiable = True
        # The frozen descriptor is the durable artefact: a journal
        # replay restores instantiable versions byte-for-byte, while
        # still-configurable descriptors are in-memory scratch state
        # and are lost with the crash.
        self._journal_append(
            "version-instantiable",
            version=version,
            parent=record.parent,
            descriptor=record.descriptor.clone(),
        )
        self._runtime.trace(
            "version-instantiable",
            self.loid,
            version=str(version),
            components=len(record.descriptor.component_ids),
        )

    def set_current_version(self, version):
        """Designate the official current version.

        The version must be instantiable.  The update policy decides
        whether existing instances are updated now (proactive), later
        (lazy), or on request (explicit); any policy-returned process
        is run to completion so "setting a new current version" costs
        what the policy costs.
        """
        record = self.version_record(version)
        if not record.instantiable:
            raise VersionNotInstantiable(
                f"version {version} must be instantiable before becoming current"
            )
        self._current_version = version
        self._journal_append("current-version", version=version)
        self._runtime.trace(
            "current-version-set",
            self.loid,
            version=str(version),
            policy=self.update_policy.name,
        )
        propagation = self.update_policy.on_new_current_version(self)
        if propagation is not None:
            self._runtime.sim.run_process(propagation)
        return version

    def set_current_version_async(self, version):
        """Like :meth:`set_current_version` but returns the propagation
        process (or None) instead of running it — for callers already
        inside a simulation process."""
        record = self.version_record(version)
        if not record.instantiable:
            raise VersionNotInstantiable(
                f"version {version} must be instantiable before becoming current"
            )
        self._current_version = version
        self._journal_append("current-version", version=version)
        propagation = self.update_policy.on_new_current_version(self)
        if propagation is None:
            return None
        return self._runtime.sim.spawn(propagation, name=f"propagate:{version}")

    # ------------------------------------------------------------------
    # The DCDO table (§2.4)
    # ------------------------------------------------------------------

    def instance_version(self, loid):
        """The version a managed instance currently reflects."""
        self.record(loid)  # raises UnknownObject for strangers
        return self._instance_versions.get(loid)

    def instance_impl_type(self, loid):
        """The implementation type of an instance's current build."""
        self.record(loid)
        return self._instance_impl_types.get(loid)

    def dcdo_table(self):
        """(loid, version, impl_type, active) rows, creation order."""
        return [
            (
                record.loid,
                self._instance_versions.get(record.loid),
                self._instance_impl_types.get(record.loid),
                record.active,
            )
            for record in (self.record(loid) for loid in self.instance_loids())
        ]

    # ------------------------------------------------------------------
    # Instance creation (overrides the monolithic build)
    # ------------------------------------------------------------------

    def _build_instance(self, loid, host):
        """Create a DCDO and configure it from a version descriptor.

        New instances reflect the designated current version ("All new
        DCDOs are created to reflect the characteristics of the
        designated current version", §3.4); re-activations after
        migration or deactivation rebuild the instance's *own* version.
        """
        version = self._instance_versions.get(loid, self._current_version)
        if version is None:
            raise VersionNotInstantiable(
                f"type {self.type_name!r} has no current version to instantiate"
            )
        record = self.version_record(version)
        if not record.instantiable:
            raise VersionNotInstantiable(
                f"version {version} is not instantiable"
            )
        descriptor = record.descriptor
        obj = DCDO(
            self._runtime,
            loid,
            host,
            manager_loid=self.loid,
            remove_policy=self._remove_policy,
        )
        self._runtime.attach_object(obj)
        yield from obj.activate()
        try:
            for component_id in sorted(descriptor.component_ids):
                __, ico_loid = self._components_entry(component_id)
                yield from obj.incorporate_component(ico_loid, bootstrap=True)
            obj.dfm.apply_entry_states(descriptor)
            obj.dfm.adopt_restrictions(descriptor)
            obj.set_version(version)
        except Exception:
            # A failed component fetch must not leave a half-configured
            # but reachable DCDO behind: journal replays and recovery
            # passes would mistake it for a live instance and never
            # retry the rebuild.
            obj.deactivate()
            raise
        return obj, str(version)

    def _instance_created(self, record):
        self._instance_versions[record.loid] = self._current_version
        self._instance_impl_types[record.loid] = record.obj.implementation_type
        self._journal_append(
            "instance", loid=record.loid, host_name=record.host.name
        )
        self._journal_append(
            "instance-version", loid=record.loid, version=self._current_version
        )
        self.update_policy.on_instance_created(self, record)

    def _notify_migrated(self, record):
        self._instance_impl_types[record.loid] = record.obj.implementation_type
        followup = self.update_policy.on_instance_migrated(self, record)
        if followup is not None:
            self._runtime.sim.spawn(followup, name=f"post-migrate:{record.loid}")

    # ------------------------------------------------------------------
    # Evolution (§2.4, §3.3)
    # ------------------------------------------------------------------

    def evolve_instance(self, loid, target_version=None, enforce_policy=True):
        """Generator: evolve one instance to ``target_version``.

        Defaults to the policy's target for this instance (usually the
        current version).  Validates the transition with the evolution
        policy, ships the configuration diff to the DCDO in one
        management RPC, and updates the DCDO table.  Returns the
        version actually reached.

        ``enforce_policy=False`` is the wave-rollback path: a
        compensating evolution back to a *prior* version must not be
        vetoed by the evolution policy (single-version would reject any
        non-current target) nor by the §3.2 transition-rule check (the
        aborted version may have introduced markings the prior version
        legitimately lacks; the prior version was validated when it was
        marked instantiable).
        """
        lock = self.management_lock(loid)
        yield lock.acquire()
        try:
            record = self.record(loid)
            if not record.active:
                from repro.legion.errors import ObjectDeactivated

                raise ObjectDeactivated(
                    f"instance {loid} is deactivated; it will rebuild at its "
                    f"version on next activation"
                )
            from_version = self._instance_versions.get(loid)
            if target_version is None:
                target_version = self.evolution_policy.default_target(self, from_version)
                if target_version is None:
                    return from_version
            target_record = self.version_record(target_version)
            if not target_record.instantiable:
                raise VersionNotInstantiable(
                    f"cannot evolve to configurable version {target_version}"
                )
            if enforce_policy:
                self.evolution_policy.check_transition(self, from_version, target_version)
            if from_version == target_version:
                # Even a no-op delivery must assert this manager's term
                # on the instance.  After a failover the promoted
                # manager's resume can find the instance already at the
                # target (the deposed primary's delivery landed before
                # the promotion) — without an RPC the instance would
                # keep honouring the old term, letting the zombie's
                # later compensations through unfenced.
                if self.invoker.term_source is not None:
                    yield from self.invoker.invoke(loid, "getVersion", ())
                return from_version
            current_descriptor = (
                self.version_record(from_version).descriptor
                if from_version is not None
                else DFMDescriptor()
            )
            diff = diff_descriptors(current_descriptor, target_record.descriptor)
            diff.target_version = target_version
            diff.enforce_restrictions = enforce_policy
            # Generous per-attempt timeouts (downloads can take tens of
            # seconds) with retries; applyConfiguration is idempotent.
            yield from self.invoker.invoke(
                loid,
                "applyConfiguration",
                (diff,),
                timeout_schedule=(60.0, 120.0, 600.0),
            )
            self._instance_versions[loid] = target_version
            self._journal_append("instance-version", loid=loid, version=target_version)
            if record.active:
                record.version_tag = str(target_version)
            self.evolutions_performed += 1
        finally:
            lock.release()
        return target_version

    def try_evolve_instance(self, loid, target_version=None):
        """Generator: evolve, treating policy vetoes as "stay put"."""
        try:
            result = yield from self.evolve_instance(loid, target_version)
        except EvolutionDisallowed:
            result = self._instance_versions.get(loid)
        return result

    def update_all_instances(self, target_version=None, window=None):
        """Generator: evolve every active instance, windowed.

        At most ``window`` (default: the manager's ``fanout_window``)
        evolutions are in flight at once; each freed slot immediately
        starts the next instance.  ``window=1`` reproduces the old
        sequential loop.  Returns ``{loid: version reached}`` in
        instance-creation order; the first delivery error (if any) is
        re-raised after the wave, matching the sequential semantics.
        """
        window = window or self.fanout_window
        loids = [
            loid for loid in self.instance_loids() if self.record(loid).active
        ]
        thunks = [
            lambda l=loid: self.try_evolve_instance(l, target_version)
            for loid in loids
        ]
        outcomes = yield from run_windowed(self._runtime.sim, thunks, window)
        results = {}
        first_error = None
        for loid, (ok, value) in zip(loids, outcomes):
            if ok:
                results[loid] = value
            elif first_error is None:
                first_error = value
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------
    # Ack-tracked, at-least-once propagation
    # ------------------------------------------------------------------

    def propagate_version(
        self, version, loids=None, retry_policy=None, window=None, wave_policy=None
    ):
        """Generator: reliably push ``version`` to its instances.

        The fault-tolerant counterpart of :meth:`update_all_instances`:
        each instance gets a tracked delivery (PENDING → ACKED/FAILED),
        deliveries run concurrently with a bounded in-flight window
        (default: the manager's ``fanout_window``), failures are
        retried with backoff per the retry policy, and every state
        change is journaled — so a manager crash mid-propagation
        resumes from exactly the outstanding deliveries.  At-least-once
        delivery is safe because :meth:`DCDO.apply_configuration` is
        idempotent keyed by the target version id.

        ``wave_policy`` (default: the manager's) decides what failures
        mean.  Under ``WavePolicy.converge()`` failed deliveries simply
        wait: calling again for the same version re-arms them and
        admits instances created since — the convergence loop after
        faults heal.  Under ``WavePolicy.abort_after(k)`` more than
        ``k`` failures abort the wave: committed instances are rolled
        back to their prior versions, the wave is journaled ABORTED,
        and :class:`WaveAborted` is raised.  Returns the
        :class:`PropagationTracker` otherwise.
        """
        record = self.version_record(version)
        if not record.instantiable:
            raise VersionNotInstantiable(
                f"cannot propagate configurable version {version}"
            )
        if loids is None:
            loids = self.instance_loids()
        tracker = self._propagations.get(version)
        if tracker is None:
            wave = wave_policy or self.wave_policy
            prior_versions = {
                loid: self._instance_versions.get(loid) for loid in loids
            }
            tracker = PropagationTracker(
                version, loids, prior_versions=prior_versions, wave_policy=wave
            )
            tracker.started_at = self._runtime.sim.now
            self._propagations[version] = tracker
            self._journal_append(
                "propagation-started",
                version=version,
                loids=list(loids),
                prior_versions=prior_versions,
                wave_policy=wave,
            )
        elif tracker.aborting and not tracker.aborted:
            # A crash interrupted the abort: finish the rollback; do
            # not deliver anything new.
            yield from self._finish_abort(tracker)
            return tracker
        else:
            tracker.rearm(loids)
            for loid in loids:
                tracker.prior_versions.setdefault(
                    loid, self._instance_versions.get(loid)
                )
        policy = retry_policy or self.propagation_retry_policy
        window = window or self.fanout_window
        if self._relay_directory:
            # Host-batched phase first: one RPC per host (or one bundle
            # through a diffusion tree) covers every colocated pending
            # instance.  Anything a relay could not positively confirm
            # stays PENDING and falls through to direct delivery below.
            yield from self._relay_deliveries(tracker, policy, window)
            if not self.is_active:
                return tracker
        pending = tracker.pending_loids()
        thunks = [
            lambda l=loid: self._deliver(tracker, l, policy) for loid in pending
        ]
        outcomes = yield from run_windowed(self._runtime.sim, thunks, window)
        for ok, value in outcomes:
            if not ok:
                # _deliver absorbs expected failures into the tracker;
                # anything it *raised* is a real bug — don't mask it.
                raise value
        if not self.is_active:
            # We crashed while deliveries were in flight; the journal
            # still shows the propagation open, so recovery resumes it.
            return tracker
        # An explicit per-call policy wins (e.g. a convergence loop
        # re-driving a previously abortive wave); otherwise the policy
        # the wave started under keeps governing it across resumes.
        wave = wave_policy or tracker.wave_policy or self.wave_policy
        failed = tracker.count(DeliveryStatus.FAILED)
        if wave.should_abort(failed):
            yield from self._finish_abort(tracker)
            if not tracker.aborted:
                # Crash (or unreachable instances) left the abort
                # incomplete; recovery/resume finishes it.
                return tracker
            raise WaveAborted(version, failed, wave.abort_threshold)
        tracker.complete = True
        tracker.completed_at = self._runtime.sim.now
        self._journal_append("propagation-complete", version=version)
        self._runtime.trace("propagation-complete", self.loid, **tracker.summary())
        self._runtime.network.publish(
            "wave.complete",
            self.type_name,
            version=str(version),
            shard_id=self.shard_id,
            instances=len(tracker.deliveries()),
            duration_s=(
                tracker.completed_at - tracker.started_at
                if tracker.started_at is not None
                else None
            ),
        )
        return tracker

    # ------------------------------------------------------------------
    # Host-relay fan-out (scale-out waves)
    # ------------------------------------------------------------------

    def use_relays(
        self,
        directory,
        fanout_k=0,
        batch_window=None,
        announce=False,
        roster_id=None,
    ):
        """Route propagation waves through per-host relays.

        ``directory`` maps host name -> relay LOID (see
        :func:`repro.cluster.relay.deploy_relays`).  With relays
        enabled, :meth:`propagate_version` first ships one
        ``evolveBatch`` RPC per host covering all colocated pending
        instances — O(hosts) manager-side RPCs instead of
        O(instances) — and commits the per-instance acks with exactly
        the tracker/journal bookkeeping of a direct delivery.
        Instances a relay could not positively confirm stay PENDING
        and are re-delivered directly, so relays are a transport
        optimization only; they never weaken delivery guarantees.

        ``fanout_k >= 2`` additionally arranges the per-host batches
        into a k-ary diffusion tree: the manager sends one bundle to a
        root relay, which forwards child subtrees concurrently while
        applying its own batch — O(log_k H) wave latency for H hosts.
        ``batch_window`` bounds each relay's local in-flight
        ``applyConfiguration`` calls.  Pass ``directory=None`` to go
        back to direct-only delivery.

        ``announce=True`` (requires ``fanout_k >= 2``) switches tree
        waves from job bundles to *announcements*: the tree carries
        only the configuration diffs and subtree routing — constant
        bytes per host, never per instance — each relay enumerates its
        own colocated instances, and acks come back as per-host
        ``(count, digest)`` summaries.  The manager commits a host only
        when the relay's applied-set digest matches the instances it
        expected; any mismatch falls back to job batches / direct
        delivery, so guarantees are unchanged.

        ``roster_id`` selects a named announce roster (a per-shard
        slice seeded via :func:`repro.cluster.relay.
        seed_announce_roster`); fleet announcements then carry the
        roster and a ``hash_range`` filter so each relay only evolves
        the shard's own colocated instances.
        """
        if fanout_k and fanout_k < 2:
            raise ValueError(f"fanout_k must be 0 or >= 2, got {fanout_k}")
        if announce and (not directory or fanout_k < 2):
            raise ValueError("announce waves need relays and fanout_k >= 2")
        self._relay_directory = dict(directory) if directory else None
        self._relay_fanout_k = fanout_k if directory else 0
        self._relay_batch_window = batch_window
        self._relay_announce = bool(announce) if directory else False
        self._relay_roster_id = roster_id

    def _tree_order_key(self):
        """Tree ordering for relay fan-out: healthiest hosts first.

        None (plain name order) until peer health is armed on the
        fabric.  With health armed, hosts sort by descending score with
        name as the deterministic tiebreak, so a degraded relay ends up
        at the leaves instead of the root of the diffusion tree.
        """
        health = self._runtime.network.health
        if health is None:
            return None
        return lambda name: (-health.score(name), name)

    def _relay_deliveries(self, tracker, policy, window):
        """Generator: the host-batched phase of a propagation wave.

        Groups the tracker's pending instances by host, builds one
        configuration diff per distinct from-version, and drives the
        per-host batches through :meth:`_drive_relay_wave`.  Instances
        without a usable relay (host down, deactivated, no relay
        deployed) are simply left PENDING for the direct path.  The
        batched instances' management locks are held for the whole
        phase — in global sorted order, so concurrent waves cannot
        deadlock — which keeps the version reads used for diffing
        consistent with the commits.
        """
        sim = self._runtime.sim
        directory = self._relay_directory
        version = tracker.version
        target_record = self.version_record(version)
        batchable = []
        for loid in tracker.pending_loids():
            try:
                record = self.record(loid)
            except UnknownObject as error:
                # Deleted instance: terminal, exactly as direct delivery.
                tracker.fail(loid, error)
                self._journal_append(
                    "propagation-failed", version=version, loid=loid
                )
                self._count("propagation.deliveries_failed")
                continue
            if not record.active or not record.host.is_up:
                continue
            if record.host.name not in directory:
                continue
            if self._runtime.network.health_quarantined(record.host.name):
                # Gray relay: leave its instances PENDING so the direct
                # fallback ladder delivers them without routing a whole
                # subtree through the limping host.
                self._count("relay.quarantine_skips")
                continue
            batchable.append((loid, record.host.name))
        if not batchable:
            return
        locks = [
            self.management_lock(loid)
            for loid, __ in sorted(batchable, key=lambda item: str(item[0]))
        ]
        for lock in locks:
            yield lock.acquire()
        try:
            host_jobs = {}
            diff_cache = {}
            for loid, host_name in batchable:
                from_version = self._instance_versions.get(loid)
                if from_version == version:
                    # Already there (re-armed wave): ack without an RPC,
                    # matching evolve_instance's early return.
                    tracker.ack(loid, sim.now)
                    self._journal_append(
                        "propagation-ack", version=version, loid=loid
                    )
                    self._count("propagation.acks")
                    continue
                try:
                    self.evolution_policy.check_transition(
                        self, from_version, version
                    )
                except EvolutionDisallowed:
                    # Leave it PENDING: the direct path surfaces the
                    # veto through the usual retry/FAILED machinery.
                    continue
                diff = diff_cache.get(from_version)
                if diff is None:
                    current_descriptor = (
                        self.version_record(from_version).descriptor
                        if from_version is not None
                        else DFMDescriptor()
                    )
                    diff = diff_descriptors(
                        current_descriptor, target_record.descriptor
                    )
                    diff.target_version = version
                    diff.enforce_restrictions = True
                    diff_cache[from_version] = diff
                host_jobs.setdefault(host_name, []).append((loid, diff))
            if host_jobs:
                yield from self._drive_relay_wave(
                    tracker, host_jobs, policy, window, diffs=diff_cache
                )
        finally:
            for lock in locks:
                lock.release()

    def _drive_relay_wave(self, tracker, host_jobs, policy, window, diffs=None):
        """Generator: push per-host job batches until acked or exhausted.

        Each round ships one ``evolveBatch`` per host with unconfirmed
        jobs (or, with ``fanout_k`` set, one ``relayTree`` bundle to
        the root relay) and commits the acks that come back.  Re-sent
        jobs are harmless: application is idempotent per instance.
        When the retry budget runs out the survivors are left PENDING
        — the direct path takes over with a fresh budget, so relays
        only ever mark FAILED for the terminal deleted-instance case.

        With announcement mode on (``use_relays(..., announce=True)``)
        the tree rounds ship announcements instead of per-instance
        jobs.  The first round tries the fleet form (roster index
        ranges down, one aggregated ``(hosts, count, digest)`` summary
        up — constant bytes at every hop); an exact aggregate match
        commits the whole wave at once.  Any shortfall drops to the
        per-host form for the rest of the wave: subtree routing tables
        down, per-host ``(count, digest)`` summaries up, whole hosts
        committing iff their digest matches — which localizes failures
        the aggregate can only detect.
        """
        from repro.cluster.relay import (
            BATCH_JOB_BYTES,
            RELAY_APPLY_TIMEOUTS,
            build_relay_tree,
            count_jobs,
        )

        sim = self._runtime.sim
        directory = self._relay_directory
        version = tracker.version
        remaining = {host: list(jobs) for host, jobs in host_jobs.items()}
        host_of = {
            loid: host for host, jobs in host_jobs.items() for loid, __ in jobs
        }
        started = sim.now
        attempts = 0
        fleet_mode = True
        while remaining:
            if not self.is_active:
                return
            attempts += 1
            for jobs in remaining.values():
                for loid, __ in jobs:
                    tracker.delivery(loid).attempts += 1
            acks = []
            if (
                self._relay_announce
                and diffs
                and self._relay_fanout_k >= 2
                and len(remaining) > 1
                and self._announce_covers_fleet(tracker)
            ):
                handled = False
                if fleet_mode:
                    status = yield from self._announce_fleet_round(
                        tracker, remaining, diffs
                    )
                    if status == "stop":
                        return
                    handled = status == "committed"
                    if not handled:
                        # Aggregate shortfall (dead subtree, roster
                        # drift): finish the wave on per-host rounds,
                        # which localize the failure to specific hosts.
                        fleet_mode = False
                if not handled and remaining:
                    done = yield from self._announce_round(
                        tracker, remaining, diffs
                    )
                    if done:
                        return
                acks = None  # host-level commits happened in the round
            elif self._relay_fanout_k >= 2 and len(remaining) > 1:
                bundle = build_relay_tree(
                    remaining,
                    directory,
                    self._relay_fanout_k,
                    window=self._relay_batch_window,
                    order_key=self._tree_order_key(),
                )
                # The relays re-stamp this on every downstream apply,
                # so the whole diffusion tree is fenced, not just the
                # manager->root hop.
                bundle["term"] = self.current_term()
                self._count("relay.tree_waves")
                try:
                    acks = yield from self.invoker.invoke(
                        bundle["relay"],
                        "relayTree",
                        (bundle,),
                        payload_bytes=BATCH_JOB_BYTES * count_jobs(bundle),
                        timeout_schedule=RELAY_APPLY_TIMEOUTS,
                    )
                except (LegionError, TransportError, RuntimeError) as error:
                    if isinstance(error, StaleManagerTerm):
                        self._fence(error)
                        return
                    if isinstance(error, RuntimeError) and self.is_active:
                        raise
                    if not self.is_active:
                        return
                    self._count("relay.batch_failures")
            else:
                hosts = sorted(remaining)
                thunks = [
                    lambda h=host, j=tuple(remaining[host]): self.invoker.invoke(
                        directory[h],
                        "evolveBatch",
                        (j, self._relay_batch_window, self.current_term()),
                        payload_bytes=BATCH_JOB_BYTES * len(j),
                        timeout_schedule=RELAY_APPLY_TIMEOUTS,
                    )
                    for host in hosts
                ]
                self._count("relay.batch_waves")
                outcomes = yield from run_windowed(sim, thunks, window)
                for host, (ok, value) in zip(hosts, outcomes):
                    if ok:
                        acks.extend(value)
                        continue
                    if isinstance(value, StaleManagerTerm):
                        self._fence(value)
                        return
                    if isinstance(value, (LegionError, TransportError)):
                        self._count("relay.batch_failures")
                        continue
                    if self.is_active:
                        raise value
                    return
            if not self.is_active:
                return
            for loid, ok, value in acks or ():
                host = host_of.get(loid)
                jobs = remaining.get(host)
                if jobs is None or all(l != loid for l, __ in jobs):
                    continue  # stale or duplicate ack
                if ok:
                    self._commit_relay_ack(tracker, loid, version)
                elif isinstance(value, StaleManagerTerm):
                    # The relay forwarded our term and a downstream
                    # instance outranked it: we are deposed.
                    self._fence(value)
                    return
                elif isinstance(value, UnknownObject):
                    tracker.fail(loid, value)
                    self._journal_append(
                        "propagation-failed", version=version, loid=loid
                    )
                    self._count("propagation.deliveries_failed")
                else:
                    tracker.delivery(loid).last_error = value
                    continue
                remaining[host] = [job for job in jobs if job[0] != loid]
            remaining = {host: jobs for host, jobs in remaining.items() if jobs}
            if not remaining:
                return
            if not policy.should_retry(attempts, started, sim.now):
                self._count(
                    "relay.fallback_instances",
                    sum(len(jobs) for jobs in remaining.values()),
                )
                return
            self._count("propagation.retries")
            yield sim.timeout(policy.backoff_s(attempts))

    def _announce_covers_fleet(self, tracker):
        """True when this wave may use announcement rounds.

        An announcement tells a relay to bring *every* colocated
        instance of the type to the target version, so it is only safe
        when the wave targets the full fleet: a subset wave (e.g. a
        canary stage admitting a fraction of instances) must ship
        explicit job batches, or the announcement would evolve
        instances the wave never admitted.
        """
        version = tracker.version
        targeted = {delivery.loid for delivery in tracker.deliveries()}
        for loid in self.instance_loids():
            if loid in targeted:
                continue
            record = self._instances.get(loid)
            if record is None or not record.active:
                continue
            if self._instance_versions.get(loid) == version:
                continue
            return False
        return True

    def _announce_fleet_round(self, tracker, remaining, diffs):
        """Generator: one roster-range fleet announcement round.

        Ships the diffs plus a constant-size roster index range to the
        roster head and expects one aggregated ``(hosts, count,
        digest)`` summary back — digests are additive, so every relay
        folds its subtree into constant reply bytes and root egress
        stays independent of fleet size.  On an exact aggregate match
        every remaining job commits at once.  Returns ``"committed"``,
        ``"stop"`` (fenced or deactivated), ``"skip"`` (roster does not
        cover the remaining hosts), or ``"mismatch"`` — the caller
        finishes the wave on per-host rounds for the latter two, which
        localize whatever the aggregate could only detect.
        """
        from repro.cluster.relay import (
            RELAY_APPLY_TIMEOUTS,
            announce_fleet_bytes,
            set_digest,
        )

        roster = tuple(sorted(self._relay_directory.items()))
        roster_hosts = {host for host, __ in roster}
        if not roster or not set(remaining) <= roster_hosts:
            return "skip"
        network = self._runtime.network
        if any(network.health_quarantined(host) for host in roster_hosts):
            # The fleet announcement routes through every roster host by
            # index; with a quarantined (gray) relay in the roster the
            # whole fan-out would wait on it.  Fall back to per-host
            # rounds, which span only healthy hosts.
            self._count("relay.quarantine_skips")
            return "skip"
        version = tracker.version
        # The relays count every colocated instance at the target —
        # both this round's jobs and instances already there (acked
        # earlier in the wave, or current before it started) on any
        # roster host — so both belong in the expected aggregate.
        expected = [loid for jobs in remaining.values() for loid, __ in jobs]
        for loid, current in self._instance_versions.items():
            if current != version:
                continue
            record = self._instances.get(loid)
            if record is None or not record.active:
                continue
            if record.host.name in roster_hosts:
                expected.append(loid)
        bundle = {
            "type_name": self.type_name,
            "target_version": version,
            "diffs": dict(diffs),
            "window": self._relay_batch_window,
            "term": self.current_term(),
            "lo": 0,
            "hi": len(roster),
            "fanout_k": self._relay_fanout_k,
            "roster": self._relay_roster_id,
            "hash_range": self._announce_hash_range(),
        }
        self._count("relay.announce_waves")
        try:
            ack = yield from self.invoker.invoke(
                roster[0][1],
                "announceFleet",
                (bundle,),
                payload_bytes=announce_fleet_bytes(bundle),
                timeout_schedule=RELAY_APPLY_TIMEOUTS,
            )
        except (LegionError, TransportError, RuntimeError) as error:
            if isinstance(error, StaleManagerTerm):
                self._fence(error)
                return "stop"
            if isinstance(error, RuntimeError) and self.is_active:
                raise
            if not self.is_active:
                return "stop"
            self._count("relay.batch_failures")
            return "mismatch"
        if not self.is_active:
            return "stop"
        for loid, value in ack["failures"]:
            if isinstance(value, StaleManagerTerm):
                # A downstream instance outranked our term: deposed.
                self._fence(value)
                return "stop"
            record = self._instances.get(loid)
            host = record.host.name if record is not None else None
            jobs = remaining.get(host)
            if jobs is None or all(l != loid for l, __ in jobs):
                continue
            if isinstance(value, UnknownObject):
                tracker.fail(loid, value)
                self._journal_append(
                    "propagation-failed", version=version, loid=loid
                )
                self._count("propagation.deliveries_failed")
                remaining[host] = [job for job in jobs if job[0] != loid]
                if not remaining[host]:
                    del remaining[host]
            else:
                tracker.delivery(loid).last_error = value
        if (
            ack["hosts"] == len(roster)
            and ack["count"] == len(expected)
            and ack["digest"] == set_digest(expected)
        ):
            for host, jobs in list(remaining.items()):
                for loid, __ in jobs:
                    self._commit_relay_ack(tracker, loid, version)
                del remaining[host]
            return "committed"
        return "mismatch"

    def _announce_round(self, tracker, remaining, diffs):
        """Generator: one announcement-tree round over ``remaining``.

        Ships the configuration diffs (not per-instance jobs) down the
        relay tree and commits whole hosts whose applied-set digest
        matches the instances this manager expects to be at the target
        version there — the batched jobs plus instances this wave
        already acked.  Mutates ``remaining`` in place; returns True
        when the wave must stop (fenced or deactivated).
        """
        from repro.cluster.relay import (
            RELAY_APPLY_TIMEOUTS,
            announce_bundle_bytes,
            build_announce_tree,
            set_digest,
        )

        version = tracker.version
        node = build_announce_tree(
            remaining,
            self._relay_directory,
            self._relay_fanout_k,
            order_key=self._tree_order_key(),
        )
        bundle = {
            "type_name": self.type_name,
            "target_version": version,
            "diffs": dict(diffs),
            "window": self._relay_batch_window,
            "term": self.current_term(),
            "node": node,
            "hash_range": self._announce_hash_range(),
        }
        self._count("relay.announce_waves")
        try:
            acks = yield from self.invoker.invoke(
                node["relay"],
                "announceTree",
                (bundle,),
                payload_bytes=announce_bundle_bytes(bundle),
                timeout_schedule=RELAY_APPLY_TIMEOUTS,
            )
        except (LegionError, TransportError, RuntimeError) as error:
            if isinstance(error, StaleManagerTerm):
                self._fence(error)
                return True
            if isinstance(error, RuntimeError) and self.is_active:
                raise
            if not self.is_active:
                return True
            self._count("relay.batch_failures")
            return False
        if not self.is_active:
            return True
        # Every active instance already recorded at the target — acked
        # earlier in this wave or current before it started — also
        # shows up in a relay's applied set (counted without an RPC),
        # so they belong in the expected digest.
        acked_by_host = {}
        for loid, current in self._instance_versions.items():
            if current != version:
                continue
            record = self._instances.get(loid)
            if record is None or not record.active:
                continue
            host = record.host.name
            if host in remaining:
                acked_by_host.setdefault(host, []).append(loid)
        for host, count, digest, failures in acks:
            jobs = remaining.get(host)
            if jobs is None:
                continue
            for loid, value in failures:
                if isinstance(value, StaleManagerTerm):
                    # A downstream instance outranked our term: deposed.
                    self._fence(value)
                    return True
                if all(l != loid for l, __ in jobs):
                    continue
                if isinstance(value, UnknownObject):
                    tracker.fail(loid, value)
                    self._journal_append(
                        "propagation-failed", version=version, loid=loid
                    )
                    self._count("propagation.deliveries_failed")
                    jobs = remaining[host] = [
                        job for job in jobs if job[0] != loid
                    ]
                else:
                    tracker.delivery(loid).last_error = value
            if not jobs:
                del remaining[host]
                continue
            acked = acked_by_host.get(host, ())
            if (
                digest is not None
                and count == len(jobs) + len(acked)
                and digest
                == set_digest([loid for loid, __ in jobs] + list(acked))
            ):
                for loid, __ in jobs:
                    self._commit_relay_ack(tracker, loid, version)
                del remaining[host]
        return False

    def _commit_relay_ack(self, tracker, loid, version):
        """Commit one relay-confirmed evolution.

        Mirrors the bookkeeping (and journal-entry order) of the
        direct path: instance-version first, then the propagation ack.
        """
        self._instance_versions[loid] = version
        self._journal_append("instance-version", loid=loid, version=version)
        record = self._instances.get(loid)
        if record is not None and record.active:
            record.version_tag = str(version)
        self.evolutions_performed += 1
        tracker.ack(loid, self._runtime.sim.now)
        self._journal_append("propagation-ack", version=version, loid=loid)
        self._count("propagation.acks")

    def _finish_abort(self, tracker):
        """Generator: drive an aborting wave to the ABORTED state.

        Journals the abort decision first (so recovery knows the wave
        must never resume delivering), then rolls every ACKED instance
        back to its prior version with policy enforcement off.  Each
        rollback is journaled; the wave stays ABORTING — and is resumed
        by :meth:`resume_propagations` — until every committed instance
        has been undone, at which point it is journaled ABORTED.
        """
        sim = self._runtime.sim
        if not tracker.aborting:
            tracker.aborting = True
            self._journal_append("wave-aborting", version=tracker.version)
            self._count("wave.aborts")
            self._runtime.trace(
                "wave-aborting",
                self.loid,
                version=str(tracker.version),
                failed=tracker.count(DeliveryStatus.FAILED),
            )
        for delivery in tracker.deliveries():
            if delivery.status is not DeliveryStatus.ACKED:
                continue
            if not self.is_active:
                return
            prior = tracker.prior_versions.get(delivery.loid)
            if prior is not None:
                try:
                    yield from self.evolve_instance(
                        delivery.loid, prior, enforce_policy=False
                    )
                except (LegionError, TransportError) as error:
                    if isinstance(error, StaleManagerTerm):
                        self._fence(error)
                        return
                    delivery.last_error = error
                    if not self.is_active:
                        return
                    # Leave it ACKED: the wave stays ABORTING and a
                    # later resume retries this rollback.
                    continue
            tracker.roll_back(delivery.loid)
            self._journal_append(
                "wave-rollback", version=tracker.version, loid=delivery.loid
            )
            self._count("wave.rollbacks")
        if any(
            delivery.status is DeliveryStatus.ACKED
            for delivery in tracker.deliveries()
        ):
            return
        state = self._canaries.get(tracker.version)
        if state is not None:
            settled = yield from self._reconcile_canary_abort(state, tracker)
            if not settled or not self.is_active:
                return
        tracker.aborted = True
        tracker.complete = True
        tracker.completed_at = sim.now
        self._journal_append("wave-aborted", version=tracker.version)
        if state is not None:
            state.aborted = True
        self._runtime.trace("wave-aborted", self.loid, **tracker.summary())

    def _reconcile_canary_abort(self, state, tracker):
        """Generator: verify admitted instances really left the version.

        A promoted authority's replica journal can be missing the old
        primary's last entries (they ship asynchronously), so a
        delivery it restored as PENDING may in fact have landed on the
        instance.  Before declaring a breached canary aborted, ask each
        admitted instance for its *actual* version — the query also
        stamps this manager's term on the instance, fencing the old
        primary — and drive a compensating evolution for any instance
        still serving the aborted version.  Returns True once every
        reachable admitted instance is off it; False means stay
        ABORTING and let a later resume retry.
        """
        prior = self._current_version
        settled = True
        for loid in list(state.admitted):
            if not self.is_active:
                return False
            if tracker is not None:
                delivery = next(
                    (d for d in tracker.deliveries() if d.loid == loid), None
                )
                if (
                    delivery is not None
                    and delivery.status is DeliveryStatus.ROLLED_BACK
                ):
                    continue  # this manager rolled it back itself
            try:
                record = self.record(loid)
            except UnknownObject:
                continue
            if not record.active:
                continue  # crashed: rebuilds at its table version
            try:
                reported = yield from self.invoker.invoke(
                    loid, "getVersion", ()
                )
            except (LegionError, TransportError) as error:
                if isinstance(error, StaleManagerTerm):
                    self._fence(error)
                    return False
                settled = False
                continue
            if reported != str(state.version):
                continue
            # The old primary's delivery landed but its ack never
            # shipped: adopt the fact, then undo it.
            if self._instance_versions.get(loid) != state.version:
                self._instance_versions[loid] = state.version
                self._journal_append(
                    "instance-version", loid=loid, version=state.version
                )
            try:
                yield from self.evolve_instance(
                    loid, prior, enforce_policy=False
                )
            except (LegionError, TransportError) as error:
                if isinstance(error, StaleManagerTerm):
                    self._fence(error)
                    return False
                settled = False
                continue
            self._count("wave.rollbacks")
        return settled

    def _deliver(self, tracker, loid, policy):
        """Process body: drive one delivery to ack or exhaustion."""
        sim = self._runtime.sim
        started = sim.now
        delivery = tracker.delivery(loid)
        attempts = 0
        while True:
            if not self.is_active:
                # Manager crashed: abandon quietly, leaving the
                # delivery PENDING in the journal for recovery.
                return False
            if tracker.aborting or tracker.aborted:
                # The wave was breach-aborted while this delivery sat
                # out a backoff: delivering now would resurrect the
                # version the abort just rolled back.  Abandon; the
                # delivery stays PENDING under a wave the journal
                # already shows ABORTING/ABORTED.
                return False
            attempts += 1
            delivery.attempts += 1
            try:
                yield from self.evolve_instance(loid, tracker.version)
            except UnknownObject as error:
                # Deleted instance: it can never converge; no retry.
                tracker.fail(loid, error)
                self._journal_append(
                    "propagation-failed", version=tracker.version, loid=loid
                )
                self._count("propagation.deliveries_failed")
                return False
            except (LegionError, TransportError, RuntimeError) as error:
                if isinstance(error, StaleManagerTerm):
                    # We are the deposed primary: stand down, leave the
                    # delivery to the manager that outranks us.
                    self._fence(error)
                    return False
                if isinstance(error, RuntimeError) and self.is_active:
                    # A real bug, not the "our invoker vanished because
                    # we crashed mid-delivery" case — don't mask it.
                    raise
                delivery.last_error = error
                if not self.is_active:
                    return False
                if not policy.should_retry(attempts, started, sim.now):
                    tracker.fail(loid, error)
                    self._journal_append(
                        "propagation-failed", version=tracker.version, loid=loid
                    )
                    self._count("propagation.deliveries_failed")
                    return False
                self._count("propagation.retries")
                yield sim.timeout(policy.backoff_s(attempts))
                continue
            tracker.ack(loid, sim.now)
            self._journal_append(
                "propagation-ack", version=tracker.version, loid=loid
            )
            self._count("propagation.acks")
            if tracker.aborting or tracker.aborted:
                # The breach-abort raced this delivery's final RPC:
                # the instance just applied a version the wave has
                # renounced.  Undo it with the same rollback machinery
                # (journaled, resumable) instead of reporting success.
                yield from self._finish_abort(tracker)
                return False
            return True

    def propagation(self, version):
        """The :class:`PropagationTracker` for ``version``, or None."""
        return self._propagations.get(version)

    def propagation_status(self):
        """Summaries of every propagation, newest last."""
        return [tracker.summary() for tracker in self._propagations.values()]

    def resume_propagations(self, retry_policy=None):
        """Generator: finish propagations a crash interrupted.

        Only journaled-but-incomplete propagations run; acked
        deliveries are never repeated (the acceptance condition: no
        version re-derivation, no double application).  A wave the
        crash caught mid-abort is *not* re-delivered: resuming it
        completes the rollback instead, and the resulting
        :class:`WaveAborted` is absorbed here (the abort is the wave's
        journaled, final outcome — not an error of the recovery).

        A wave that belongs to an open canary rollout resumes with its
        journaled *admitted* set only — never the whole fleet: the
        default ``loids=None`` expansion would turn a 1%-canary the
        crash interrupted into a full-fleet rollout of an unvetted
        version.  A canary the journal shows breached has its abort
        driven here even if the crash landed between the breach
        decision and the wave-aborting entry.
        """
        for version in list(self._propagations):
            tracker = self._propagations[version]
            state = self._canaries.get(version)
            if state is not None and state.breached and not tracker.aborted:
                yield from self._finish_abort(tracker)
                continue
            if tracker.complete:
                continue
            loids = None
            if state is not None and not state.closed:
                loids = list(state.admitted)
            try:
                yield from self.propagate_version(
                    version, loids=loids, retry_policy=retry_policy
                )
            except WaveAborted:
                continue
        # Breached canaries whose wave tracker never reached this
        # journal (a promotion raced the shipping) still need closing.
        for version, state in list(self._canaries.items()):
            if state.closed or not state.breached:
                continue
            if version in self._propagations:
                continue
            yield from self.abort_wave(
                version, state.breach_reason or "slo-breach"
            )

    # ------------------------------------------------------------------
    # SLO-gated canary rollouts (durable gate decisions)
    # ------------------------------------------------------------------

    def begin_canary(self, version, stages, bake_s):
        """Open (or re-open after recovery) a canary rollout of ``version``.

        Idempotent: a state restored from the journal is returned as-is
        — with its admitted set, passed gates, and any breach intact —
        so a failed-over manager's gate runner picks up mid-rollout.
        Returns the :class:`CanaryState`.
        """
        record = self.version_record(version)
        if not record.instantiable:
            raise VersionNotInstantiable(
                f"cannot canary configurable version {version}"
            )
        state = self._canaries.get(version)
        if state is None:
            state = CanaryState(
                version=version, stages=tuple(stages), bake_s=bake_s
            )
            self._canaries[version] = state
            self._journal_append(
                "canary-started",
                version=version,
                stages=tuple(stages),
                bake_s=bake_s,
            )
            self._count("canary.waves")
            self._runtime.trace(
                "canary-started",
                self.loid,
                version=str(version),
                stages=list(stages),
            )
        return state

    def canary_state(self, version):
        """The :class:`CanaryState` for ``version``, or None."""
        return self._canaries.get(version)

    def canary_status(self):
        """Summaries of every canary rollout, oldest first."""
        return [state.summary() for state in self._canaries.values()]

    def canary_frozen_loids(self):
        """Instances admitted to any still-open canary rollout.

        Convergence sweeps (the supervisor's post-failover converge,
        chaos heal drives) must exclude these: dragging a canary-
        admitted instance back to the fleet's current version mid-bake
        would silently undo the experiment the gate is judging.
        """
        frozen = set()
        for state in self._canaries.values():
            if not state.closed:
                frozen.update(state.admitted)
        return frozen

    def admit_canary_stage(self, version, loids):
        """Admit ``loids`` to the canary wave (journaled); returns the
        newly admitted subset (already-admitted instances are skipped)."""
        state = self._require_canary(version)
        if state.closed:
            raise WaveAborted(version, 0, 0) if state.aborted else ValueError(
                f"canary for {version} already completed"
            )
        known = set(state.admitted)
        fresh = [loid for loid in loids if loid not in known]
        if fresh:
            state.admitted.extend(fresh)
            self._journal_append(
                "canary-stage",
                version=version,
                stage=state.stage_index,
                loids=list(fresh),
            )
            self._count("canary.admitted", len(fresh))
        return fresh

    def record_canary_gate(self, version):
        """Mark the current stage's health gate passed (journaled)."""
        state = self._require_canary(version)
        state.stage_index += 1
        self._journal_append(
            "canary-gate", version=version, stage=state.stage_index
        )
        self._count("canary.gates_passed")
        self._runtime.trace(
            "canary-gate",
            self.loid,
            version=str(version),
            stage=state.stage_index,
            admitted=len(state.admitted),
        )
        return state.stage_index

    def mark_canary_breached(self, version, reason):
        """Journal the breach decision; idempotent.

        The write-ahead entry lands *before* any rollback RPC, so a
        crash between the decision and the abort leaves a journal a
        promoted manager reads as "this wave must die", never as "this
        wave should resume delivering".
        """
        state = self._require_canary(version)
        if state.breached:
            return state
        state.breached = True
        state.breach_reason = reason
        self._journal_append("canary-breached", version=version, reason=reason)
        self._count("canary.breaches")
        self._runtime.trace(
            "canary-breached",
            self.loid,
            version=str(version),
            reason=reason,
            admitted=len(state.admitted),
        )
        return state

    def abort_wave(self, version, reason="slo-breach"):
        """Generator: breach-abort an open wave and roll everyone back.

        The public entry point the SLO gate (or an operator) uses when
        the wave itself is healthy at the delivery level but the
        *service* is not: journals the breach, then drives the existing
        transactional abort machinery — every ACKED instance evolves
        back to its prior version, write-ahead logged, resumable by a
        recovered or promoted manager.  Returns the tracker.
        """
        tracker = self._propagations.get(version)
        state = self._canaries.get(version)
        if state is not None:
            self.mark_canary_breached(version, reason)
        if tracker is None:
            # A promoted authority can inherit the canary record but
            # not its wave (the journal shipped the admission and then
            # the partition hit).  Reconcile straight from the admitted
            # set and close the canary with its own journal entry.
            if state is not None and not state.aborted:
                settled = yield from self._reconcile_canary_abort(state, None)
                if settled and self.is_active and not self.deposed:
                    state.aborted = True
                    self._journal_append("canary-aborted", version=version)
                    self._runtime.trace(
                        "canary-aborted", self.loid, version=str(version)
                    )
            return None
        if not tracker.aborted:
            yield from self._finish_abort(tracker)
        if state is not None and tracker.aborted and not state.aborted:
            state.aborted = True
        return tracker

    def complete_canary(self, version):
        """Adopt ``version`` after the final gate passed (journaled).

        The fleet already converged stage by stage, so the update
        policy is *not* fired again — the current-version designation
        simply catches up with reality (new instances start on it).
        """
        state = self._require_canary(version)
        if state.breached:
            raise WaveAborted(version, 0, 0)
        if not state.complete:
            state.complete = True
            self._journal_append("canary-complete", version=version)
            self._current_version = version
            self._journal_append("current-version", version=version)
            self._count("canary.completions")
            self._runtime.trace(
                "canary-complete",
                self.loid,
                version=str(version),
                admitted=len(state.admitted),
            )
        return state

    def _require_canary(self, version):
        state = self._canaries.get(version)
        if state is None:
            raise UnknownVersion(f"no canary rollout open for version {version}")
        return state

    # ------------------------------------------------------------------
    # Remediation lease and intents (self-healing controller)
    # ------------------------------------------------------------------

    def acquire_remediation_lease(self, owner, ttl_s=30.0):
        """Take (or renew) the plane-level remediation lease; journaled.

        Exactly one automated remediator may act on this manager at a
        time, and only while the lease it holds was minted under the
        manager's *current* term: a promotion bumps the term, so a
        zombie controller's lease dies with the primary it was talking
        to — the promoted supervisor and a stale controller can never
        fight over the same fleet.  Returns True when ``owner`` holds
        the lease on exit.
        """
        if self.deposed or not self.is_active:
            return False
        now = self._runtime.sim.now
        lease = self._remediation_lease
        if (
            lease is not None
            and lease["owner"] != owner
            and lease["expires_at"] > now
            and lease["term"] == self._term
        ):
            return False
        self._remediation_lease = {
            "owner": owner,
            "term": self._term,
            "expires_at": now + ttl_s,
        }
        self._journal_append(
            "remediation-lease",
            owner=owner,
            term=self._term,
            expires_at=now + ttl_s,
        )
        return True

    def holds_remediation_lease(self, owner):
        """True while ``owner``'s lease is live under the current term."""
        lease = self._remediation_lease
        return (
            not self.deposed
            and self.is_active
            and lease is not None
            and lease["owner"] == owner
            and lease["term"] == self._term
            and lease["expires_at"] > self._runtime.sim.now
        )

    def release_remediation_lease(self, owner):
        """Drop the lease if ``owner`` holds it (journaled as expiry)."""
        lease = self._remediation_lease
        if lease is not None and lease["owner"] == owner:
            self._remediation_lease = None
            self._journal_append(
                "remediation-lease", owner=owner, term=self._term, expires_at=0.0
            )

    def begin_remediation(self, intent_id, action, target, **params):
        """Write-ahead log one remediation intent; returns its record.

        The entry lands *before* the first action RPC, so a manager
        recovered mid-remediation knows exactly which automated actions
        were in flight — :meth:`gc_remediations` then closes the ones
        whose lease term the promotion outran.
        """
        if intent_id in self._remediations:
            return self._remediations[intent_id]
        record = {
            "intent_id": intent_id,
            "action": action,
            "target": target,
            "params": dict(params),
            "term": self._term,
            "opened_at": self._runtime.sim.now,
            "outcome": None,
        }
        self._remediations[intent_id] = record
        self._journal_append(
            "remediation-intent",
            intent_id=intent_id,
            action=action,
            target=target,
            params=dict(params),
            term=self._term,
        )
        self._count("remediation.intents")
        self._runtime.trace(
            "remediation-started", self.loid, intent=intent_id, action=action,
            target=str(target),
        )
        return record

    def complete_remediation(self, intent_id, outcome="done"):
        """Close an intent (journaled); unknown ids are ignored."""
        record = self._remediations.get(intent_id)
        if record is None or record["outcome"] is not None:
            return record
        record["outcome"] = outcome
        self._journal_append(
            "remediation-closed", intent_id=intent_id, outcome=outcome
        )
        self._count(f"remediation.{outcome}")
        self._runtime.trace(
            "remediation-closed", self.loid, intent=intent_id, outcome=outcome
        )
        return record

    def open_remediations(self):
        """Intent records not yet closed, oldest first."""
        return [
            record
            for record in self._remediations.values()
            if record["outcome"] is None
        ]

    def gc_remediations(self):
        """Close open intents minted under an older term; returns them.

        Called by a (re-)attaching controller after recovery or
        promotion: an intent whose lease term the current term outran
        belongs to a remediator that can no longer safely finish it —
        its partial work is repaired by the supervisor's converge pass,
        and the journal records the orphaning instead of leaving the
        intent open forever.
        """
        orphaned = []
        for record in self.open_remediations():
            if record["term"] < self._term:
                self.complete_remediation(record["intent_id"], outcome="orphaned")
                orphaned.append(record)
        return orphaned

    def remediation_status(self):
        """Plain-dict view of lease + intents, for reports."""
        lease = self._remediation_lease
        open_intents = self.open_remediations()
        return {
            "lease": dict(lease) if lease is not None else None,
            "open": [record["intent_id"] for record in open_intents],
            "total": len(self._remediations),
        }

    def restore_components(self):
        """Generator: re-serve any registered component whose ICO died.

        An ICO is a full active object (§2.3); when its host crashes,
        the component metadata survives in the manager (and its blob in
        any host cache that already fetched it), but the server object
        is gone — and unlike instances, nothing rebuilds it short of a
        full manager recovery.  This re-creates dead ICOs — on their
        original host when it is back up, else on the manager's — so
        prepare-phase fetches work again without the manager itself
        having crashed.  Returns the restored component ids.
        """
        restored = []
        for component_id in sorted(self._components):
            component, ico_loid = self._components[component_id]
            obj = self._runtime.live_object(ico_loid)
            if obj is not None and obj.is_active:
                continue
            host_name = obj.host.name if obj is not None else None
            yield from self._restore_component(component, ico_loid, host_name)
            self._count("ico.recoveries")
            self._runtime.trace(
                "ico-restored", ico_loid, component=component_id
            )
            restored.append(component_id)
        return restored

    # ------------------------------------------------------------------
    # Journal replay (crash recovery)
    # ------------------------------------------------------------------

    def restore_from_journal(self, journal):
        """Generator: rebuild durable state by replaying ``journal``.

        Called on a *fresh* manager object before activation (see
        :func:`~repro.core.recovery.recover_manager`).  Live instance
        objects and ICOs are re-linked from the runtime where they
        survived; ICOs whose host died are re-created here.
        """
        for entry in journal.replay():
            yield from self._restore_entry(entry)
        # Implementation types are derived state: recompute from the
        # instances that are still alive.
        for record in self._instances.values():
            if record.obj is not None:
                self._instance_impl_types[record.loid] = (
                    record.obj.implementation_type
                )

    def _restore_entry(self, entry):
        kind, data = entry.kind, entry.data
        if kind == "component":
            yield from self._restore_component(
                data["component"], data["ico_loid"], data.get("host_name")
            )
        elif kind == "version-created":
            self._version_tree.restore(data["version"])
            # No descriptor: a configurable version's edits died with
            # the manager's memory.  The id is reserved; the contents
            # must be re-derived by the operator.
        elif kind == "version-instantiable":
            version = data["version"]
            self._version_tree.restore(version)
            self._dfm_store[version] = VersionRecord(
                version=version,
                descriptor=data["descriptor"].clone(),
                instantiable=True,
                parent=data.get("parent"),
            )
        elif kind == "term":
            self._term = max(self._term, data["number"])
        elif kind == "current-version":
            self._current_version = data["version"]
        elif kind == "instance":
            self._restore_instance(data["loid"], data.get("host_name"))
        elif kind == "instance-version":
            self._instance_versions[data["loid"]] = data["version"]
        elif kind == "range-released":
            lo, hi = data["span"]
            for loid in list(self._instances):
                if lo <= partition_slot(loid) < hi:
                    del self._instances[loid]
                    self._instance_versions.pop(loid, None)
                    self._instance_impl_types.pop(loid, None)
            self._released_spans.append((lo, hi))
        elif kind == "rows-pruned":
            for loid in data["loids"]:
                self._instances.pop(loid, None)
                self._instance_versions.pop(loid, None)
                self._instance_impl_types.pop(loid, None)
        elif kind == "propagation-started":
            tracker = PropagationTracker(
                data["version"],
                data["loids"],
                prior_versions=data.get("prior_versions"),
                wave_policy=data.get("wave_policy"),
            )
            self._propagations[data["version"]] = tracker
        elif kind == "propagation-ack":
            self._propagations[data["version"]].ack(data["loid"])
        elif kind == "propagation-failed":
            self._propagations[data["version"]].fail(data["loid"])
        elif kind == "propagation-complete":
            self._propagations[data["version"]].complete = True
        elif kind == "wave-aborting":
            self._propagations[data["version"]].aborting = True
        elif kind == "wave-rollback":
            self._propagations[data["version"]].roll_back(data["loid"])
        elif kind == "wave-aborted":
            tracker = self._propagations[data["version"]]
            tracker.aborting = True
            tracker.aborted = True
            tracker.complete = True
            state = self._canaries.get(data["version"])
            if state is not None:
                state.aborted = True
        elif kind == "canary-started":
            version = data["version"]
            if version not in self._canaries:
                self._canaries[version] = CanaryState(
                    version=version,
                    stages=tuple(data["stages"]),
                    bake_s=data["bake_s"],
                )
        elif kind == "canary-stage":
            state = self._canaries[data["version"]]
            known = set(state.admitted)
            state.admitted.extend(
                loid for loid in data["loids"] if loid not in known
            )
        elif kind == "canary-gate":
            self._canaries[data["version"]].stage_index = data["stage"]
        elif kind == "canary-breached":
            state = self._canaries[data["version"]]
            state.breached = True
            state.breach_reason = data.get("reason")
        elif kind == "canary-complete":
            self._canaries[data["version"]].complete = True
        elif kind == "canary-aborted":
            self._canaries[data["version"]].aborted = True
        elif kind == "remediation-lease":
            if data["expires_at"] <= 0.0:
                self._remediation_lease = None
            else:
                self._remediation_lease = {
                    "owner": data["owner"],
                    "term": data["term"],
                    "expires_at": data["expires_at"],
                }
        elif kind == "remediation-intent":
            self._remediations.setdefault(
                data["intent_id"],
                {
                    "intent_id": data["intent_id"],
                    "action": data["action"],
                    "target": data["target"],
                    "params": dict(data.get("params") or {}),
                    "term": data["term"],
                    "opened_at": None,
                    "outcome": None,
                },
            )
        elif kind == "remediation-closed":
            record = self._remediations.get(data["intent_id"])
            if record is not None:
                record["outcome"] = data["outcome"]
        else:
            raise ValueError(f"unknown journal entry kind {kind!r}")
        return
        yield  # pragma: no cover - uniform generator shape

    def _restore_component(self, component, ico_loid, host_name):
        """Re-link (or re-create) the ICO serving ``component``."""
        self._components[component.component_id] = (component, ico_loid)
        obj = self._runtime.live_object(ico_loid)
        if obj is not None and obj.is_active:
            return
        # The ICO died with its host.  The component metadata (code on
        # disk) survives in the journal, so serve it again — from the
        # original host if it is back up, else from the manager's.
        host = None
        if host_name is not None and host_name in self._runtime.hosts:
            candidate = self._runtime.host(host_name)
            if candidate.is_up:
                host = candidate
        host = host or self._host
        ico = ImplementationComponentObject(
            self._runtime, ico_loid, host, component=component
        )
        yield from ico.activate()
        self._runtime.attach_object(ico)
        self._runtime.context_space.bind(
            f"/components/{self.type_name}/{component.component_id}", ico_loid
        )

    def _restore_instance(self, loid, host_name):
        """Rebuild the :class:`InstanceRecord` for a journaled instance."""
        obj = self._runtime.live_object(loid)
        host = (
            self._runtime.host(host_name)
            if host_name in self._runtime.hosts
            else self._host
        )
        if obj is not None:
            host = obj.host
        process = host.process_for(loid) if host.is_up else None
        active = obj is not None and obj.is_active and process is not None
        self._instances[loid] = InstanceRecord(
            loid=loid,
            obj=obj,
            host=host,
            process=process,
            active=active,
            version_tag=str(obj.version) if active and obj.version else None,
        )

    def write_checkpoint(self):
        """Compact the journal: snapshot state, truncate the tail.

        The checkpoint is expressed as an equivalent minimal entry
        list, so replay needs no second code path.
        """
        if self._journal is None:
            raise ValueError("no journal attached")
        from repro.core.recovery import JournalEntry

        entries = []
        # The term leads the checkpoint: replay must outrank any older
        # primary before acting on anything else.
        entries.append(JournalEntry("term", {"number": self._term}))
        for component_id in sorted(self._components):
            component, ico_loid = self._components[component_id]
            ico = self._runtime.live_object(ico_loid)
            entries.append(
                JournalEntry(
                    "component",
                    {
                        "component": component,
                        "ico_loid": ico_loid,
                        "host_name": ico.host.name if ico is not None else None,
                    },
                )
            )
        for version in sorted(
            self._version_tree.known_versions, key=lambda v: v.parts
        ):
            record = self._dfm_store.get(version)
            if record is not None and record.instantiable:
                entries.append(
                    JournalEntry(
                        "version-instantiable",
                        {
                            "version": version,
                            "parent": record.parent,
                            "descriptor": record.descriptor.clone(),
                        },
                    )
                )
            else:
                entries.append(
                    JournalEntry(
                        "version-created",
                        {"version": version, "parent": version.parent},
                    )
                )
        if self._current_version is not None:
            entries.append(
                JournalEntry("current-version", {"version": self._current_version})
            )
        for loid, record in self._instances.items():
            entries.append(
                JournalEntry(
                    "instance", {"loid": loid, "host_name": record.host.name}
                )
            )
            version = self._instance_versions.get(loid)
            if version is not None:
                entries.append(
                    JournalEntry(
                        "instance-version", {"loid": loid, "version": version}
                    )
                )
        # Canary states precede the trackers so a checkpointed
        # "wave-aborted" replay finds (and closes) the canary it ended.
        for version, state in self._canaries.items():
            entries.append(
                JournalEntry(
                    "canary-started",
                    {
                        "version": version,
                        "stages": tuple(state.stages),
                        "bake_s": state.bake_s,
                    },
                )
            )
            if state.admitted:
                entries.append(
                    JournalEntry(
                        "canary-stage",
                        {
                            "version": version,
                            "stage": state.stage_index,
                            "loids": list(state.admitted),
                        },
                    )
                )
            if state.stage_index:
                entries.append(
                    JournalEntry(
                        "canary-gate",
                        {"version": version, "stage": state.stage_index},
                    )
                )
            if state.breached:
                entries.append(
                    JournalEntry(
                        "canary-breached",
                        {"version": version, "reason": state.breach_reason},
                    )
                )
            if state.complete:
                entries.append(
                    JournalEntry("canary-complete", {"version": version})
                )
            if state.aborted and version not in self._propagations:
                # Closed without a wave (orphan reconcile): the closure
                # has no "wave-aborted" entry to replay.
                entries.append(
                    JournalEntry("canary-aborted", {"version": version})
                )
        for version, tracker in self._propagations.items():
            loids = [entry.loid for entry in tracker.deliveries()]
            entries.append(
                JournalEntry(
                    "propagation-started",
                    {
                        "version": version,
                        "loids": loids,
                        "prior_versions": dict(tracker.prior_versions),
                        "wave_policy": tracker.wave_policy,
                    },
                )
            )
            if tracker.aborting:
                entries.append(JournalEntry("wave-aborting", {"version": version}))
            for delivery in tracker.deliveries():
                if delivery.status is DeliveryStatus.ACKED:
                    entries.append(
                        JournalEntry(
                            "propagation-ack",
                            {"version": version, "loid": delivery.loid},
                        )
                    )
                elif delivery.status is DeliveryStatus.FAILED:
                    entries.append(
                        JournalEntry(
                            "propagation-failed",
                            {"version": version, "loid": delivery.loid},
                        )
                    )
                elif delivery.status is DeliveryStatus.ROLLED_BACK:
                    entries.append(
                        JournalEntry(
                            "wave-rollback",
                            {"version": version, "loid": delivery.loid},
                        )
                    )
            if tracker.aborted:
                entries.append(JournalEntry("wave-aborted", {"version": version}))
            elif tracker.complete:
                entries.append(
                    JournalEntry("propagation-complete", {"version": version})
                )
        if self._remediation_lease is not None:
            entries.append(
                JournalEntry("remediation-lease", dict(self._remediation_lease))
            )
        # Only open intents survive a checkpoint: a closed remediation
        # is pure history, and recovery's job is resume-or-GC.
        for record in self.open_remediations():
            entries.append(
                JournalEntry(
                    "remediation-intent",
                    {
                        "intent_id": record["intent_id"],
                        "action": record["action"],
                        "target": record["target"],
                        "params": dict(record["params"]),
                        "term": record["term"],
                    },
                )
            )
        self._journal.write_checkpoint(entries)
        self._publish_journal_gauges()
        return len(entries)

    # ------------------------------------------------------------------
    # Exported manager interface
    # ------------------------------------------------------------------

    def _register_manager_methods(self):
        self.register_method("getCurrentVersion", self._m_get_current_version)
        self.register_method("getVersions", self._m_get_versions)
        self.register_method("updateInstance", self._m_update_instance)
        self.register_method("syncInstance", self._m_sync_instance)
        self.register_method("getDCDOTable", self._m_get_dcdo_table)
        self.register_method("ping", self._m_ping)
        # Routed (sharded-plane) variants: first two args are the
        # caller's partition-map epoch and the target LOID; the guard
        # bounces with StalePartitionMap when this shard no longer owns
        # the LOID's slot.
        self.register_method("routedUpdateInstance", self._m_routed_update)
        self.register_method("routedSyncInstance", self._m_routed_sync)
        self.register_method("routedInstanceVersion", self._m_routed_version)

    def _m_ping(self, ctx):
        """Liveness probe for the failure detector; returns the term."""
        return ("pong", self._term)
        yield  # pragma: no cover - uniform generator shape

    def _m_get_current_version(self, ctx):
        return self._current_version
        yield  # pragma: no cover - uniform generator shape

    def _m_get_versions(self, ctx):
        return [(str(version), self.is_instantiable(version)) for version in self.versions()]
        yield  # pragma: no cover - uniform generator shape

    def _m_update_instance(self, ctx, loid, target_version=None):
        """§3.4 explicit update: external objects call this.

        Under the increasing-version multi-version variant, "the
        explicit update policy could be altered to allow any ready
        version number eventually derived from the DCDO's current
        version to be specified in the parameter to updateInstance()" —
        which is exactly passing ``target_version`` here.
        """
        version = yield from self.evolve_instance(loid, target_version)
        return version

    def _m_sync_instance(self, ctx, loid):
        """Lazy-update entry point: bring ``loid`` to the policy target."""
        version = yield from self.try_evolve_instance(loid)
        return version

    def _m_routed_update(self, ctx, epoch, loid, target_version=None):
        self._shard_guard(epoch, loid)
        version = yield from self.evolve_instance(loid, target_version)
        return version

    def _m_routed_sync(self, ctx, epoch, loid):
        self._shard_guard(epoch, loid)
        version = yield from self.try_evolve_instance(loid)
        return version

    def _m_routed_version(self, ctx, epoch, loid):
        self._shard_guard(epoch, loid)
        return self._instance_versions.get(loid)
        yield  # pragma: no cover - uniform generator shape

    def _m_get_dcdo_table(self, ctx):
        return [
            (str(loid), str(version) if version else None, str(impl_type), active)
            for loid, version, impl_type, active in self.dcdo_table()
        ]
        yield  # pragma: no cover - uniform generator shape


def define_dcdo_type(
    runtime,
    type_name,
    evolution_policy=None,
    update_policy=None,
    remove_policy=None,
    host_name=None,
    journal=None,
    propagation_retry_policy=None,
    fanout_window=8,
    wave_policy=None,
):
    """Define a DCDO type in ``runtime`` and return its manager.

    The counterpart of :meth:`LegionRuntime.define_class` for DCDOs;
    the returned manager still needs components registered and a first
    version built before instances can be created.
    """

    def factory(runtime_, type_name_, host_, implementations=(), instance_factory=None):
        return DCDOManager(
            runtime_,
            type_name_,
            host_,
            implementations=implementations,
            instance_factory=instance_factory,
            evolution_policy=evolution_policy,
            update_policy=update_policy,
            remove_policy=remove_policy,
            journal=journal,
            propagation_retry_policy=propagation_retry_policy,
            fanout_window=fanout_window,
            wave_policy=wave_policy,
        )

    return runtime.define_class(type_name, class_factory=factory, host_name=host_name)
