"""The DCDO Manager (§2.4).

"A DCDO Manager is in charge of maintaining implementation components
for a particular object type, and for evolving the DCDOs that it
manages."  It extends the Legion class object with:

- a **DFM store**: version id -> (DFM descriptor, instantiable flag);
  configurable versions are derived by logically copying existing
  ones, configured, and eventually marked instantiable — after which
  they "cannot be changed any further";
- a **DCDO table**: per-instance version identifier and implementation
  type, used "when deciding when and how to evolve its DCDOs";
- component registration (creating ICOs);
- the evolution entry points the update policies drive.
"""

from dataclasses import dataclass

from repro.core.dcdo import DCDO, RemovePolicy
from repro.core.descriptor import DFMDescriptor, diff_descriptors
from repro.core.errors import (
    EvolutionDisallowed,
    UnknownVersion,
    VersionNotConfigurable,
    VersionNotInstantiable,
)
from repro.core.ico import ImplementationComponentObject
from repro.core.policies.evolution import SingleVersionPolicy
from repro.core.policies.update import ExplicitUpdatePolicy
from repro.core.version import VersionTree
from repro.legion.klass import ClassObject
from repro.legion.loid import mint_loid


@dataclass
class VersionRecord:
    """One entry in the DFM store."""

    version: object
    descriptor: DFMDescriptor
    instantiable: bool = False
    parent: object = None


class DCDOManager(ClassObject):
    """Coordinates creation and evolution for one DCDO type.

    Parameters
    ----------
    runtime, type_name, host:
        As for :class:`~repro.legion.klass.ClassObject`.
    evolution_policy:
        Which version transitions are legal (default: single-version).
    update_policy:
        When instances are updated (default: explicit).
    remove_policy:
        Removal policy installed on created instances.
    """

    def __init__(
        self,
        runtime,
        type_name,
        host,
        implementations=(),
        instance_factory=None,
        evolution_policy=None,
        update_policy=None,
        remove_policy=None,
    ):
        super().__init__(
            runtime,
            type_name,
            host,
            implementations=implementations,
            instance_factory=instance_factory,
        )
        self.evolution_policy = evolution_policy or SingleVersionPolicy()
        self.update_policy = update_policy or ExplicitUpdatePolicy()
        self._remove_policy = remove_policy or RemovePolicy.error()
        self._version_tree = VersionTree()
        self._dfm_store = {}
        self._current_version = None
        self._components = {}
        self._instance_versions = {}
        self._instance_impl_types = {}
        self.evolutions_performed = 0
        self._register_manager_methods()

    # ------------------------------------------------------------------
    # Component registration (ICOs)
    # ------------------------------------------------------------------

    def register_component(self, component, host_name=None):
        """Create an ICO serving ``component``; returns its LOID.

        The ICO is a full active object, bound into the context space
        under ``/components/<type>/<component-id>`` so it benefits from
        the system's global namespace (§2.3).
        """
        if component.component_id in self._components:
            raise ValueError(f"component {component.component_id!r} already registered")
        host = self._pick_host(host_name)
        loid = mint_loid(self._runtime.domain, f"{self.type_name}.ICO")
        ico = ImplementationComponentObject(self._runtime, loid, host, component=component)
        self._runtime.sim.run_process(ico.activate())
        self._runtime.attach_object(ico)
        self._runtime.context_space.bind(
            f"/components/{self.type_name}/{component.component_id}", loid
        )
        self._components[component.component_id] = (component, loid)
        return loid

    def component_ico(self, component_id):
        """The ICO LOID serving ``component_id``."""
        try:
            return self._components[component_id][1]
        except KeyError:
            raise UnknownVersion(
                f"component {component_id!r} is not registered with this manager"
            ) from None

    def registered_components(self):
        """Sorted registered component ids."""
        return sorted(self._components)

    # ------------------------------------------------------------------
    # The DFM store: version derivation and configuration (§2.4)
    # ------------------------------------------------------------------

    @property
    def current_version(self):
        """The designated current version, or None."""
        return self._current_version

    def versions(self):
        """All version ids in the DFM store."""
        return sorted(self._dfm_store, key=lambda version: version.parts)

    def version_record(self, version):
        """The :class:`VersionRecord`, or raise :class:`UnknownVersion`."""
        record = self._dfm_store.get(version)
        if record is None:
            raise UnknownVersion(f"no version {version} in the DFM store")
        return record

    def is_instantiable(self, version):
        """True if ``version`` may create / evolve DCDOs."""
        return self.version_record(version).instantiable

    def new_version(self):
        """Create a fresh root version with an empty descriptor."""
        version = self._version_tree.new_root()
        self._dfm_store[version] = VersionRecord(version=version, descriptor=DFMDescriptor())
        return version

    def derive_version(self, parent):
        """§2.4: create a configurable version by logically copying
        ``parent``; returns the new version id."""
        parent_record = self.version_record(parent)
        version = self._version_tree.derive(parent)
        self._dfm_store[version] = VersionRecord(
            version=version,
            descriptor=parent_record.descriptor.clone(),
            parent=parent,
        )
        return version

    def descriptor_of(self, version, allow_instantiable=False):
        """The version's descriptor, for configuration.

        Configurable versions are freely editable; instantiable ones
        "cannot be changed any further" and are only readable
        (``allow_instantiable=True``).
        """
        record = self.version_record(version)
        if record.instantiable and not allow_instantiable:
            raise VersionNotConfigurable(
                f"version {version} is instantiable and cannot be changed"
            )
        return record.descriptor

    def incorporate_into(self, version, component_id):
        """Incorporate a registered component into a configurable version."""
        component, ico_loid = self._components_entry(component_id)
        self.descriptor_of(version).incorporate(component, ico_loid)

    def _components_entry(self, component_id):
        entry = self._components.get(component_id)
        if entry is None:
            raise UnknownVersion(
                f"component {component_id!r} is not registered with this manager"
            )
        return entry

    def mark_instantiable(self, version):
        """Freeze a configurable version after validating it (§2.4/§3.2)."""
        record = self.version_record(version)
        if record.instantiable:
            return
        record.descriptor.validate_instantiable()
        record.instantiable = True
        self._runtime.trace(
            "version-instantiable",
            self.loid,
            version=str(version),
            components=len(record.descriptor.component_ids),
        )

    def set_current_version(self, version):
        """Designate the official current version.

        The version must be instantiable.  The update policy decides
        whether existing instances are updated now (proactive), later
        (lazy), or on request (explicit); any policy-returned process
        is run to completion so "setting a new current version" costs
        what the policy costs.
        """
        record = self.version_record(version)
        if not record.instantiable:
            raise VersionNotInstantiable(
                f"version {version} must be instantiable before becoming current"
            )
        self._current_version = version
        self._runtime.trace(
            "current-version-set",
            self.loid,
            version=str(version),
            policy=self.update_policy.name,
        )
        propagation = self.update_policy.on_new_current_version(self)
        if propagation is not None:
            self._runtime.sim.run_process(propagation)
        return version

    def set_current_version_async(self, version):
        """Like :meth:`set_current_version` but returns the propagation
        process (or None) instead of running it — for callers already
        inside a simulation process."""
        record = self.version_record(version)
        if not record.instantiable:
            raise VersionNotInstantiable(
                f"version {version} must be instantiable before becoming current"
            )
        self._current_version = version
        propagation = self.update_policy.on_new_current_version(self)
        if propagation is None:
            return None
        return self._runtime.sim.spawn(propagation, name=f"propagate:{version}")

    # ------------------------------------------------------------------
    # The DCDO table (§2.4)
    # ------------------------------------------------------------------

    def instance_version(self, loid):
        """The version a managed instance currently reflects."""
        self.record(loid)  # raises UnknownObject for strangers
        return self._instance_versions.get(loid)

    def instance_impl_type(self, loid):
        """The implementation type of an instance's current build."""
        self.record(loid)
        return self._instance_impl_types.get(loid)

    def dcdo_table(self):
        """(loid, version, impl_type, active) rows, creation order."""
        return [
            (
                record.loid,
                self._instance_versions.get(record.loid),
                self._instance_impl_types.get(record.loid),
                record.active,
            )
            for record in (self.record(loid) for loid in self.instance_loids())
        ]

    # ------------------------------------------------------------------
    # Instance creation (overrides the monolithic build)
    # ------------------------------------------------------------------

    def _build_instance(self, loid, host):
        """Create a DCDO and configure it from a version descriptor.

        New instances reflect the designated current version ("All new
        DCDOs are created to reflect the characteristics of the
        designated current version", §3.4); re-activations after
        migration or deactivation rebuild the instance's *own* version.
        """
        version = self._instance_versions.get(loid, self._current_version)
        if version is None:
            raise VersionNotInstantiable(
                f"type {self.type_name!r} has no current version to instantiate"
            )
        record = self.version_record(version)
        if not record.instantiable:
            raise VersionNotInstantiable(
                f"version {version} is not instantiable"
            )
        descriptor = record.descriptor
        obj = DCDO(
            self._runtime,
            loid,
            host,
            manager_loid=self.loid,
            remove_policy=self._remove_policy,
        )
        self._runtime.attach_object(obj)
        yield from obj.activate()
        for component_id in sorted(descriptor.component_ids):
            __, ico_loid = self._components_entry(component_id)
            yield from obj.incorporate_component(ico_loid, bootstrap=True)
        obj.dfm.apply_entry_states(descriptor)
        obj.dfm.adopt_restrictions(descriptor)
        obj.set_version(version)
        return obj, str(version)

    def _instance_created(self, record):
        self._instance_versions[record.loid] = self._current_version
        self._instance_impl_types[record.loid] = record.obj.implementation_type
        self.update_policy.on_instance_created(self, record)

    def _notify_migrated(self, record):
        self._instance_impl_types[record.loid] = record.obj.implementation_type
        followup = self.update_policy.on_instance_migrated(self, record)
        if followup is not None:
            self._runtime.sim.spawn(followup, name=f"post-migrate:{record.loid}")

    # ------------------------------------------------------------------
    # Evolution (§2.4, §3.3)
    # ------------------------------------------------------------------

    def evolve_instance(self, loid, target_version=None):
        """Generator: evolve one instance to ``target_version``.

        Defaults to the policy's target for this instance (usually the
        current version).  Validates the transition with the evolution
        policy, ships the configuration diff to the DCDO in one
        management RPC, and updates the DCDO table.  Returns the
        version actually reached.
        """
        lock = self.management_lock(loid)
        yield lock.acquire()
        try:
            record = self.record(loid)
            if not record.active:
                from repro.legion.errors import ObjectDeactivated

                raise ObjectDeactivated(
                    f"instance {loid} is deactivated; it will rebuild at its "
                    f"version on next activation"
                )
            from_version = self._instance_versions.get(loid)
            if target_version is None:
                target_version = self.evolution_policy.default_target(self, from_version)
                if target_version is None:
                    return from_version
            target_record = self.version_record(target_version)
            if not target_record.instantiable:
                raise VersionNotInstantiable(
                    f"cannot evolve to configurable version {target_version}"
                )
            self.evolution_policy.check_transition(self, from_version, target_version)
            if from_version == target_version:
                return from_version
            current_descriptor = (
                self.version_record(from_version).descriptor
                if from_version is not None
                else DFMDescriptor()
            )
            diff = diff_descriptors(current_descriptor, target_record.descriptor)
            diff.target_version = target_version
            # Generous per-attempt timeouts (downloads can take tens of
            # seconds) with retries; applyConfiguration is idempotent.
            yield from self.invoker.invoke(
                loid,
                "applyConfiguration",
                (diff,),
                timeout_schedule=(60.0, 120.0, 600.0),
            )
            self._instance_versions[loid] = target_version
            if record.active:
                record.version_tag = str(target_version)
            self.evolutions_performed += 1
        finally:
            lock.release()
        return target_version

    def try_evolve_instance(self, loid, target_version=None):
        """Generator: evolve, treating policy vetoes as "stay put"."""
        try:
            result = yield from self.evolve_instance(loid, target_version)
        except EvolutionDisallowed:
            result = self._instance_versions.get(loid)
        return result

    def update_all_instances(self, target_version=None):
        """Generator: evolve every active instance (serially)."""
        results = {}
        for loid in self.instance_loids():
            if not self.record(loid).active:
                continue
            results[loid] = yield from self.try_evolve_instance(loid, target_version)
        return results

    # ------------------------------------------------------------------
    # Exported manager interface
    # ------------------------------------------------------------------

    def _register_manager_methods(self):
        self.register_method("getCurrentVersion", self._m_get_current_version)
        self.register_method("getVersions", self._m_get_versions)
        self.register_method("updateInstance", self._m_update_instance)
        self.register_method("syncInstance", self._m_sync_instance)
        self.register_method("getDCDOTable", self._m_get_dcdo_table)

    def _m_get_current_version(self, ctx):
        return self._current_version
        yield  # pragma: no cover - uniform generator shape

    def _m_get_versions(self, ctx):
        return [(str(version), self.is_instantiable(version)) for version in self.versions()]
        yield  # pragma: no cover - uniform generator shape

    def _m_update_instance(self, ctx, loid, target_version=None):
        """§3.4 explicit update: external objects call this.

        Under the increasing-version multi-version variant, "the
        explicit update policy could be altered to allow any ready
        version number eventually derived from the DCDO's current
        version to be specified in the parameter to updateInstance()" —
        which is exactly passing ``target_version`` here.
        """
        version = yield from self.evolve_instance(loid, target_version)
        return version

    def _m_sync_instance(self, ctx, loid):
        """Lazy-update entry point: bring ``loid`` to the policy target."""
        version = yield from self.try_evolve_instance(loid)
        return version

    def _m_get_dcdo_table(self, ctx):
        return [
            (str(loid), str(version) if version else None, str(impl_type), active)
            for loid, version, impl_type, active in self.dcdo_table()
        ]
        yield  # pragma: no cover - uniform generator shape


def define_dcdo_type(
    runtime,
    type_name,
    evolution_policy=None,
    update_policy=None,
    remove_policy=None,
    host_name=None,
):
    """Define a DCDO type in ``runtime`` and return its manager.

    The counterpart of :meth:`LegionRuntime.define_class` for DCDOs;
    the returned manager still needs components registered and a first
    version built before instances can be created.
    """

    def factory(runtime_, type_name_, host_, implementations=(), instance_factory=None):
        return DCDOManager(
            runtime_,
            type_name_,
            host_,
            implementations=implementations,
            instance_factory=instance_factory,
            evolution_policy=evolution_policy,
            update_policy=update_policy,
            remove_policy=remove_policy,
        )

    return runtime.define_class(type_name, class_factory=factory, host_name=host_name)
