"""Replicated partition map: the sharded manager plane's routing state.

The paper gives every DCDO type one manager.  PRs 1-8 made that
manager durable, highly available, and gray-failure tolerant — but it
is still *one* serialization point: every wave, journal append, and
recovery pass funnels through it.  This module supplies the routing
substrate for splitting the DCDO table across N manager shards:

- :func:`partition_slot` hashes a LOID into a fixed 16-bit slot space.
- :class:`PartitionMap` is an immutable, version-numbered (epoch'd)
  assignment of contiguous slot ranges to shard ids, with pure
  ``split`` / ``merge`` / ``move`` derivations.
- :class:`ReplicatedPartitionMap` is the om-legion "partition table as
  shared replicated state" pattern: a tiny shared-state object with
  **fast** and **consistent** apply modes.  Consistent applies land on
  every replica before the epoch is visible anywhere; fast applies
  return after the primary and let replicas converge asynchronously —
  cheap, but opens a bounded staleness window (which the chaos harness
  deliberately widens).
- :class:`PartitionRouter` is the client-side cache.  Routed calls
  carry the caller's epoch; a shard that no longer owns the slot
  bounces with :class:`StalePartitionMap`, piggybacking its own map
  snapshot exactly the way PR 2's interface leases piggyback epoch
  bumps — one extra round trip, never a config-service lookup storm.

Slot ranges are half-open ``[lo, hi)`` over ``HASH_SPACE`` and must
tile the space exactly: the map is the single ownership authority, so
"unowned slot" is a constructible-nowhere state.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.legion.errors import LegionError

#: Slot space for LOID hashing.  16 bits keeps slot arithmetic cheap
#: while leaving headroom for thousands of shards.
HASH_SPACE = 1 << 16

#: Simulated per-replica latency of landing a map update (seconds).
MAP_APPLY_S = 0.002

#: Fast-mode replicas converge after this asynchronous delay.
FAST_CONVERGE_S = 0.05


def partition_slot(loid):
    """Hash a LOID (or any stringable key) into ``[0, HASH_SPACE)``."""
    return zlib.crc32(str(loid).encode("utf-8")) & (HASH_SPACE - 1)


class StalePartitionMap(LegionError):
    """A routed RPC carried an epoch older than the shard's map.

    Mirrors :class:`~repro.legion.errors.StaleManagerTerm`: the error
    is the protocol.  ``snapshot`` piggybacks the rejecting shard's
    current :class:`PartitionMap` so the caller refreshes its cache
    from the bounce itself.
    """

    def __init__(self, epoch, latest_epoch, snapshot=None):
        super().__init__(
            f"partition map epoch {epoch} is stale (shard holds "
            f"{latest_epoch})"
        )
        self.epoch = epoch
        self.latest_epoch = latest_epoch
        self.snapshot = snapshot


class RangeMidHandoff(LegionError):
    """The slot's range is being moved between shards right now."""

    def __init__(self, slot):
        super().__init__(f"slot {slot} is mid-handoff")
        self.slot = slot


@dataclass(frozen=True)
class ShardRange:
    """Half-open slot span ``[lo, hi)`` owned by ``shard_id``."""

    lo: int
    hi: int
    shard_id: int

    def __post_init__(self):
        if not 0 <= self.lo < self.hi <= HASH_SPACE:
            raise ValueError(f"bad shard range [{self.lo}, {self.hi})")

    def __contains__(self, slot):
        return self.lo <= slot < self.hi

    @property
    def width(self):
        return self.hi - self.lo


class PartitionMap:
    """Immutable epoch'd assignment of the slot space to shards.

    Derivation methods (``split`` / ``merge`` / ``move``) return a new
    map at ``epoch + 1``; the constructor validates that ranges tile
    ``[0, HASH_SPACE)`` exactly, so ownership gaps and overlaps are
    unrepresentable.
    """

    __slots__ = ("ranges", "epoch")

    def __init__(self, ranges, epoch=1):
        ranges = tuple(sorted(ranges, key=lambda r: r.lo))
        cursor = 0
        for r in ranges:
            if r.lo != cursor:
                raise ValueError(
                    f"ranges must tile the slot space: gap/overlap at "
                    f"{r.lo} (expected {cursor})"
                )
            cursor = r.hi
        if cursor != HASH_SPACE:
            raise ValueError(
                f"ranges must cover the slot space: end at {cursor}"
            )
        self.ranges = ranges
        self.epoch = epoch

    @classmethod
    def even(cls, shard_count):
        """An epoch-1 map splitting the space evenly over ``shard_count``."""
        if shard_count < 1:
            raise ValueError("need at least one shard")
        bounds = [
            (index * HASH_SPACE) // shard_count
            for index in range(shard_count + 1)
        ]
        return cls(
            [
                ShardRange(bounds[index], bounds[index + 1], index)
                for index in range(shard_count)
            ]
        )

    # -- queries ---------------------------------------------------------

    @property
    def shard_ids(self):
        return tuple(sorted({r.shard_id for r in self.ranges}))

    def shard_for_slot(self, slot):
        """Owning shard id for a slot (binary search over ranges)."""
        lo, hi = 0, len(self.ranges)
        while lo < hi:
            mid = (lo + hi) // 2
            r = self.ranges[mid]
            if slot < r.lo:
                hi = mid
            elif slot >= r.hi:
                lo = mid + 1
            else:
                return r.shard_id
        raise ValueError(f"slot {slot} outside the slot space")

    def shard_for(self, loid):
        return self.shard_for_slot(partition_slot(loid))

    def spans_of(self, shard_id):
        """All ``(lo, hi)`` spans owned by a shard, sorted."""
        return tuple(
            (r.lo, r.hi) for r in self.ranges if r.shard_id == shard_id
        )

    def owns(self, shard_id, loid):
        return self.shard_for(loid) == shard_id

    # -- derivations -----------------------------------------------------

    def _derive(self, ranges):
        return PartitionMap(ranges, epoch=self.epoch + 1)

    def split(self, shard_id, new_shard_id):
        """Halve ``shard_id``'s widest range, giving the upper half to
        ``new_shard_id``."""
        if new_shard_id in self.shard_ids:
            raise ValueError(f"shard {new_shard_id} already owns ranges")
        owned = [r for r in self.ranges if r.shard_id == shard_id]
        if not owned:
            raise ValueError(f"shard {shard_id} owns nothing to split")
        victim = max(owned, key=lambda r: r.width)
        if victim.width < 2:
            raise ValueError(f"range {victim} too narrow to split")
        mid = victim.lo + victim.width // 2
        ranges = [r for r in self.ranges if r is not victim]
        ranges.append(ShardRange(victim.lo, mid, shard_id))
        ranges.append(ShardRange(mid, victim.hi, new_shard_id))
        return self._derive(ranges)

    def merge(self, source, target):
        """Reassign every range of ``source`` to ``target``."""
        if source == target:
            raise ValueError("merge source and target are the same shard")
        if source not in self.shard_ids:
            raise ValueError(f"shard {source} owns nothing to merge")
        ranges = [
            ShardRange(r.lo, r.hi, target if r.shard_id == source else r.shard_id)
            for r in self.ranges
        ]
        return self._derive(self._coalesce(ranges))

    def move(self, span, target):
        """Reassign the exact span ``(lo, hi)`` to ``target``.

        The span must align with existing range boundaries (ranges are
        split on demand by carving the covering range).
        """
        lo, hi = span
        if not 0 <= lo < hi <= HASH_SPACE:
            raise ValueError(f"bad span {span}")
        ranges = []
        for r in self.ranges:
            if r.hi <= lo or r.lo >= hi:
                ranges.append(r)
                continue
            if r.lo < lo:
                ranges.append(ShardRange(r.lo, lo, r.shard_id))
            carved_lo, carved_hi = max(r.lo, lo), min(r.hi, hi)
            ranges.append(ShardRange(carved_lo, carved_hi, target))
            if r.hi > hi:
                ranges.append(ShardRange(hi, r.hi, r.shard_id))
        return self._derive(self._coalesce(ranges))

    @staticmethod
    def _coalesce(ranges):
        ranges = sorted(ranges, key=lambda r: r.lo)
        out = []
        for r in ranges:
            if out and out[-1].shard_id == r.shard_id and out[-1].hi == r.lo:
                out[-1] = ShardRange(out[-1].lo, r.hi, r.shard_id)
            else:
                out.append(r)
        return out

    def __repr__(self):
        body = ", ".join(
            f"[{r.lo},{r.hi})→s{r.shard_id}" for r in self.ranges
        )
        return f"<PartitionMap e{self.epoch} {body}>"


class ReplicatedPartitionMap:
    """The partition map as small shared replicated state.

    One primary view plus a view per replica host.  ``apply`` installs
    a new map in one of two modes:

    - ``"consistent"`` — simulated per-replica landing latency, then
      every view and every subscribed listener sees the new epoch
      before ``apply`` returns.  Used for ownership handoff commits,
      where the epoch bump *is* the commit point.
    - ``"fast"`` — the primary (and listeners, which model
      shard-manager-local views) move immediately; replica views
      converge after an asynchronous delay.  Cheap for cosmetic
      rebalances; routers refreshing from a stale replica during the
      window simply eat one extra :class:`StalePartitionMap` bounce.

    The chaos harness widens fast-mode convergence via
    :meth:`add_staleness_window` to prove the bounce path converges
    rather than livelocks.
    """

    def __init__(self, runtime, name, initial_map, replica_hosts=()):
        self.runtime = runtime
        self.name = name
        self._primary = initial_map
        self._views = {host: initial_map for host in replica_hosts}
        self._listeners = []
        self._staleness_windows = []
        self.applies = 0
        self.fast_applies = 0

    # -- read side -------------------------------------------------------

    @property
    def current(self):
        """The primary (authoritative) map."""
        return self._primary

    @property
    def epoch(self):
        return self._primary.epoch

    def view(self, host_name=None):
        """The map as seen from ``host_name`` (primary if unknown)."""
        if host_name is None:
            return self._primary
        return self._views.get(host_name, self._primary)

    def subscribe(self, listener):
        """``listener(new_map)`` fires when a view becomes current."""
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener):
        self._listeners.remove(listener)

    # -- write side ------------------------------------------------------

    def apply(self, new_map, mode="consistent"):
        """Generator: install ``new_map`` (epoch must advance)."""
        if new_map.epoch <= self._primary.epoch:
            raise ValueError(
                f"map epoch must advance: {new_map.epoch} <= "
                f"{self._primary.epoch}"
            )
        sim = self.runtime.sim
        if mode == "consistent":
            for _host in self._views:
                yield sim.timeout(MAP_APPLY_S)
            self._primary = new_map
            for host in self._views:
                self._views[host] = new_map
            self._notify(new_map)
        elif mode == "fast":
            yield sim.timeout(MAP_APPLY_S)
            self._primary = new_map
            self._notify(new_map)
            self.fast_applies += 1
            extra = self._staleness_extra(sim.now)
            sim.spawn(
                self._converge_replicas(new_map, FAST_CONVERGE_S + extra),
                name=f"{self.name}.map-converge",
            )
        else:
            raise ValueError(f"unknown apply mode {mode!r}")
        self.applies += 1
        self.runtime.network.count("manager.shard.map_epoch_bumps")
        return new_map

    def _converge_replicas(self, new_map, delay_s):
        yield self.runtime.sim.timeout(delay_s)
        for host in self._views:
            if self._views[host].epoch < new_map.epoch:
                self._views[host] = new_map

    def _notify(self, new_map):
        for listener in list(self._listeners):
            listener(new_map)

    # -- chaos hooks -----------------------------------------------------

    def add_staleness_window(self, extra_s, start, end):
        """Fast applies landing in ``[start, end)`` converge replicas
        ``extra_s`` later — the chaos schedule's map-staleness fault."""
        self._staleness_windows.append((start, end, extra_s))

    def _staleness_extra(self, now):
        return sum(
            extra
            for start, end, extra in self._staleness_windows
            if start <= now < end
        )


class PartitionRouter:
    """Client-side cached partition map with bounce-driven refresh.

    Stubs and relays hold one of these instead of a manager reference.
    ``route`` is a pure cache lookup; ``call`` wraps a routed manager
    RPC with the stale-map retry loop: on :class:`StalePartitionMap`
    the router adopts the piggybacked snapshot (or refreshes from the
    replicated map) and retries against the new owner.
    """

    def __init__(self, replicated_map, shard_lookup, host_name=None):
        self._replicated = replicated_map
        self._shard_lookup = shard_lookup
        self._host_name = host_name
        self._cached = replicated_map.view(host_name)
        self.bounces = 0

    @property
    def cached_map(self):
        return self._cached

    @property
    def epoch(self):
        return self._cached.epoch

    def adopt(self, snapshot):
        """Adopt a piggybacked map snapshot if it is newer."""
        if snapshot is not None and snapshot.epoch > self._cached.epoch:
            self._cached = snapshot
            return True
        return False

    def refresh(self):
        """Re-read the (possibly stale) local replica view."""
        self.adopt(self._replicated.view(self._host_name))
        return self._cached

    def route(self, loid):
        """``(shard_id, shard_manager)`` for a LOID, from cache."""
        shard_id = self._cached.shard_for(loid)
        return shard_id, self._shard_lookup(shard_id)

    def call(self, client, loid, method, *args, max_bounces=8, **kwargs):
        """Generator: invoke ``method`` on the owning shard's manager,
        retrying through stale-map bounces.

        ``client`` is anything with the :class:`~repro.legion.runtime.
        Client` invocation shape — ``invoke(target_loid, method,
        *args, **kwargs)`` returning a generator (a test client, a
        stub's routed facade, a relay).  The routed method must take
        the caller's epoch as its first argument — shard managers
        verify it and bounce when stale.
        """
        bounces = 0
        while True:
            shard_id, shard = self.route(loid)
            if shard is None:
                # Routed to a retired shard (merged away after this
                # cache was taken): refresh and retry like a bounce.
                bounces += 1
                if bounces > max_bounces:
                    raise StalePartitionMap(
                        self._cached.epoch,
                        self._replicated.epoch,
                        snapshot=self._replicated.current,
                    )
                self.adopt(self._replicated.current)
                yield self._replicated.runtime.sim.timeout(FAST_CONVERGE_S)
                continue
            try:
                result = yield from client.invoke(
                    shard.loid, method, self._cached.epoch, loid, *args,
                    **kwargs,
                )
                return result
            except StalePartitionMap as error:
                bounces += 1
                self.bounces += 1
                self._replicated.runtime.network.count(
                    "manager.shard.stale_map_bounces"
                )
                if bounces > max_bounces:
                    raise
                if not self.adopt(error.snapshot):
                    # Bounce carried nothing newer (or was withheld):
                    # fall back to the authoritative primary.
                    self.adopt(self._replicated.current)
                    if self._cached.epoch <= error.epoch:
                        # Nothing anywhere is newer yet; wait out the
                        # staleness window rather than spin.
                        yield self._replicated.runtime.sim.timeout(
                            FAST_CONVERGE_S
                        )
                        self.refresh()
                        self.adopt(self._replicated.current)
