"""Client-side stubs for calling DCDOs defensively.

The paper puts the burden of fully-dynamic functions on callers:
"invocations on a dynamic function should be written to expect the
absence of the function.  Clients calling a DCDO should time out or
catch an exception ... that indicates that the function they tried to
invoke was not present" (§3.2), and under general evolution "clients
can still query the interface of the DCDO to determine if a function
it needs is still exported" (§3.5).

:class:`DCDOStub` packages that discipline: it caches the object's
exported interface, optionally verifies a function is present before
building an invocation, and on a disappearing-function failure
re-queries the interface and (per policy) retries once, falls back to
an alternative function, or surfaces a clear error.
"""

from repro.legion.errors import MethodNotFound


class InterfaceCache:
    """A client's view of one DCDO's exported interface.

    The view is inherently a snapshot — the §3.1 disappearing exported
    function problem is exactly a stale snapshot — so it records when
    it was taken and can be refreshed.
    """

    def __init__(self):
        self.functions = None
        self.version = None
        self.fetched_at = None

    @property
    def is_fresh(self):
        """True once an interface has been fetched."""
        return self.functions is not None

    def update(self, functions, version, now):
        """Install a snapshot."""
        self.functions = set(functions)
        self.version = version
        self.fetched_at = now

    def exports(self, function):
        """True if the snapshot says ``function`` is callable."""
        return self.functions is not None and function in self.functions


class DCDOStub:
    """A defensive caller for one DCDO.

    Parameters
    ----------
    client:
        A :class:`~repro.legion.runtime.Client` (or any object with an
        ``invoke``-returning-generator and a ``sim``).
    loid:
        The target DCDO.
    retry_on_disappearance:
        Re-query the interface and retry once when an invocation hits
        a disappeared function (the function may have been replaced by
        an equivalent and re-exported, or the object may have evolved
        mid-flight).
    fallbacks:
        Optional mapping ``function -> alternative function`` used when
        the primary is not exported (a degraded-mode pattern).
    """

    def __init__(self, client, loid, retry_on_disappearance=True, fallbacks=None):
        self._client = client
        self._loid = loid
        self._retry = retry_on_disappearance
        self._fallbacks = dict(fallbacks or {})
        self.interface = InterfaceCache()
        self.disappearances = 0
        self.fallbacks_used = 0

    @property
    def loid(self):
        """The target DCDO's LOID."""
        return self._loid

    def refresh_interface(self):
        """Generator: fetch the current interface and version."""
        functions = yield from self._client.invoke(self._loid, "getInterface")
        version = yield from self._client.invoke(self._loid, "getVersion")
        self.interface.update(functions, version, self._client.sim.now)
        return set(functions)

    def supports(self, function):
        """Generator: is ``function`` exported right now?

        Always re-queries — a cached answer would be exactly the stale
        snapshot the §3.1 problem is about.
        """
        functions = yield from self.refresh_interface()
        return function in functions

    def call(self, function, *args, check_first=False, timeout_schedule=None):
        """Generator: invoke ``function`` defensively.

        ``check_first`` consults a fresh interface before invoking —
        the §3.5 "query the interface ... before invoking" pattern
        (one extra round trip; the TOCTOU window shrinks but cannot
        close, which is why the retry path exists too).
        """
        target = function
        if check_first:
            exported = yield from self.supports(function)
            if not exported:
                target = self._pick_fallback(function)
        try:
            result = yield from self._client.invoke(
                self._loid, target, *args, timeout_schedule=timeout_schedule
            )
            return result
        except MethodNotFound:
            self.disappearances += 1
            if not self._retry and target not in self._fallbacks:
                raise
        # The function disappeared under us: re-query and try once more
        # (it may have been replaced, or a fallback may be exported).
        functions = yield from self.refresh_interface()
        if target in functions and self._retry:
            result = yield from self._client.invoke(
                self._loid, target, *args, timeout_schedule=timeout_schedule
            )
            return result
        fallback = self._pick_fallback(target)
        if fallback != target and fallback in functions:
            self.fallbacks_used += 1
            result = yield from self._client.invoke(
                self._loid, fallback, *args, timeout_schedule=timeout_schedule
            )
            return result
        raise MethodNotFound(self._loid, function)

    def call_sync(self, function, *args, **kwargs):
        """Run one defensive call to completion (test/driver helper)."""
        return self._client.sim.run_process(self.call(function, *args, **kwargs))

    def _pick_fallback(self, function):
        return self._fallbacks.get(function, function)

    def __repr__(self):
        return f"<DCDOStub {self._loid} disappearances={self.disappearances}>"
