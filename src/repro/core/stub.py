"""Client-side stubs for calling DCDOs defensively.

The paper puts the burden of fully-dynamic functions on callers:
"invocations on a dynamic function should be written to expect the
absence of the function.  Clients calling a DCDO should time out or
catch an exception ... that indicates that the function they tried to
invoke was not present" (§3.2), and under general evolution "clients
can still query the interface of the DCDO to determine if a function
it needs is still exported" (§3.5).

:class:`DCDOStub` packages that discipline: it caches the object's
exported interface, optionally verifies a function is present before
building an invocation, and on a disappearing-function failure
re-queries the interface and (per policy) retries once, falls back to
an alternative function, or surfaces a clear error.

The cache can additionally act as an **epoch-coherent lease** (pass
``lease_ttl_s``): DCDOs piggyback their configuration epoch on every
reply, so as long as the piggybacked epoch matches the one the lease
was taken under — and the lease is younger than its TTL — ``supports``
and ``check_first`` answer from cache with zero round trips.  Any DFM
mutation bumps the epoch, the next reply carries it, and the lease
self-invalidates; the disappearance-retry path below remains the
correctness backstop for the unclosable TOCTOU window, so §3.1/§3.5
semantics are preserved.
"""

from repro.legion.errors import MethodNotFound


class InterfaceCache:
    """A client's view of one DCDO's exported interface.

    The view is inherently a snapshot — the §3.1 disappearing exported
    function problem is exactly a stale snapshot — so it records when
    it was taken (and under which configuration epoch) and can be
    refreshed or validated as a lease.
    """

    def __init__(self):
        self.functions = None
        self.version = None
        self.fetched_at = None
        self.epoch = None

    @property
    def is_fresh(self):
        """True once an interface has been fetched."""
        return self.functions is not None

    def update(self, functions, version, now, epoch=None):
        """Install a snapshot."""
        self.functions = set(functions)
        self.version = version
        self.fetched_at = now
        self.epoch = epoch

    def is_current(self, now, observed_epoch, max_age_s):
        """Lease validity: young enough AND epoch-coherent.

        A lease is only as good as its two guards: ``max_age_s`` bounds
        how long a snapshot may serve without revalidation, and the
        epoch check compares the epoch this snapshot was taken under
        against the latest one piggybacked on replies — any mismatch
        (including a *regression*, i.e. a crash-recovered object whose
        epoch counter restarted) invalidates immediately.
        """
        if not self.is_fresh or self.epoch is None:
            return False
        if max_age_s is None or self.fetched_at is None:
            return False
        if now - self.fetched_at > max_age_s:
            return False
        return observed_epoch == self.epoch

    def exports(self, function):
        """True if the snapshot says ``function`` is callable."""
        return self.functions is not None and function in self.functions


class DCDOStub:
    """A defensive caller for one DCDO.

    Parameters
    ----------
    client:
        A :class:`~repro.legion.runtime.Client` (or any object with an
        ``invoke``-returning-generator and a ``sim``).
    loid:
        The target DCDO.
    retry_on_disappearance:
        Re-query the interface and retry once when an invocation hits
        a disappeared function (the function may have been replaced by
        an equivalent and re-exported, or the object may have evolved
        mid-flight).
    fallbacks:
        Optional mapping ``function -> alternative function`` used when
        the primary is not exported (a degraded-mode pattern).
    lease_ttl_s:
        When set, the interface cache acts as an epoch-validated lease:
        ``supports``/``check_first`` answer from cache (zero round
        trips) while the lease is younger than the TTL *and* the
        latest piggybacked epoch matches the one the lease was taken
        under.  None (the default) preserves the seed's always-re-query
        discipline.
    """

    def __init__(
        self,
        client,
        loid,
        retry_on_disappearance=True,
        fallbacks=None,
        lease_ttl_s=None,
        router=None,
    ):
        self._client = client
        self._loid = loid
        self._retry = retry_on_disappearance
        self._fallbacks = dict(fallbacks or {})
        self._lease_ttl_s = lease_ttl_s
        self._router = router
        self.interface = InterfaceCache()
        self.disappearances = 0
        self.fallbacks_used = 0
        #: supports()/check_first answers served from a valid lease.
        self.lease_hits = 0
        #: supports()/check_first answers that had to refresh.
        self.lease_misses = 0

    @property
    def loid(self):
        """The target DCDO's LOID."""
        return self._loid

    @property
    def lease_ttl_s(self):
        """The lease TTL, or None when lease caching is off."""
        return self._lease_ttl_s

    @property
    def router(self):
        """The attached :class:`~repro.core.partition.PartitionRouter`."""
        return self._router

    def attach_router(self, router):
        """Route manager-plane calls through a sharded plane's map.

        The router is the stub's client-side partition-map cache: a
        call routed on a stale epoch bounces with the shard's current
        map piggybacked and retries against the new owner — the same
        shape as the interface lease's epoch validation.
        """
        self._router = router
        return self

    def request_update(self, target_version=None):
        """Generator: routed §3.4 explicit update via the shard plane."""
        if self._router is None:
            raise ValueError("no partition router attached")
        result = yield from self._router.call(
            self._client, self._loid, "routedUpdateInstance", target_version,
            timeout_schedule=(600.0,),
        )
        return result

    def sync_with_manager(self):
        """Generator: routed lazy-update sync via the shard plane."""
        if self._router is None:
            raise ValueError("no partition router attached")
        result = yield from self._router.call(
            self._client, self._loid, "routedSyncInstance",
            timeout_schedule=(600.0,),
        )
        return result

    def _observed_epoch(self):
        """The latest epoch piggybacked by the target, if knowable."""
        invoker = getattr(self._client, "invoker", None)
        if invoker is None:
            return None
        return invoker.observed_epoch(self._loid)

    def _lease_valid(self, max_age_s=None):
        ttl = self._lease_ttl_s if max_age_s is None else max_age_s
        if ttl is None:
            return False
        return self.interface.is_current(
            self._client.sim.now, self._observed_epoch(), ttl
        )

    def refresh_interface(self):
        """Generator: fetch the current interface and version.

        One ``getStatus`` round trip (interface + version + epoch);
        falls back to the original two-RPC ``getInterface`` +
        ``getVersion`` sequence against objects that predate
        ``getStatus``.
        """
        try:
            # getStatus is read-only, so it is safe to hedge against a
            # limping server (no-op unless the client opted in).
            status = yield from self._client.invoke(
                self._loid, "getStatus", hedge=True
            )
        except MethodNotFound:
            functions = yield from self.fetch_interface()
            version = yield from self.fetch_version()
            self.interface.update(functions, version, self._client.sim.now)
            return set(functions)
        self.interface.update(
            status["interface"],
            status["version"],
            self._client.sim.now,
            epoch=status["epoch"],
        )
        return set(status["interface"])

    def fetch_interface(self):
        """Generator: the raw ``getInterface`` RPC (no cache update)."""
        functions = yield from self._client.invoke(self._loid, "getInterface")
        return functions

    def fetch_version(self):
        """Generator: the raw ``getVersion`` RPC (no cache update)."""
        version = yield from self._client.invoke(self._loid, "getVersion")
        return version

    def supports(self, function, max_age_s=None):
        """Generator: is ``function`` exported right now?

        Re-queries unless a valid lease answers first.  Without lease
        caching (the default) a cached answer would be exactly the
        stale snapshot the §3.1 problem is about, so every call costs a
        round trip; with ``lease_ttl_s`` (or an explicit ``max_age_s``)
        the cached answer is served only while the piggybacked epoch
        proves the configuration unchanged.
        """
        if self._lease_valid(max_age_s):
            self.lease_hits += 1
            return self.interface.exports(function)
        self.lease_misses += 1
        functions = yield from self.refresh_interface()
        return function in functions

    def call(self, function, *args, check_first=False, timeout_schedule=None):
        """Generator: invoke ``function`` defensively.

        ``check_first`` consults the interface before invoking — the
        §3.5 "query the interface ... before invoking" pattern (one
        extra round trip unless a valid lease answers; the TOCTOU
        window shrinks but cannot close, which is why the retry path
        exists too).
        """
        target = function
        if check_first:
            exported = yield from self.supports(function)
            if not exported:
                target = self._pick_fallback(function)
        try:
            result = yield from self._client.invoke(
                self._loid, target, *args, timeout_schedule=timeout_schedule
            )
            return result
        except MethodNotFound:
            self.disappearances += 1
            if not self._retry and target not in self._fallbacks:
                raise
        # The function disappeared under us: re-query and try once more
        # (it may have been replaced, or a fallback may be exported).
        functions = yield from self.refresh_interface()
        if target in functions and self._retry:
            result = yield from self._client.invoke(
                self._loid, target, *args, timeout_schedule=timeout_schedule
            )
            return result
        fallback = self._pick_fallback(target)
        if fallback != target and fallback in functions:
            self.fallbacks_used += 1
            result = yield from self._client.invoke(
                self._loid, fallback, *args, timeout_schedule=timeout_schedule
            )
            return result
        raise MethodNotFound(self._loid, function)

    def call_sync(self, function, *args, **kwargs):
        """Run one defensive call to completion (test/driver helper)."""
        return self._client.sim.run_process(self.call(function, *args, **kwargs))

    def _pick_fallback(self, function):
        return self._fallbacks.get(function, function)

    def __repr__(self):
        return f"<DCDOStub {self._loid} disappearances={self.disappearances}>"
