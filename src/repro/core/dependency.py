"""Function dependencies (§3.2).

Four dependency types restrict configuration, quoted from the paper:

- **Type A** ``[F1, C1] -> [F2]`` — structural: if the implementation
  of F1 found in C1 is enabled, *some* implementation of F2 must be
  enabled.
- **Type B** ``[F1, C1] -> [F2, C2]`` — behavioral: if the
  implementation of F1 in C1 is enabled, the implementation of F2 in
  C2 must be enabled.
- **Type C** ``[F1] -> [F2, C2]`` — behavioral: if *any*
  implementation of F1 is enabled, the implementation of F2 in C2 must
  be enabled.
- **Type D** ``[F1] -> [F2]`` — structural: if any implementation of
  F1 is enabled, some implementation of F2 must be enabled.

A dependency with ``required_function == dependent_function`` lets a
recursive function protect itself ("by indicating that a function
depends on itself, a programmer can ensure that recursive functions
are not changed or removed while they are executing").
"""

from dataclasses import dataclass

from repro.core.errors import DependencyViolation


@dataclass(frozen=True)
class Dependency:
    """One declared dependency between dynamic functions.

    ``None`` in a component slot means "any implementation".
    """

    dependent_function: str
    required_function: str
    dependent_component: str = None
    required_component: str = None

    @property
    def type_letter(self):
        """The paper's A/B/C/D classification of this dependency."""
        if self.dependent_component is not None:
            return "A" if self.required_component is None else "B"
        return "D" if self.required_component is None else "C"

    @property
    def is_structural(self):
        """Types A and D: any implementation of the target suffices."""
        return self.required_component is None

    @property
    def is_behavioral(self):
        """Types B and C: one particular implementation is required."""
        return self.required_component is not None

    def __str__(self):
        def side(function, component):
            if component is None:
                return f"[{function}]"
            return f"[{function}, {component}]"

        return (
            f"Type {self.type_letter}: "
            f"{side(self.dependent_function, self.dependent_component)} -> "
            f"{side(self.required_function, self.required_component)}"
        )


def check_dependencies(dependencies, is_enabled, enabled_components_of):
    """Validate a configuration state against declared dependencies.

    Parameters
    ----------
    dependencies:
        Iterable of :class:`Dependency`.
    is_enabled:
        ``is_enabled(function, component_or_none) -> bool`` — whether
        the given implementation (or, with ``None``, any
        implementation) of the function is enabled.
    enabled_components_of:
        ``enabled_components_of(function) -> set`` of component ids
        with an enabled implementation of the function.

    Raises
    ------
    DependencyViolation
        For the first dependency whose dependent side is enabled while
        its required side is not.
    """
    for dependency in dependencies:
        if dependency.dependent_component is not None:
            dependent_active = is_enabled(
                dependency.dependent_function, dependency.dependent_component
            )
        else:
            dependent_active = bool(enabled_components_of(dependency.dependent_function))
        if not dependent_active:
            continue
        if dependency.required_component is not None:
            satisfied = is_enabled(
                dependency.required_function, dependency.required_component
            )
        else:
            satisfied = bool(enabled_components_of(dependency.required_function))
        if not satisfied:
            raise DependencyViolation(
                dependency,
                f"{dependency.dependent_function!r} is enabled but its "
                f"required function {dependency.required_function!r} is not",
            )
