"""Binding agents and binding caches.

A *binding* associates a LOID with the physical address of the
object's current incarnation.  The authoritative map lives in the
:class:`BindingAgent`; every client keeps a :class:`BindingCache` of
bindings it has used.  When an object migrates or is re-created, cached
bindings go stale, and the paper measures (§4) that "it takes objects
approximately 25 to 35 seconds to realize that a local binding
contains a physical address that the object is no longer using" — in
this model, the cumulative timeout schedule the invoker walks through
before asking the binding agent again.
"""

from dataclasses import dataclass

from repro.legion.errors import UnknownObject


@dataclass(frozen=True)
class Binding:
    """A LOID -> physical address association.

    ``incarnation`` increments every time the object activates at a new
    address, so bindings can be compared for freshness.
    """

    loid: object
    address: str
    incarnation: int


class StaleBindingStats:
    """Records how long clients took to discover stale bindings."""

    def __init__(self):
        self.discovery_times = []

    @property
    def count(self):
        """Number of stale-binding discoveries recorded."""
        return len(self.discovery_times)

    def record(self, elapsed):
        """Record one discovery that took ``elapsed`` seconds."""
        self.discovery_times.append(elapsed)

    def mean(self):
        """Mean discovery time, or None if none recorded."""
        if not self.discovery_times:
            return None
        return sum(self.discovery_times) / len(self.discovery_times)


class BindingAgent:
    """The authoritative LOID -> Binding registry.

    The agent is reachable over the network at its own address, so a
    client rebinding pays a real round trip.  Registrations are made
    directly by the runtime (class objects and the agent are part of
    the trusted core), which keeps the model focused on the measured
    path: client-side resolution.
    """

    ADDRESS = "service/binding-agent"

    def __init__(self, network):
        self._bindings = {}
        self.resolutions_served = 0
        from repro.net import Endpoint

        self._endpoint = Endpoint(
            network,
            self.ADDRESS,
            request_handler=self._handle_request,
        )

    def register(self, loid, address):
        """Record that ``loid`` now lives at ``address``; returns the binding."""
        previous = self._bindings.get(loid)
        incarnation = previous.incarnation + 1 if previous else 1
        binding = Binding(loid, address, incarnation)
        self._bindings[loid] = binding
        return binding

    def unregister(self, loid):
        """Forget ``loid`` entirely (object destroyed)."""
        self._bindings.pop(loid, None)

    def resolve_local(self, loid):
        """Resolve without network cost (runtime-internal use)."""
        binding = self._bindings.get(loid)
        if binding is None:
            raise UnknownObject(f"binding agent knows no object {loid}")
        return binding

    def current_address(self, loid):
        """The registered address, or None."""
        binding = self._bindings.get(loid)
        return binding.address if binding else None

    def _handle_request(self, message):
        payload = message.payload
        if payload.get("op") != "resolve":
            raise ValueError(f"unknown binding-agent op {payload.get('op')!r}")
        self.resolutions_served += 1
        binding = self.resolve_local(payload["loid"])
        return (binding, 0)
        yield  # pragma: no cover - marks this as a generator


class BindingCache:
    """A client-side cache of bindings, with staleness accounting."""

    def __init__(self):
        self._bindings = {}
        self.hits = 0
        self.misses = 0
        self.stale_stats = StaleBindingStats()

    def get(self, loid):
        """Return the cached binding or None."""
        binding = self._bindings.get(loid)
        if binding is not None:
            self.hits += 1
        else:
            self.misses += 1
        return binding

    def put(self, binding):
        """Cache ``binding``, replacing any older incarnation."""
        current = self._bindings.get(binding.loid)
        if current is None or binding.incarnation >= current.incarnation:
            self._bindings[binding.loid] = binding

    def invalidate(self, loid):
        """Drop the cached binding for ``loid``."""
        self._bindings.pop(loid, None)

    def record_stale_discovery(self, elapsed):
        """Account the time spent discovering one stale binding."""
        self.stale_stats.record(elapsed)

    def __contains__(self, loid):
        return loid in self._bindings

    def __len__(self):
        return len(self._bindings)
