"""A Legion-like wide-area distributed object substrate (simulated).

This package rebuilds the pieces of Legion the DCDO model depends on,
per the paper's description of the host system:

- :mod:`repro.legion.loid` — Legion object identifiers (LOIDs), the
  global names for all objects.
- :mod:`repro.legion.naming` — context space mapping path names to
  LOIDs ("dynamic configurability can benefit from the global
  namespace defined by the host system", §2.3).
- :mod:`repro.legion.binding` — binding agents and per-object binding
  caches; stale bindings take ~25-35 s to discover (§4).
- :mod:`repro.legion.rpc` — the method-invocation protocol, including
  timeout/retry/rebind behaviour.
- :mod:`repro.legion.objects` — the active-object base class: mailbox,
  method table, per-request simulated threads.
- :mod:`repro.legion.implementation` — implementation binaries and the
  chunked download protocol whose costs dominate baseline evolution.
- :mod:`repro.legion.klass` — class objects, which create, activate,
  deactivate, and migrate their instances.
- :mod:`repro.legion.runtime` — the facade wiring a testbed into a
  running Legion system.
"""

from repro.legion.binding import Binding, BindingAgent, BindingCache, StaleBindingStats
from repro.legion.context_service import ContextService, bind_path, lookup_path
from repro.legion.errors import (
    LegionError,
    MethodNotFound,
    ObjectUnreachable,
    UnknownObject,
)
from repro.legion.implementation import Implementation, ImplementationStore
from repro.legion.klass import ClassObject
from repro.legion.loid import LOID
from repro.legion.naming import ContextSpace
from repro.legion.objects import CallContext, LegionObject
from repro.legion.runtime import LegionRuntime

__all__ = [
    "Binding",
    "BindingAgent",
    "BindingCache",
    "CallContext",
    "ClassObject",
    "ContextService",
    "ContextSpace",
    "bind_path",
    "lookup_path",
    "Implementation",
    "ImplementationStore",
    "LOID",
    "LegionError",
    "LegionObject",
    "LegionRuntime",
    "MethodNotFound",
    "ObjectUnreachable",
    "StaleBindingStats",
    "UnknownObject",
]
