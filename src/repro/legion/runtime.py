"""The Legion runtime facade.

:class:`LegionRuntime` wires a :class:`~repro.cluster.testbed.Testbed`
into a running Legion system: binding agent, implementation store,
context space, and the registry of class objects and live instances.
Everything the examples and benchmarks touch goes through this facade.
"""

from repro.legion.binding import BindingAgent, BindingCache
from repro.legion.context_service import ContextService, lookup_path
from repro.legion.errors import UnknownObject
from repro.legion.implementation import ImplementationStore
from repro.legion.klass import ClassObject
from repro.legion.rpc import MethodInvoker


class Client:
    """A pure client: an endpoint + invoker not backed by an object.

    Used by tests, examples, and benchmarks to play the role of "some
    other object in the system" calling into the objects under test.
    """

    _counter = 0

    def __init__(self, runtime, host, name=None):
        Client._counter += 1
        self._runtime = runtime
        self._host = host
        address = name or f"{host.name}/client#{Client._counter}"
        from repro.net import Endpoint

        self.endpoint = Endpoint(runtime.network, address)
        self.binding_cache = BindingCache()
        self.invoker = MethodInvoker(
            self.endpoint, self.binding_cache, runtime.calibration, rng=runtime.rng
        )

    @property
    def sim(self):
        """The simulator."""
        return self._runtime.sim

    def invoke(self, loid, method, *args, timeout_schedule=None, hedge=False):
        """Generator: remote method invocation (see MethodInvoker)."""
        return self.invoker.invoke(
            loid, method, args, timeout_schedule=timeout_schedule, hedge=hedge
        )

    def call_sync(self, loid, method, *args, timeout_schedule=None):
        """Run a single invocation to completion from outside a process.

        Convenience for tests: spawns a driver process and runs the
        simulator until the result is available.
        """
        return self._runtime.sim.run_process(
            self.invoke(loid, method, *args, timeout_schedule=timeout_schedule)
        )

    def lookup_path(self, path):
        """Generator: resolve a context path to a LOID over the network."""
        return lookup_path(self.endpoint, path)

    def lookup_path_sync(self, path):
        """Resolve a context path to completion (test/driver helper)."""
        return self._runtime.sim.run_process(self.lookup_path(path))


class LegionRuntime:
    """A running Legion system on a simulated testbed.

    Parameters
    ----------
    testbed:
        The cluster to run on.
    domain:
        Administrative domain used in LOIDs.
    """

    def __init__(self, testbed, domain="legion"):
        self._testbed = testbed
        self._domain = domain
        self.binding_agent = BindingAgent(testbed.network)
        self.implementation_store = ImplementationStore(self)
        self.context_service = ContextService(testbed.network)
        #: Optional :class:`~repro.obs.trace.Tracer`; when attached,
        #: configuration-plane events are recorded through
        #: :meth:`trace`.
        self.tracer = None
        self._classes = {}
        self._objects = {}
        # Host name -> {loid: obj} in attach order.  Lets per-host
        # agents (relays serving announcement waves) enumerate their
        # colocated objects without an O(total objects) scan; kept in
        # sync by :meth:`attach_object` and migration's ``moved_to``.
        self._objects_by_host = {}

    def trace(self, category, subject, **details):
        """Record a trace event if a tracer is attached (else no-op)."""
        if self.tracer is not None:
            self.tracer.record(category, subject, **details)

    @property
    def context_space(self):
        """The global name space (local view; remote objects use the
        context service's network interface)."""
        return self.context_service.space

    # ------------------------------------------------------------------
    # Substrate accessors
    # ------------------------------------------------------------------

    @property
    def testbed(self):
        """The underlying cluster."""
        return self._testbed

    @property
    def sim(self):
        """The simulator."""
        return self._testbed.sim

    @property
    def network(self):
        """The network fabric."""
        return self._testbed.network

    @property
    def calibration(self):
        """The cost model."""
        return self._testbed.calibration

    @property
    def rng(self):
        """The deterministic RNG."""
        return self._testbed.rng

    @property
    def domain(self):
        """LOID domain for this runtime."""
        return self._domain

    @property
    def hosts(self):
        """Host name -> Host."""
        return self._testbed.hosts

    def host(self, name):
        """Return the named host; raises ``KeyError`` if unknown."""
        return self._testbed.hosts[name]

    def vault_of(self, host):
        """The vault co-located with ``host``."""
        return self._testbed.vaults[host.name]

    # ------------------------------------------------------------------
    # Classes and objects
    # ------------------------------------------------------------------

    def define_class(
        self,
        type_name,
        implementations=(),
        instance_factory=None,
        host_name=None,
        class_factory=None,
    ):
        """Create, publish, and activate a class object for ``type_name``.

        ``class_factory`` lets callers substitute a :class:`ClassObject`
        subclass (the DCDO Manager does this); it must accept the same
        leading arguments.
        """
        if type_name in self._classes:
            raise ValueError(f"class {type_name!r} already defined")
        host = self.host(host_name) if host_name else next(iter(self.hosts.values()))
        for implementation in implementations:
            self.implementation_store.publish(implementation)
        factory = class_factory or ClassObject
        class_object = factory(
            self,
            type_name,
            host,
            implementations=implementations,
            instance_factory=instance_factory,
        )
        self.sim.run_process(class_object.activate())
        self._classes[type_name] = class_object
        self._objects[class_object.loid] = class_object
        self._index_on_host(class_object, class_object.host.name)
        self.context_space.bind(f"/classes/{type_name}", class_object.loid)
        return class_object

    def classes(self):
        """All defined class objects, in definition order."""
        return list(self._classes.values())

    def class_of(self, type_name):
        """Return the class object for ``type_name``."""
        class_object = self._classes.get(type_name)
        if class_object is None:
            raise UnknownObject(f"no class {type_name!r} defined")
        return class_object

    def adopt_class(self, class_object):
        """Swap in a recovered class object for its type.

        Used by crash recovery: the replacement shares the crashed
        manager's deterministic class LOID, so from every client's view
        it *is* the same object, back at a new address under a new
        binding incarnation.
        """
        self._classes[class_object.type_name] = class_object
        self._objects[class_object.loid] = class_object
        self._index_on_host(class_object, class_object.host.name)
        self.context_space.bind(
            f"/classes/{class_object.type_name}", class_object.loid
        )
        return class_object

    def attach_object(self, obj):
        """Register a live object so the runtime can find it by LOID."""
        self._objects[obj.loid] = obj
        self._index_on_host(obj, obj.host.name)

    def _index_on_host(self, obj, host_name):
        self._objects_by_host.setdefault(host_name, {})[obj.loid] = obj

    def reindex_object(self, obj, old_host_name):
        """Move ``obj``'s per-host index entry after a migration."""
        stale = self._objects_by_host.get(old_host_name)
        if stale is not None:
            stale.pop(obj.loid, None)
        self._index_on_host(obj, obj.host.name)

    def objects_on_host(self, host_name):
        """Live objects attached on ``host_name``, in attach order."""
        return list(self._objects_by_host.get(host_name, {}).values())

    def live_object(self, loid):
        """The attached object for ``loid``, or None (recovery helper)."""
        return self._objects.get(loid)

    def find_object(self, loid):
        """Return the live object for ``loid`` (runtime-internal uses).

        Raises :class:`UnknownObject` if no such object is attached.
        """
        obj = self._objects.get(loid)
        if obj is None:
            raise UnknownObject(f"no live object {loid}")
        return obj

    def make_client(self, host_name=None, name=None):
        """Create a :class:`Client` homed on the given (or first) host."""
        host = self.host(host_name) if host_name else next(iter(self.hosts.values()))
        return Client(self, host, name=name)

    def run(self, until=None):
        """Convenience passthrough to the simulator."""
        return self.sim.run(until=until)

    def __repr__(self):
        return (
            f"<LegionRuntime domain={self._domain} classes={len(self._classes)} "
            f"t={self.sim.now:g}>"
        )
