"""Errors raised by the Legion substrate."""

from repro.sim.errors import SimulationError


class LegionError(SimulationError):
    """Base class for Legion-level failures."""


class UnknownObject(LegionError):
    """No such LOID is known to the binding agent or class object."""


class ObjectUnreachable(LegionError):
    """All invocation attempts (including rebinding) failed."""

    def __init__(self, loid, elapsed):
        super().__init__(f"object {loid} unreachable after {elapsed:.3f}s")
        self.loid = loid
        self.elapsed = elapsed


class MethodNotFound(LegionError):
    """The target object has no such member function.

    For DCDOs this is also how the *disappearing exported function
    problem* (§3.1) surfaces at a client: the invocation was built
    against an interface that no longer matches the object.
    """

    def __init__(self, loid, method):
        super().__init__(f"object {loid} has no method {method!r}")
        self.loid = loid
        self.method = method


class ObjectDeactivated(LegionError):
    """The object exists but is not currently active on any host."""


class StaleManagerTerm(LegionError):
    """A management RPC carried a fencing term older than one already seen.

    Raised by the receiving object; the deposed sender should treat it
    as a signal to stand down rather than retry.
    """

    def __init__(self, term, latest):
        super().__init__(
            f"stale manager term {term.number} for scope {term.scope!r} "
            f"(latest seen {latest})"
        )
        self.term = term
        self.latest = latest


class ImplementationUnavailable(LegionError):
    """No implementation compatible with the target host exists."""
