"""Active Legion objects.

A :class:`LegionObject` is an active object: a simulated process with
its own network endpoint, a method table, and one simulated thread per
in-flight request.  Member-function bodies are written as generator
functions ``body(ctx, *args)`` receiving a :class:`CallContext` that
lets them charge CPU time, call sibling functions, and invoke remote
objects.

Subclasses override :meth:`_dispatch_local` to change how intra-object
calls are resolved — the base class dispatches directly (a compiled
call), while DCDOs route through their DFM, which is precisely the one
level of indirection the paper's mechanism adds.
"""

import itertools

from repro.legion.errors import MethodNotFound
from repro.legion.rpc import MethodInvoker

_address_counter = itertools.count(1)


class CallContext:
    """What a member-function body sees while it executes.

    Bodies are generators; every facility here that takes time returns
    something to ``yield`` (or is itself driven by ``yield from``).
    """

    __slots__ = ("_obj", "_method_name", "reply_bytes")

    def __init__(self, obj, method_name):
        self._obj = obj
        self._method_name = method_name
        self.reply_bytes = None

    @property
    def obj(self):
        """The object the function is executing in."""
        return self._obj

    @property
    def sim(self):
        """The simulator (for timeouts and raw events)."""
        return self._obj.sim

    @property
    def method_name(self):
        """Name the function was invoked under."""
        return self._method_name

    @property
    def state(self):
        """The object's mutable state dict."""
        return self._obj.state

    def work(self, seconds):
        """Charge ``seconds`` of CPU on the hosting machine (yield it)."""
        return self._obj.host.cpu_work(seconds)

    def set_reply_size(self, size_bytes):
        """Charge the reply to this call at ``size_bytes`` on the wire.

        Methods serving bulk data (e.g. an ICO's ``fetchVariant``) call
        this so the transfer pays realistic transmission time.
        """
        self.reply_bytes = size_bytes

    def call(self, name, *args):
        """Generator: call another function in the *same* object.

        Dispatch behaviour is the object's: direct for plain Legion
        objects, DFM-mediated for DCDOs.
        """
        return self._obj._dispatch_local(name, args, caller=self._method_name)

    def invoke(self, loid, method, *args, timeout_schedule=None):
        """Generator: invoke a method on a *remote* object (an outcall).

        While the outcall is pending this thread is inactive inside the
        current function — the situation the §3.1 disappearing-function
        problems arise from.
        """
        return self._obj.invoker.invoke(
            loid, method, args, timeout_schedule=timeout_schedule
        )


class LegionObject:
    """An active object: endpoint + method table + request threads.

    Parameters
    ----------
    runtime:
        The :class:`~repro.legion.runtime.LegionRuntime` this object
        lives in.
    loid:
        The object's LOID.
    host:
        The host the object activates on.
    state_bytes:
        Logical size of the object's state, charged by capture/restore.

    The base class carries ``__slots__`` so the per-instance footprint
    of a large fleet stays flat; subclasses that add ad-hoc attributes
    (DCDOs, managers) simply declare none and get a ``__dict__`` for
    their own fields on top of the slotted base.
    """

    __slots__ = (
        "_runtime",
        "_loid",
        "_host",
        "_methods",
        "_endpoint",
        "_process",
        "_binding",
        "_invoker",
        "state",
        "state_bytes",
        "active_requests",
        "requests_completed",
        "_terms_seen",
        "__weakref__",
    )

    def __init__(self, runtime, loid, host, state_bytes=0):
        self._runtime = runtime
        self._loid = loid
        self._host = host
        self._methods = {}
        self._endpoint = None
        self._process = None
        self._binding = None
        self._invoker = None
        self.state = {}
        self.state_bytes = state_bytes
        self.active_requests = 0
        self.requests_completed = 0
        # Highest fencing term number seen per scope; stale-term
        # requests are rejected so a deposed manager cannot disturb
        # state a newer one already owns.
        self._terms_seen = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def runtime(self):
        """The owning runtime."""
        return self._runtime

    @property
    def loid(self):
        """This object's LOID."""
        return self._loid

    @property
    def host(self):
        """The host this object is (or was last) active on."""
        return self._host

    @property
    def sim(self):
        """The simulator."""
        return self._runtime.sim

    @property
    def calibration(self):
        """The cost model in effect."""
        return self._runtime.calibration

    @property
    def is_active(self):
        """True while the object has a live endpoint."""
        return self._endpoint is not None and not self._endpoint.is_closed

    @property
    def address(self):
        """Current physical address, or None when deactivated."""
        return self._endpoint.address if self.is_active else None

    @property
    def invoker(self):
        """This object's client-side invoker for outcalls."""
        if self._invoker is None:
            raise RuntimeError(f"{self._loid} is not active")
        return self._invoker

    @property
    def method_names(self):
        """Sorted names of registered member functions."""
        return sorted(self._methods)

    # ------------------------------------------------------------------
    # Method table
    # ------------------------------------------------------------------

    def register_method(self, name, body):
        """Register member function ``name`` with generator ``body``.

        ``body(ctx, *args)`` may be a generator function (preferred —
        it can yield simulated time) or a plain function (for pure
        in-memory logic).
        """
        if not callable(body):
            raise TypeError(f"method body for {name!r} must be callable")
        self._methods[name] = body

    def unregister_method(self, name):
        """Remove member function ``name`` from the table."""
        self._methods.pop(name, None)

    def has_method(self, name):
        """True if ``name`` is currently dispatchable."""
        return name in self._methods

    # ------------------------------------------------------------------
    # Activation lifecycle
    # ------------------------------------------------------------------

    def activate(self):
        """Process body: bring the object up on its host.

        Creates a fresh endpoint (new physical address), registers the
        binding with the binding agent, and builds the client-side
        invoker.  Does *not* charge process-spawn cost — that belongs
        to whoever is creating the process (the class object), keeping
        creation-cost accounting in one place.
        """
        address = f"{self._host.name}/{self._loid}@{next(_address_counter)}"
        from repro.net import Endpoint

        self._endpoint = Endpoint(
            self._runtime.network,
            address,
            request_handler=self._handle_request,
        )
        from repro.legion.binding import BindingCache

        self._invoker = MethodInvoker(
            self._endpoint,
            BindingCache(),
            self.calibration,
            rng=self._runtime.rng,
        )
        self._binding = self._runtime.binding_agent.register(self._loid, address)
        return self._binding
        yield  # pragma: no cover - uniform generator shape for callers

    def deactivate(self):
        """Tear the endpoint down; the object becomes unreachable.

        Cached bindings elsewhere in the system now point at a dead
        address — the precondition for stale-binding discovery.
        """
        if self._endpoint is not None:
            self._endpoint.close()
        self._endpoint = None
        self._invoker = None

    # ------------------------------------------------------------------
    # State capture / restore (used by migration and baseline evolution)
    # ------------------------------------------------------------------

    def capture_state(self):
        """Return (state, size_bytes) for persisting to an OPR."""
        return dict(self.state), self.state_bytes

    def restore_state(self, state):
        """Install state read back from an OPR."""
        self.state = dict(state)

    def moved_to(self, host):
        """Rebase the object onto ``host`` (migration bookkeeping)."""
        old_host_name = self._host.name
        self._host = host
        self._runtime.reindex_object(self, old_host_name)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _lookup(self, name, caller=None):
        """Resolve ``name`` to a callable body; subclass hook.

        ``caller`` is the name of the in-object function making a local
        call, or None for calls arriving from the network.
        """
        body = self._methods.get(name)
        if body is None:
            raise MethodNotFound(self._loid, name)
        return body

    def _call_overhead(self):
        """Event charging the per-call dispatch overhead; subclass hook."""
        return self.sim.timeout(self.calibration.direct_call_overhead_s)

    def _run_body(self, name, body, args, context=None):
        """Generator: execute a member-function body with a context.

        Returns (result, context) so external dispatch can read the
        reply size the body may have set.
        """
        context = context or CallContext(self, name)
        result = body(context, *args)
        if result is not None and hasattr(result, "__next__"):
            result = yield from result
        else:
            # Plain function: already computed; still yield the clock
            # once so plain and generator bodies behave uniformly.
            yield self.sim.timeout(0)
        return result, context

    def _dispatch_local(self, name, args, caller=None):
        """Generator: an intra-object call (direct; DCDOs override)."""
        body = self._lookup(name, caller=caller)
        yield self._call_overhead()
        result, __ = yield from self._run_body(name, body, args)
        return result

    def _dispatch_external(self, name, args):
        """Generator: a call arriving from the network (DCDOs override).

        Returns (result, reply_bytes).
        """
        body = self._lookup(name, caller=None)
        yield self._call_overhead()
        result, context = yield from self._run_body(name, body, args)
        return result, context.reply_bytes

    def observed_term(self, scope):
        """Highest fencing term number seen for ``scope`` (None if unseen)."""
        return self._terms_seen.get(scope)

    def _handle_request(self, message):
        """Generator: serve one inbound method invocation."""
        payload = message.payload
        if payload.get("op") != "invoke":
            raise ValueError(f"unknown object op {payload.get('op')!r}")
        term = message.term
        if term is not None:
            latest = self._terms_seen.get(term.scope)
            if latest is not None and term.number < latest:
                self._runtime.network.count("manager.stale_term_rejections")
                self._runtime.trace(
                    "stale-term-rejected",
                    self._loid,
                    scope=term.scope,
                    stale=term.number,
                    latest=latest,
                )
                from repro.legion.errors import StaleManagerTerm

                raise StaleManagerTerm(term, latest)
            self._terms_seen[term.scope] = term.number
        # Server-side unmarshalling + dispatch cost.
        yield self._host.cpu_work(self.calibration.method_dispatch_s)
        self.active_requests += 1
        try:
            result, reply_bytes = yield from self._dispatch_external(
                payload["method"], payload["args"]
            )
        finally:
            self.active_requests -= 1
        self.requests_completed += 1
        if reply_bytes is None:
            reply_bytes = self.calibration.method_message_bytes
        return (result, reply_bytes)

    def __repr__(self):
        state = "active" if self.is_active else "inactive"
        return f"<{self.__class__.__name__} {self._loid} {state} on {self._host.name}>"
