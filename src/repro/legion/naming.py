"""Context space: the global path-name namespace.

Legion names objects through *contexts*, hierarchical directories
mapping string names to LOIDs.  The DCDO model leans on this namespace
for implementation components (§2.3): "implementation components can
be named using whatever scheme exists for naming objects in the
system", so ICOs are registered here like any other object.

The context space is a logical service; lookups made by remote objects
travel through RPC at the runtime layer.  This module is the data
structure itself.
"""

from repro.legion.errors import UnknownObject


class ContextSpace:
    """A hierarchical name -> LOID directory.

    Paths are slash-separated (``/home/impls/sorter-v2``); intermediate
    contexts are created on demand by :meth:`bind`.
    """

    def __init__(self):
        self._root = {}

    @staticmethod
    def _split(path):
        parts = [part for part in path.split("/") if part]
        if not parts:
            raise ValueError(f"invalid path {path!r}")
        return parts

    def bind(self, path, loid):
        """Bind ``path`` to ``loid``, creating intermediate contexts."""
        *dirs, leaf = self._split(path)
        node = self._root
        for part in dirs:
            child = node.get(part)
            if child is None:
                child = node[part] = {}
            elif not isinstance(child, dict):
                raise ValueError(f"path component {part!r} is a leaf, not a context")
            node = child
        if isinstance(node.get(leaf), dict):
            raise ValueError(f"path {path!r} names a context, not a leaf")
        node[leaf] = loid

    def lookup(self, path):
        """Return the LOID bound at ``path``.

        Raises :class:`UnknownObject` if the path is unbound or names
        an intermediate context.
        """
        node = self._root
        for part in self._split(path):
            if not isinstance(node, dict) or part not in node:
                raise UnknownObject(f"no object bound at {path!r}")
            node = node[part]
        if isinstance(node, dict):
            raise UnknownObject(f"{path!r} is a context, not an object")
        return node

    def unbind(self, path):
        """Remove the binding at ``path``; returns the LOID removed."""
        *dirs, leaf = self._split(path)
        node = self._root
        for part in dirs:
            node = node.get(part)
            if not isinstance(node, dict):
                raise UnknownObject(f"no context at {path!r}")
        if leaf not in node or isinstance(node[leaf], dict):
            raise UnknownObject(f"no object bound at {path!r}")
        return node.pop(leaf)

    def list_context(self, path="/"):
        """Return sorted names in the context at ``path``."""
        node = self._root
        parts = [part for part in path.split("/") if part]
        for part in parts:
            if not isinstance(node, dict) or part not in node:
                raise UnknownObject(f"no context at {path!r}")
            node = node[part]
        if not isinstance(node, dict):
            raise UnknownObject(f"{path!r} is an object, not a context")
        return sorted(node)

    def __contains__(self, path):
        try:
            self.lookup(path)
        except (UnknownObject, ValueError):
            return False
        return True
