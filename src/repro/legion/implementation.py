"""Implementation binaries and the chunked download protocol.

A normal Legion object's behaviour is "defined by a static monolithic
executable" (§2); the executable must be present on a host before the
object can activate there.  The :class:`ImplementationStore` is the
service objects download binaries from, using a chunked protocol whose
calibrated per-chunk cost reproduces the paper's measured download
times (5.1 MB ≈ 15–25 s, 550 KB ≈ 4 s).

The same transfer path moves DCDO component data out of ICOs, so the
"uncached component incorporation is download-dominated" result (§4)
falls out of shared machinery.
"""

from dataclasses import dataclass, field

from repro.legion.errors import ImplementationUnavailable


@dataclass(frozen=True)
class Implementation:
    """A monolithic executable implementing an object type.

    Attributes
    ----------
    impl_id:
        Globally unique name of the binary (also its cache key).
    size_bytes:
        Binary size; drives download time.
    architecture:
        Architecture the binary runs on.
    functions:
        Mapping of member-function name -> body callable.  Frozen at
        build time — this is exactly the rigidity DCDOs remove.
    version_tag:
        Human-readable version label for the baseline's "new
        executable per version" model.
    """

    impl_id: str
    size_bytes: int
    architecture: str = "x86-linux"
    functions: dict = field(default_factory=dict)
    version_tag: str = "1"

    def __post_init__(self):
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")

    def runs_on(self, host):
        """True if this binary matches the host's architecture."""
        return self.architecture == host.architecture


class ImplementationStore:
    """The service holding implementation binaries for download.

    One store serves the whole testbed (like a Legion vault holding
    implementation objects).  Hosts download through
    :meth:`download_to`, which charges the full chunked protocol and
    populates the host's file cache.
    """

    ADDRESS = "service/impl-store"

    def __init__(self, runtime):
        self._runtime = runtime
        self._implementations = {}
        self.downloads_served = 0
        from repro.net import Endpoint

        self._endpoint = Endpoint(
            runtime.network,
            self.ADDRESS,
            request_handler=self._handle_request,
        )

    def publish(self, implementation):
        """Make ``implementation`` downloadable; returns it."""
        self._implementations[implementation.impl_id] = implementation
        return implementation

    def get(self, impl_id):
        """Return the published implementation.

        Raises :class:`ImplementationUnavailable` for unknown ids.
        """
        implementation = self._implementations.get(impl_id)
        if implementation is None:
            raise ImplementationUnavailable(f"no implementation {impl_id!r} published")
        return implementation

    def find_for_host(self, candidates, host):
        """Pick the first candidate id whose binary runs on ``host``."""
        for impl_id in candidates:
            implementation = self._implementations.get(impl_id)
            if implementation is not None and implementation.runs_on(host):
                return implementation
        raise ImplementationUnavailable(
            f"no implementation among {list(candidates)!r} runs on {host.architecture}"
        )

    def ensure_cached(self, host, impl_id, requester_endpoint):
        """Generator: make ``impl_id`` present in ``host.cache``.

        Returns the simulated seconds spent downloading (0.0 on a cache
        hit).  ``requester_endpoint`` is the endpoint on the
        downloading side; chunk requests travel as real messages so
        bandwidth contention is modeled.
        """
        implementation = self.get(impl_id)
        if host.cache.lookup(impl_id) is not None:
            return 0.0
        sim = self._runtime.sim
        calibration = self._runtime.calibration
        started = sim.now
        # Protocol setup: bind the store, open the transfer, create the
        # local file.
        yield sim.timeout(calibration.download_setup_s)
        chunk_bytes = calibration.download_chunk_bytes
        remaining = implementation.size_bytes
        while True:
            request_bytes = min(chunk_bytes, remaining) if remaining else 0
            yield from requester_endpoint.request(
                self.ADDRESS,
                {"op": "chunk", "impl_id": impl_id, "bytes": request_bytes},
                size_bytes=64,
                timeout_s=30.0,
                max_attempts=3,
            )
            # Per-chunk processing on the receiving host: checksum,
            # decompress, write to local disk.
            yield host.cpu_work(calibration.download_chunk_process_s)
            remaining -= request_bytes
            if remaining <= 0:
                break
        host.cache.insert(impl_id, implementation.size_bytes)
        self.downloads_served += 1
        return sim.now - started

    def _handle_request(self, message):
        payload = message.payload
        if payload.get("op") != "chunk":
            raise ValueError(f"unknown impl-store op {payload.get('op')!r}")
        # The store reads the chunk from its disk before replying; the
        # reply's size charges the wire.
        implementation = self.get(payload["impl_id"])
        del implementation  # existence check only; content is simulated
        yield self._runtime.sim.timeout(self._runtime.calibration.disk_seek_s)
        return ("chunk-data", payload["bytes"])
