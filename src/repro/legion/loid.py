"""Legion object identifiers.

Every object in the system — user objects, class objects, ICOs, DCDO
Managers, service objects — is named by a :class:`LOID`: a globally
unique, location-independent identifier.  LOIDs carry a *domain*, a
*type name*, and an *instance number*, mirroring Legion's structured
identifiers while staying printable and hashable.
"""

import itertools
from dataclasses import dataclass

_instance_counters = {}


@dataclass(frozen=True, order=True)
class LOID:
    """A location-independent object identifier.

    Attributes
    ----------
    domain:
        Administrative domain string (one per runtime by default).
    type_name:
        The name of the object's type (its class object's name).
    instance:
        Instance number, unique within (domain, type_name).
    """

    domain: str
    type_name: str
    instance: int

    def __str__(self):
        return f"{self.domain}/{self.type_name}#{self.instance}"

    @property
    def is_class(self):
        """True for class-object LOIDs (instance 0 by convention)."""
        return self.instance == 0


def mint_loid(domain, type_name):
    """Create a fresh instance LOID for (domain, type_name).

    Instance numbers start at 1; 0 is reserved for the class object
    itself (see :func:`class_loid`).
    """
    key = (domain, type_name)
    if key not in _instance_counters:
        _instance_counters[key] = itertools.count(1)
    return LOID(domain, type_name, next(_instance_counters[key]))


def class_loid(domain, type_name):
    """The LOID of the class object for (domain, type_name)."""
    return LOID(domain, type_name, 0)
