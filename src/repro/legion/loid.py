"""Legion object identifiers.

Every object in the system — user objects, class objects, ICOs, DCDO
Managers, service objects — is named by a :class:`LOID`: a globally
unique, location-independent identifier.  LOIDs carry a *domain*, a
*type name*, and an *instance number*, mirroring Legion's structured
identifiers while staying printable and hashable.

LOIDs minted through :func:`mint_loid` / :func:`class_loid` are
*interned*: one canonical object per (domain, type_name, instance)
triple, so the dict lookups that dominate the ``core``/``net`` hot
paths hit CPython's identity fast path instead of comparing strings,
and ``a is b`` is a valid equality check for runtime-minted LOIDs.
Directly constructed LOIDs keep plain value semantics (they compare
and hash by fields); :func:`intern_loid` folds one into the canon.
"""

import itertools
from dataclasses import dataclass

_instance_counters = {}
_intern = {}


@dataclass(frozen=True, order=True)
class LOID:
    """A location-independent object identifier.

    Attributes
    ----------
    domain:
        Administrative domain string (one per runtime by default).
    type_name:
        The name of the object's type (its class object's name).
    instance:
        Instance number, unique within (domain, type_name).
    """

    domain: str
    type_name: str
    instance: int

    def __post_init__(self):
        # Frozen dataclass: stash the caches via object.__setattr__.
        # str() and hash() of LOIDs run inside every directory lookup
        # and lock-ordering sort, so both are computed exactly once.
        object.__setattr__(
            self, "_str", f"{self.domain}/{self.type_name}#{self.instance}"
        )
        object.__setattr__(
            self, "_hash", hash((self.domain, self.type_name, self.instance))
        )

    def __str__(self):
        return self._str

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        if self is other:
            return True
        if other.__class__ is LOID:
            return (
                self.instance == other.instance
                and self.type_name == other.type_name
                and self.domain == other.domain
            )
        return NotImplemented

    @property
    def is_class(self):
        """True for class-object LOIDs (instance 0 by convention)."""
        return self.instance == 0


def intern_loid(loid):
    """Return the canonical instance equal to ``loid``."""
    return _intern.setdefault((loid.domain, loid.type_name, loid.instance), loid)


def mint_loid(domain, type_name):
    """Create a fresh instance LOID for (domain, type_name).

    Instance numbers start at 1; 0 is reserved for the class object
    itself (see :func:`class_loid`).  The result is registered in the
    intern table, so it *is* the canonical object for its triple.
    """
    key = (domain, type_name)
    if key not in _instance_counters:
        _instance_counters[key] = itertools.count(1)
    loid = LOID(domain, type_name, next(_instance_counters[key]))
    _intern[(domain, type_name, loid.instance)] = loid
    return loid


def class_loid(domain, type_name):
    """The (interned) LOID of the class object for (domain, type_name)."""
    key = (domain, type_name, 0)
    loid = _intern.get(key)
    if loid is None:
        loid = _intern.setdefault(key, LOID(domain, type_name, 0))
    return loid
