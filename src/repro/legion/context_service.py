"""The context space as a network service.

Legion's name space is itself provided by objects; remote clients
resolve path names by calling a context object.  This module wraps the
runtime's :class:`~repro.legion.naming.ContextSpace` in an endpoint so
lookups and binds made by distant objects pay real round trips (the
local data structure remains available to the trusted runtime core).

The DCDO model leans on this namespace for components (§2.3):
registering a component binds its ICO under
``/components/<type>/<component-id>``, so any object can find and
incorporate a component knowing only its path name.
"""

from repro.legion.naming import ContextSpace


class ContextService:
    """Serves a :class:`ContextSpace` over the network.

    Operations (request payload ``{"op": ..., ...}``):

    - ``lookup``: path -> LOID (raises UnknownObject remotely);
    - ``bind``: path + loid -> True;
    - ``unbind``: path -> removed LOID;
    - ``list``: path -> sorted entry names.
    """

    ADDRESS = "service/context"

    def __init__(self, network, context_space=None):
        self.space = context_space if context_space is not None else ContextSpace()
        self.lookups_served = 0
        self.binds_served = 0
        from repro.net import Endpoint

        self._endpoint = Endpoint(
            network,
            self.ADDRESS,
            request_handler=self._handle_request,
        )

    def _handle_request(self, message):
        payload = message.payload
        op = payload.get("op")
        if op == "lookup":
            self.lookups_served += 1
            return (self.space.lookup(payload["path"]), 0)
        if op == "bind":
            self.binds_served += 1
            self.space.bind(payload["path"], payload["loid"])
            return (True, 0)
        if op == "unbind":
            return (self.space.unbind(payload["path"]), 0)
        if op == "list":
            return (self.space.list_context(payload.get("path", "/")), 0)
        raise ValueError(f"unknown context op {op!r}")
        yield  # pragma: no cover - uniform generator shape


def lookup_path(endpoint, path, timeout_s=5.0):
    """Generator: resolve ``path`` through the context service.

    For use by clients and objects (``yield from``); returns the LOID.
    """
    loid = yield from endpoint.request(
        ContextService.ADDRESS,
        {"op": "lookup", "path": path},
        size_bytes=len(path),
        timeout_s=timeout_s,
        max_attempts=2,
    )
    return loid


def bind_path(endpoint, path, loid, timeout_s=5.0):
    """Generator: bind ``path`` to ``loid`` through the context service."""
    result = yield from endpoint.request(
        ContextService.ADDRESS,
        {"op": "bind", "path": path, "loid": loid},
        size_bytes=len(path) + 64,
        timeout_s=timeout_s,
        max_attempts=2,
    )
    return result
