"""Class objects: per-type managers of normal Legion objects.

In Legion every object type has a *class object* responsible for
creating, activating, deactivating, and migrating its instances.  The
DCDO Manager (§2.4) is the DCDO model's extension of exactly this
role, so :class:`ClassObject` is written with hooks
(:meth:`_build_instance`, :meth:`_instance_created`) that
:class:`~repro.core.manager.DCDOManager` overrides.

The monolithic creation path charges the costs the paper's E3 numbers
come from: process spawn + per-function registration, with the binary
downloaded first if the host cache misses.
"""

from dataclasses import dataclass

from repro.legion.errors import ObjectDeactivated, UnknownObject
from repro.legion.loid import class_loid, mint_loid
from repro.legion.objects import LegionObject


@dataclass
class InstanceRecord:
    """What a class object knows about one of its instances."""

    loid: object
    obj: object
    host: object
    process: object
    active: bool
    version_tag: str


class ClassObject(LegionObject):
    """Manages all instances of one object type.

    Parameters
    ----------
    runtime:
        The owning runtime.
    type_name:
        The type this class object manages.
    host:
        Where the class object itself runs.
    implementations:
        Monolithic :class:`Implementation` binaries for this type, one
        per architecture (all sharing a version tag).
    instance_factory:
        ``factory(runtime, loid, host) -> LegionObject`` hook; defaults
        to a plain :class:`LegionObject`.
    """

    def __init__(
        self,
        runtime,
        type_name,
        host,
        implementations=(),
        instance_factory=None,
        loid=None,
    ):
        # ``loid`` overrides the canonical class LOID — shard managers
        # of one type need distinct identities under a shared type name.
        super().__init__(runtime, loid or class_loid(runtime.domain, type_name), host)
        self._type_name = type_name
        self._implementations = list(implementations)
        self._instance_factory = instance_factory or LegionObject
        self._instances = {}
        self._management_locks = {}
        self.instances_created = 0
        self._register_management_methods()

    def management_lock(self, loid):
        """Per-instance mutex serializing management operations.

        Concurrent migrations and evolutions of one instance would
        otherwise race (e.g. an evolution RPC chasing an incarnation
        that a migration is tearing down).  The locks are deliberately
        per class-object *incarnation*, not global: a deposed
        predecessor's stuck operations must not convoy the promoted
        manager's — conflicts across incarnations are resolved by term
        fencing at the instance, and :meth:`recover_instance` adopts an
        incarnation a racing rebuild already brought up.
        """
        from repro.sim import Semaphore

        lock = self._management_locks.get(loid)
        if lock is None:
            lock = self._management_locks[loid] = Semaphore(
                self.sim, permits=1, name=f"mgmt:{loid}"
            )
        return lock

    @property
    def type_name(self):
        """The managed type's name."""
        return self._type_name

    @property
    def implementations(self):
        """Current monolithic implementations (one per architecture)."""
        return list(self._implementations)

    @property
    def current_version_tag(self):
        """Version tag of the current implementation set."""
        if not self._implementations:
            return None
        return self._implementations[0].version_tag

    def set_implementations(self, implementations):
        """Install a new implementation set (a new type version)."""
        implementations = list(implementations)
        if not implementations:
            raise ValueError("a class needs at least one implementation")
        self._implementations = implementations

    # ------------------------------------------------------------------
    # Instance table
    # ------------------------------------------------------------------

    def record(self, loid):
        """Return the :class:`InstanceRecord` for ``loid``.

        Raises :class:`UnknownObject` if this class does not manage it.
        """
        record = self._instances.get(loid)
        if record is None:
            raise UnknownObject(f"{self._type_name} class manages no instance {loid}")
        return record

    def instance_loids(self):
        """LOIDs of all managed instances, in creation order."""
        return list(self._instances)

    def active_instances(self):
        """Records of currently active instances."""
        return [record for record in self._instances.values() if record.active]

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    def _pick_host(self, host_name):
        if host_name is not None:
            return self._runtime.host(host_name)
        # Simple placement: fewest processes first, stable by name.
        hosts = sorted(
            self._runtime.hosts.values(),
            key=lambda host: (len(host.processes), host.name),
        )
        return hosts[0]

    def _implementation_for(self, host):
        """The monolithic implementation matching ``host``."""
        return self._runtime.implementation_store.find_for_host(
            [implementation.impl_id for implementation in self._implementations], host
        )

    def _build_instance(self, loid, host):
        """Generator hook: construct and populate the instance object.

        The monolithic path downloads the binary if uncached, then
        registers every member function at the calibrated per-function
        cost.  Returns (obj, version_tag).
        """
        implementation = self._implementation_for(host)
        yield from self._runtime.implementation_store.ensure_cached(
            host, implementation.impl_id, self._endpoint
        )
        obj = self._instance_factory(self._runtime, loid, host)
        for name, body in implementation.functions.items():
            obj.register_method(name, body)
        yield host.cpu_work(
            len(implementation.functions) * self.calibration.function_register_s
        )
        return obj, implementation.version_tag

    def _instance_created(self, record):
        """Hook: called after an instance is created and active."""

    def create_instance(self, host_name=None, state=None, state_bytes=0, loid=None):
        """Generator: create and activate a new instance.

        Returns the new instance's LOID.  Cost: (optional) binary
        download + process spawn + member-function registration +
        binding registration.  ``loid`` lets a routing layer pre-mint
        the identity (sharded planes hash the LOID to pick the owning
        shard before the create lands anywhere).
        """
        host = self._pick_host(host_name)
        if loid is None:
            loid = mint_loid(self._runtime.domain, self._type_name)
        process = yield from host.spawn_process(loid)
        obj, version_tag = yield from self._build_instance(loid, host)
        if state is not None:
            obj.restore_state(state)
        obj.state_bytes = max(obj.state_bytes, state_bytes)
        if not obj.is_active:
            yield from obj.activate()
        record = InstanceRecord(
            loid=loid,
            obj=obj,
            host=host,
            process=process,
            active=True,
            version_tag=version_tag,
        )
        self._instances[loid] = record
        self._runtime.attach_object(obj)
        self.instances_created += 1
        self._instance_created(record)
        self._runtime.trace(
            "instance-created", loid, host=host.name, version=version_tag
        )
        return loid

    # ------------------------------------------------------------------
    # Deactivation / activation / migration
    # ------------------------------------------------------------------

    def deactivate_instance(self, loid):
        """Generator: stop an instance, capturing state to its vault."""
        record = self.record(loid)
        if not record.active:
            return
        state, size_bytes = record.obj.capture_state()
        calibration = self.calibration
        yield self.sim.timeout(
            calibration.state_fixed_s + size_bytes / calibration.state_capture_bps
        )
        vault = self._runtime.vault_of(record.host)
        yield from vault.store(loid, state, size_bytes)
        record.obj.deactivate()
        record.process.kill()
        record.active = False

    def activate_instance(self, loid, host_name=None):
        """Generator: reactivate a deactivated instance.

        If ``host_name`` names a different host, the OPR is transferred
        there first (this is the second half of migration).  Returns
        the new binding.
        """
        record = self.record(loid)
        if record.active:
            raise ValueError(f"instance {loid} is already active")
        source_vault = self._runtime.vault_of(record.host)
        target_host = self._runtime.host(host_name) if host_name else record.host
        opr = yield from source_vault.load(loid)
        if target_host is not record.host:
            # Ship the OPR across the network to the target's vault.
            yield from self._transfer_opr(record.host, target_host, opr)
            source_vault.discard(loid)
            record.host = target_host
        process = yield from target_host.spawn_process(loid)
        obj, version_tag = yield from self._build_instance(loid, target_host)
        obj.restore_state(opr.state)
        obj.state_bytes = opr.size_bytes
        calibration = self.calibration
        yield self.sim.timeout(
            calibration.state_fixed_s + opr.size_bytes / calibration.state_restore_bps
        )
        binding = yield from obj.activate()
        record.obj = obj
        record.process = process
        record.active = True
        record.version_tag = version_tag
        self._runtime.attach_object(obj)
        return binding

    def recover_instance(self, loid, host_name=None):
        """Generator: bring back an instance lost to a host crash.

        Unlike :meth:`activate_instance`, this tolerates a missing OPR:
        a crash (as opposed to a clean deactivation) captured nothing,
        so the instance rebuilds from its implementation at its
        recorded version and loses volatile state — fail-stop
        semantics.  If the vault does hold an OPR (a deactivation or
        checkpoint preceded the crash), state is restored from it.

        Returns the new binding.
        """
        lock = self.management_lock(loid)
        yield lock.acquire()
        try:
            record = self.record(loid)
            if record.active:
                raise ValueError(f"instance {loid} is already active")
            live = self._runtime.live_object(loid)
            if live is not None and live.is_active and live.host.is_up:
                # Another class-object incarnation already rebuilt this
                # instance (recovery racing a manager promotion): adopt
                # the live incarnation instead of rebuilding over it.
                record.obj = live
                record.host = live.host
                record.process = live.host.process_for(loid)
                record.active = True
                version = getattr(live, "version", None)
                record.version_tag = str(version) if version else None
                return live._binding
            target_host = (
                self._runtime.host(host_name) if host_name else record.host
            )
            vault = self._runtime.vault_of(record.host)
            opr = None
            if vault.holds(loid):
                opr = yield from vault.load(loid)
                if target_host is not record.host:
                    yield from self._transfer_opr(record.host, target_host, opr)
                    vault.discard(loid)
            record.host = target_host
            process = yield from target_host.spawn_process(loid)
            obj, version_tag = yield from self._build_instance(loid, target_host)
            if opr is not None:
                obj.restore_state(opr.state)
                obj.state_bytes = opr.size_bytes
                calibration = self.calibration
                yield self.sim.timeout(
                    calibration.state_fixed_s
                    + opr.size_bytes / calibration.state_restore_bps
                )
            binding = yield from obj.activate()
            record.obj = obj
            record.process = process
            record.active = True
            record.version_tag = version_tag
            self._runtime.attach_object(obj)
        finally:
            lock.release()
        self._runtime.network.count("instance.recoveries")
        self._runtime.trace(
            "instance-recovered",
            loid,
            host=record.host.name,
            from_opr=opr is not None,
        )
        return binding

    def _transfer_opr(self, source_host, target_host, opr):
        """Generator: move an OPR between vaults over the network."""
        yield self.sim.timeout(self._runtime.network.transfer_time(opr.size_bytes))
        target_vault = self._runtime.vault_of(target_host)
        yield from target_vault.store(opr.loid, opr.state, opr.size_bytes)

    def migrate_instance(self, loid, target_host_name):
        """Generator: move an instance to another host.

        Deactivate (capture state), transfer the OPR, re-create the
        process on the target, restore, re-bind.  Existing client
        bindings become stale.
        """
        lock = self.management_lock(loid)
        yield lock.acquire()
        try:
            source_host = self.record(loid).host.name
            yield from self.deactivate_instance(loid)
            binding = yield from self.activate_instance(loid, host_name=target_host_name)
        finally:
            lock.release()
        if self._invoker is not None:
            # The class object minted this binding itself: seed its own
            # invoker cache so its next management RPC to the moved
            # instance doesn't pay the stale-binding timeout walk
            # against the old address.  Other clients still discover
            # the move the hard way (§4's stale-binding cost).
            self._invoker.binding_cache.put(binding)
        record = self.record(loid)
        self._notify_migrated(record)
        self._runtime.trace(
            "instance-migrated",
            loid,
            source=source_host,
            target=record.host.name,
        )
        return binding

    def _notify_migrated(self, record):
        """Hook: called after an instance migrated (DCDO policies use it)."""

    def delete_instance(self, loid):
        """Generator: destroy an instance and its OPR."""
        record = self.record(loid)
        if record.active:
            record.obj.deactivate()
            record.process.kill()
        self._runtime.vault_of(record.host).discard(loid)
        self._runtime.binding_agent.unregister(loid)
        del self._instances[loid]
        return None
        yield  # pragma: no cover - uniform generator shape

    # ------------------------------------------------------------------
    # Remote management interface
    # ------------------------------------------------------------------

    def _register_management_methods(self):
        self.register_method("createInstance", self._m_create_instance)
        self.register_method("deactivateInstance", self._m_deactivate_instance)
        self.register_method("activateInstance", self._m_activate_instance)
        self.register_method("migrateInstance", self._m_migrate_instance)
        self.register_method("deleteInstance", self._m_delete_instance)
        self.register_method("getInstances", self._m_get_instances)
        self.register_method("getCurrentVersionTag", self._m_get_version_tag)

    def _m_create_instance(self, ctx, host_name=None):
        loid = yield from self.create_instance(host_name=host_name)
        return loid

    def _m_deactivate_instance(self, ctx, loid):
        yield from self.deactivate_instance(loid)
        return True

    def _m_activate_instance(self, ctx, loid, host_name=None):
        binding = yield from self.activate_instance(loid, host_name=host_name)
        return binding

    def _m_migrate_instance(self, ctx, loid, target_host_name):
        binding = yield from self.migrate_instance(loid, target_host_name)
        return binding

    def _m_delete_instance(self, ctx, loid):
        yield from self.delete_instance(loid)
        return True

    def _m_get_instances(self, ctx):
        return [
            (record.loid, record.active, record.version_tag)
            for record in self._instances.values()
        ]
        yield  # pragma: no cover - uniform generator shape

    def _m_get_version_tag(self, ctx):
        return self.current_version_tag
        yield  # pragma: no cover - uniform generator shape

    def require_active(self, loid):
        """Return the active instance object, or raise.

        Raises :class:`ObjectDeactivated` when the instance exists but
        is not running anywhere.
        """
        record = self.record(loid)
        if not record.active:
            raise ObjectDeactivated(f"instance {loid} is deactivated")
        return record.obj
