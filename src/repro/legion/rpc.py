"""The Legion method-invocation protocol.

A :class:`MethodInvoker` turns ``invoke(loid, method, args)`` into
request/reply traffic, resolving LOIDs through a binding cache backed
by the binding agent.  Its retry behaviour is where the paper's
stale-binding cost lives: after an object moves, the invoker walks a
timeout schedule against the dead address (cumulatively ~30 s by
default calibration) before concluding the binding is stale, re-
resolving, and retrying at the fresh address.
"""

from dataclasses import dataclass

from repro.legion.binding import BindingAgent
from repro.legion.errors import MethodNotFound, ObjectUnreachable, UnknownObject
from repro.net import (
    CircuitOpen,
    CircuitState,
    RemoteError,
    RequestTimeout,
    run_windowed,
)


class ReplyEnvelope:
    """A reply payload plus the server's configuration epoch.

    DCDOs wrap every external reply in one of these so clients learn —
    for free, on traffic they were sending anyway — whether the object's
    configuration has changed since they last looked.  The invoker
    unwraps the envelope transparently and records the epoch per LOID;
    plain objects keep replying with bare payloads.
    """

    __slots__ = ("value", "epoch")

    def __init__(self, value, epoch):
        self.value = value
        self.epoch = epoch

    def __repr__(self):
        return f"<ReplyEnvelope epoch={self.epoch}>"


@dataclass
class InvokeStats:
    """Per-invoker counters used by tests and benchmarks."""

    invocations: int = 0
    retries: int = 0
    rebinds: int = 0
    #: Invocations that found their target's binding already cached.
    binding_hits: int = 0
    #: Invocations that had to ask the binding agent (resolve miss).
    binding_misses: int = 0
    #: Replies that carried a piggybacked configuration epoch.
    epoch_observations: int = 0

    def reset(self):
        """Zero all counters."""
        self.invocations = 0
        self.retries = 0
        self.rebinds = 0
        self.binding_hits = 0
        self.binding_misses = 0
        self.epoch_observations = 0


class MethodInvoker:
    """Client-side machinery for remote method invocation.

    Parameters
    ----------
    endpoint:
        The transport endpoint invocations are sent from.
    binding_cache:
        This client's binding cache.
    calibration:
        Cost model (timeout schedule, marshalling cost, payload size).
    rng:
        Optional RNG for timeout jitter.
    retry_policy:
        Optional :class:`~repro.net.retry.RetryPolicy`; when set,
        attempts against one address are spaced with the policy's
        backoff instead of being fired back-to-back.  None (the
        default) preserves the calibrated stale-binding timings.
    """

    def __init__(self, endpoint, binding_cache, calibration, rng=None, retry_policy=None):
        self._endpoint = endpoint
        self._cache = binding_cache
        self._calibration = calibration
        self._rng = rng
        self.retry_policy = retry_policy
        self.stats = InvokeStats()
        self._observed_epochs = {}
        # Gray-failure adaptation, both off by default so the
        # calibrated §4 timings are untouched unless a runtime opts in.
        self._adaptive_timeouts = False
        self._estimator_kwargs = {}
        self._estimators = {}
        self._hedging = False
        self._hedge_delay_s = None
        #: Optional zero-arg callable returning the current
        #: :class:`~repro.net.ManagerTerm` to stamp on outgoing
        #: invocations (used by managers to fence their traffic).
        #: None leaves invocations unfenced.
        self.term_source = None

    def observed_epoch(self, loid):
        """The latest configuration epoch piggybacked by ``loid``.

        None until a reply from that object has been seen.  The latest
        observation wins (not the maximum): a crash-recovered object
        restarts its epoch counter, and regressing here is what lets
        lease caches notice the new incarnation and invalidate.
        """
        return self._observed_epochs.get(loid)

    # ------------------------------------------------------------------
    # Gray-failure adaptation (opt-in)
    # ------------------------------------------------------------------

    def enable_adaptive_timeouts(self, **estimator_kwargs):
        """Derive per-attempt timeouts from observed per-peer RTTs.

        Every successful attempt feeds a per-peer-host
        :class:`~repro.net.RttEstimator`; once a peer's estimator has
        samples, invocations without an explicit ``timeout_schedule``
        walk an RTO-derived schedule (same number of attempts as the
        calibrated one) instead of the fixed calibrated values.
        Explicit caller schedules always win — callers passing generous
        schedules (e.g. long-running management calls) know better.
        """
        self._adaptive_timeouts = True
        self._estimator_kwargs = estimator_kwargs
        return self

    def enable_hedging(self, delay_s=None):
        """Allow hedged (backup) requests on opted-in invocations.

        Hedging only fires on calls that pass ``hedge=True`` — marking
        the operation idempotent, since the backup may execute twice.
        ``delay_s`` fixes the hedge delay; None derives it from the
        peer's RTT estimator (around the tail of observed round trips),
        falling back to half the first attempt timeout while cold.
        """
        self._hedging = True
        self._hedge_delay_s = delay_s
        return self

    @property
    def hedging_enabled(self):
        """True once :meth:`enable_hedging` has been called."""
        return self._hedging

    def estimator_for(self, address):
        """Get-or-create the RTT estimator for ``address``'s host."""
        from repro.net import RttEstimator

        host = address.split("/", 1)[0]
        estimator = self._estimators.get(host)
        if estimator is None:
            estimator = self._estimators[host] = RttEstimator(
                **self._estimator_kwargs
            )
        return estimator

    @property
    def endpoint(self):
        """The transport endpoint invocations are sent from."""
        return self._endpoint

    @property
    def binding_cache(self):
        """This client's binding cache."""
        return self._cache

    def _resolve_remote(self, loid):
        """Generator: ask the binding agent for a fresh binding."""
        try:
            binding = yield from self._endpoint.request(
                BindingAgent.ADDRESS,
                {"op": "resolve", "loid": loid},
                size_bytes=128,
                timeout_s=2.0,
                max_attempts=2,
            )
        except RemoteError as error:
            if isinstance(error.cause, UnknownObject):
                raise error.cause
            raise
        self._cache.put(binding)
        return binding

    def _timeout_schedule(self, override=None, estimator=None):
        if override:
            schedule = override
        elif (
            estimator is not None
            and self._adaptive_timeouts
            and estimator.samples > 0
        ):
            # Adaptive mode: the same number of attempts as the
            # calibrated walk, but each timeout sized to this peer's
            # observed RTT distribution instead of a worst-case fixed
            # value — a healthy peer's stale binding is discovered in
            # milliseconds, not the calibrated ~30 s.
            schedule = estimator.timeout_schedule(
                len(self._calibration.rebind_timeout_schedule_s)
            )
        else:
            schedule = self._calibration.rebind_timeout_schedule_s
        if self._rng is None:
            return list(schedule)
        return [self._rng.jitter("rpc-timeouts", t, 0.15) for t in schedule]

    def invoke(
        self,
        loid,
        method,
        args=(),
        payload_bytes=None,
        timeout_schedule=None,
        retry_policy=None,
        breaker=None,
        term=None,
        hedge=False,
    ):
        """Generator: invoke ``method`` on the object named ``loid``.

        Returns the method's result.  Raises:

        - :class:`MethodNotFound` — the target has no such (enabled,
          exported) function; for DCDOs this is the §3.1 disappearing
          exported function problem reaching the client.
        - :class:`ObjectUnreachable` — the object could not be reached
          even after rebinding.
        - :class:`~repro.net.CircuitOpen` — a supplied ``breaker`` is
          open; nothing was sent.
        - any application exception the remote method raised.

        ``timeout_schedule`` overrides the calibrated per-attempt reply
        timeouts; callers invoking operations known to run long (e.g.
        management-plane evolution calls) pass a generous schedule so a
        slow server is not mistaken for a dead one and re-executed.
        ``retry_policy`` overrides the invoker-wide policy for backoff
        spacing between attempts (see the constructor).

        ``breaker`` is an optional :class:`~repro.net.CircuitBreaker`
        guarding the target.  The breaker wraps the *whole* invocation
        — the timeout-schedule walk plus the stale-binding rebind round
        — so once a target is known-dead, callers fail in microseconds
        instead of re-walking ~minutes of timeouts; reachability errors
        feed the breaker, application errors do not (the target is
        alive and answering).  A half-open probe drops the cached
        binding and re-resolves before sending: the binding predates
        the outage, and a target that recovered at a new address would
        otherwise cost the probe a full stale walk.

        ``term`` is an optional fencing token stamped on every attempt;
        when None, :attr:`term_source` (if set) supplies one.  A target
        that has already seen a newer term for the same scope raises
        :class:`~repro.legion.errors.StaleManagerTerm`, which surfaces
        here unchanged — the cue for a deposed sender to stand down.

        ``hedge=True`` marks the operation idempotent and eligible for
        a backup request against a slow peer; it only takes effect once
        :meth:`enable_hedging` has armed the invoker.
        """
        if term is None and self.term_source is not None:
            term = self.term_source()
        if breaker is not None:
            probing = breaker.state is not CircuitState.CLOSED
            if not breaker.allow():
                self._endpoint.network.count("breaker.short_circuits")
                raise CircuitOpen(str(loid), breaker.retry_at)
            if probing:
                # This attempt is the half-open probe: the target was
                # known-dead, so any cached binding predates the outage.
                # Rebind before probing — a target that recovered at a
                # new address (host restart, new incarnation) then
                # answers after one resolve round trip instead of after
                # a full stale-binding timeout walk.
                self._cache.invalidate(loid)
                self._endpoint.network.count("breaker.probe_rebinds")
            try:
                result = yield from self._invoke_inner(
                    loid, method, args, payload_bytes, timeout_schedule,
                    retry_policy, term, hedge,
                )
            except (RequestTimeout, ObjectUnreachable, UnknownObject):
                breaker.record_failure()
                raise
            breaker.record_success()
            return result
        result = yield from self._invoke_inner(
            loid, method, args, payload_bytes, timeout_schedule, retry_policy,
            term, hedge,
        )
        return result

    def _invoke_inner(
        self,
        loid,
        method,
        args=(),
        payload_bytes=None,
        timeout_schedule=None,
        retry_policy=None,
        term=None,
        hedge=False,
    ):
        """Generator: the breaker-free invocation body (see invoke)."""
        retry_policy = retry_policy or self.retry_policy
        payload_bytes = (
            self._calibration.method_message_bytes if payload_bytes is None else payload_bytes
        )
        started = self._endpoint.sim.now
        self.stats.invocations += 1

        # Client-side marshalling / stub dispatch cost.
        yield self._endpoint.sim.timeout(self._calibration.method_dispatch_s)

        binding = self._cache.get(loid)
        if binding is None:
            self.stats.binding_misses += 1
            binding = yield from self._resolve_remote(loid)
        else:
            self.stats.binding_hits += 1

        request = {"op": "invoke", "method": method, "args": tuple(args)}
        for stale_round in range(2):
            try:
                result = yield from self._attempt_at(
                    binding, request, payload_bytes, timeout_schedule,
                    retry_policy, term, hedge,
                )
                return self._unwrap_envelope(loid, result)
            except RequestTimeout:
                elapsed = self._endpoint.sim.now - started
                if stale_round == 1:
                    raise ObjectUnreachable(loid, elapsed)
                # The binding looks stale: every attempt in the schedule
                # timed out.  Record the discovery and rebind.
                self._cache.record_stale_discovery(elapsed)
                self._cache.invalidate(loid)
                self.stats.rebinds += 1
                fresh = yield from self._resolve_remote(loid)
                if fresh.address == binding.address and fresh.incarnation == binding.incarnation:
                    raise ObjectUnreachable(loid, self._endpoint.sim.now - started)
                binding = fresh

    def _attempt_at(
        self,
        binding,
        request,
        payload_bytes,
        timeout_schedule=None,
        retry_policy=None,
        term=None,
        hedge=False,
    ):
        """Generator: walk the timeout schedule against one address."""
        estimator = None
        if self._adaptive_timeouts or self._hedging:
            estimator = self.estimator_for(binding.address)
        schedule = self._timeout_schedule(timeout_schedule, estimator)
        hedge_delay_s = None
        if hedge and self._hedging:
            if self._hedge_delay_s is not None:
                hedge_delay_s = self._hedge_delay_s
            elif estimator is not None and estimator.samples > 0:
                hedge_delay_s = estimator.hedge_delay_s()
            else:
                hedge_delay_s = schedule[0] / 2.0
        last_error = None
        sim = self._endpoint.sim
        for index, timeout_s in enumerate(schedule):
            if index > 0:
                self.stats.retries += 1
                if retry_policy is not None:
                    backoff = retry_policy.backoff_s(index)
                    if backoff > 0:
                        self._endpoint.network.count("retry.backoff_waits")
                        yield sim.timeout(backoff)
            attempt_started = sim.now
            try:
                reply = yield from self._endpoint.request(
                    binding.address,
                    request,
                    size_bytes=payload_bytes,
                    timeout_s=timeout_s,
                    max_attempts=1,
                    term=term,
                    hedge_delay_s=hedge_delay_s,
                )
            except RequestTimeout as timeout_error:
                last_error = timeout_error
                continue
            except RemoteError as error:
                if estimator is not None:
                    # The peer answered (with an error): a valid RTT.
                    estimator.observe(sim.now - attempt_started)
                raise self._unwrap(error)
            if estimator is not None:
                estimator.observe(sim.now - attempt_started)
            return reply
        raise last_error

    def _unwrap_envelope(self, loid, reply):
        """Peel a piggybacked epoch off a reply, recording it per LOID."""
        if isinstance(reply, ReplyEnvelope):
            self._observed_epochs[loid] = reply.epoch
            self.stats.epoch_observations += 1
            return reply.value
        return reply

    def invoke_many(
        self,
        loids,
        method,
        args=(),
        window=8,
        payload_bytes=None,
        timeout_schedule=None,
        retry_policy=None,
    ):
        """Generator: invoke ``method`` on many objects, windowed.

        The invoker-level counterpart of the endpoint's ``broadcall``:
        at most ``window`` invocations are in flight at once, each freed
        slot immediately starting the next.  Returns an ordered mapping
        ``loid -> (ok, value-or-exception)``.
        """
        loids = list(loids)
        thunks = [
            lambda l=loid: self.invoke(
                l,
                method,
                args,
                payload_bytes=payload_bytes,
                timeout_schedule=timeout_schedule,
                retry_policy=retry_policy,
            )
            for loid in loids
        ]
        outcomes = yield from run_windowed(self._endpoint.sim, thunks, window)
        return dict(zip(loids, outcomes))

    def invoke_each(
        self,
        calls,
        window=8,
        payload_bytes=None,
        timeout_schedule=None,
        retry_policy=None,
        breaker=None,
        term=None,
    ):
        """Generator: heterogeneous windowed invocations.

        Unlike :meth:`invoke_many` (one method fanned to many objects),
        ``calls`` is a sequence of ``(loid, method, args)`` triples —
        each target gets its *own* arguments.  This is the shape a host
        relay needs to apply per-instance configuration diffs to its
        colocated DCDOs.  Returns ``(ok, value-or-exception)`` pairs in
        input order, at most ``window`` in flight at once.
        """
        calls = list(calls)
        thunks = [
            lambda c=call: self.invoke(
                c[0],
                c[1],
                c[2],
                payload_bytes=payload_bytes,
                timeout_schedule=timeout_schedule,
                retry_policy=retry_policy,
                breaker=breaker,
                term=term,
            )
            for call in calls
        ]
        outcomes = yield from run_windowed(self._endpoint.sim, thunks, window)
        return outcomes

    @staticmethod
    def _unwrap(error):
        """Surface application/Legion errors thrown by the remote side."""
        cause = error.cause
        if isinstance(cause, (MethodNotFound, UnknownObject)):
            return cause
        if isinstance(cause, Exception) and not isinstance(cause, RemoteError):
            return cause
        return error
