"""The Legion method-invocation protocol.

A :class:`MethodInvoker` turns ``invoke(loid, method, args)`` into
request/reply traffic, resolving LOIDs through a binding cache backed
by the binding agent.  Its retry behaviour is where the paper's
stale-binding cost lives: after an object moves, the invoker walks a
timeout schedule against the dead address (cumulatively ~30 s by
default calibration) before concluding the binding is stale, re-
resolving, and retrying at the fresh address.
"""

from dataclasses import dataclass

from repro.legion.binding import BindingAgent
from repro.legion.errors import MethodNotFound, ObjectUnreachable, UnknownObject
from repro.net import RemoteError, RequestTimeout


@dataclass
class InvokeStats:
    """Per-invoker counters used by tests and benchmarks."""

    invocations: int = 0
    retries: int = 0
    rebinds: int = 0

    def reset(self):
        """Zero all counters."""
        self.invocations = 0
        self.retries = 0
        self.rebinds = 0


class MethodInvoker:
    """Client-side machinery for remote method invocation.

    Parameters
    ----------
    endpoint:
        The transport endpoint invocations are sent from.
    binding_cache:
        This client's binding cache.
    calibration:
        Cost model (timeout schedule, marshalling cost, payload size).
    rng:
        Optional RNG for timeout jitter.
    retry_policy:
        Optional :class:`~repro.net.retry.RetryPolicy`; when set,
        attempts against one address are spaced with the policy's
        backoff instead of being fired back-to-back.  None (the
        default) preserves the calibrated stale-binding timings.
    """

    def __init__(self, endpoint, binding_cache, calibration, rng=None, retry_policy=None):
        self._endpoint = endpoint
        self._cache = binding_cache
        self._calibration = calibration
        self._rng = rng
        self.retry_policy = retry_policy
        self.stats = InvokeStats()

    @property
    def endpoint(self):
        """The transport endpoint invocations are sent from."""
        return self._endpoint

    @property
    def binding_cache(self):
        """This client's binding cache."""
        return self._cache

    def _resolve_remote(self, loid):
        """Generator: ask the binding agent for a fresh binding."""
        try:
            binding = yield from self._endpoint.request(
                BindingAgent.ADDRESS,
                {"op": "resolve", "loid": loid},
                size_bytes=128,
                timeout_s=2.0,
                max_attempts=2,
            )
        except RemoteError as error:
            if isinstance(error.cause, UnknownObject):
                raise error.cause
            raise
        self._cache.put(binding)
        return binding

    def _timeout_schedule(self, override=None):
        schedule = override or self._calibration.rebind_timeout_schedule_s
        if self._rng is None:
            return list(schedule)
        return [self._rng.jitter("rpc-timeouts", t, 0.15) for t in schedule]

    def invoke(
        self,
        loid,
        method,
        args=(),
        payload_bytes=None,
        timeout_schedule=None,
        retry_policy=None,
    ):
        """Generator: invoke ``method`` on the object named ``loid``.

        Returns the method's result.  Raises:

        - :class:`MethodNotFound` — the target has no such (enabled,
          exported) function; for DCDOs this is the §3.1 disappearing
          exported function problem reaching the client.
        - :class:`ObjectUnreachable` — the object could not be reached
          even after rebinding.
        - any application exception the remote method raised.

        ``timeout_schedule`` overrides the calibrated per-attempt reply
        timeouts; callers invoking operations known to run long (e.g.
        management-plane evolution calls) pass a generous schedule so a
        slow server is not mistaken for a dead one and re-executed.
        ``retry_policy`` overrides the invoker-wide policy for backoff
        spacing between attempts (see the constructor).
        """
        retry_policy = retry_policy or self.retry_policy
        payload_bytes = (
            self._calibration.method_message_bytes if payload_bytes is None else payload_bytes
        )
        started = self._endpoint.sim.now
        self.stats.invocations += 1

        # Client-side marshalling / stub dispatch cost.
        yield self._endpoint.sim.timeout(self._calibration.method_dispatch_s)

        binding = self._cache.get(loid)
        if binding is None:
            binding = yield from self._resolve_remote(loid)

        request = {"op": "invoke", "method": method, "args": tuple(args)}
        for stale_round in range(2):
            try:
                result = yield from self._attempt_at(
                    binding, request, payload_bytes, timeout_schedule, retry_policy
                )
                return result
            except RequestTimeout:
                elapsed = self._endpoint.sim.now - started
                if stale_round == 1:
                    raise ObjectUnreachable(loid, elapsed)
                # The binding looks stale: every attempt in the schedule
                # timed out.  Record the discovery and rebind.
                self._cache.record_stale_discovery(elapsed)
                self._cache.invalidate(loid)
                self.stats.rebinds += 1
                fresh = yield from self._resolve_remote(loid)
                if fresh.address == binding.address and fresh.incarnation == binding.incarnation:
                    raise ObjectUnreachable(loid, self._endpoint.sim.now - started)
                binding = fresh

    def _attempt_at(
        self, binding, request, payload_bytes, timeout_schedule=None, retry_policy=None
    ):
        """Generator: walk the timeout schedule against one address."""
        schedule = self._timeout_schedule(timeout_schedule)
        last_error = None
        for index, timeout_s in enumerate(schedule):
            if index > 0:
                self.stats.retries += 1
                if retry_policy is not None:
                    backoff = retry_policy.backoff_s(index)
                    if backoff > 0:
                        self._endpoint.network.count("retry.backoff_waits")
                        yield self._endpoint.sim.timeout(backoff)
            try:
                reply = yield from self._endpoint.request(
                    binding.address,
                    request,
                    size_bytes=payload_bytes,
                    timeout_s=timeout_s,
                    max_attempts=1,
                )
            except RequestTimeout as timeout_error:
                last_error = timeout_error
                continue
            except RemoteError as error:
                raise self._unwrap(error)
            return reply
        raise last_error

    @staticmethod
    def _unwrap(error):
        """Surface application/Legion errors thrown by the remote side."""
        cause = error.cause
        if isinstance(cause, (MethodNotFound, UnknownObject)):
            return cause
        if isinstance(cause, Exception) and not isinstance(cause, RemoteError):
            return cause
        return error
