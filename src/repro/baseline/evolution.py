"""The baseline evolution pipeline, with per-phase accounting.

Evolving a normal Legion object to a new implementation version walks
the full §4 pipeline; :class:`BaselineEvolution` instruments each phase
so experiment E7 can report the breakdown next to the DCDO numbers.
The *client-visible* disruption additionally includes stale-binding
discovery (~25-35 s), measured separately because it is paid by each
client rather than by the evolving object.
"""

from dataclasses import dataclass, field


@dataclass
class EvolutionReport:
    """Per-phase timings (simulated seconds) for one baseline evolution."""

    capture_s: float = 0.0
    download_s: float = 0.0
    restart_s: float = 0.0
    total_s: float = 0.0
    downloaded_bytes: int = 0
    phases: dict = field(default_factory=dict)

    def as_rows(self):
        """(phase, seconds) rows for table printers."""
        return [
            ("state capture", self.capture_s),
            ("executable download", self.download_s),
            ("process re-creation + state restore + rebind", self.restart_s),
            ("total (object-side)", self.total_s),
        ]


class BaselineEvolution:
    """Drives monolithic-object version replacement.

    Parameters
    ----------
    runtime:
        The Legion runtime.
    klass:
        The class object whose instances evolve.
    """

    def __init__(self, runtime, klass):
        self._runtime = runtime
        self._klass = klass

    def publish_version(self, implementations):
        """Publish a new implementation set and make it the class's
        current version (new creations and re-activations use it)."""
        for implementation in implementations:
            self._runtime.implementation_store.publish(implementation)
        self._klass.set_implementations(implementations)

    def evolve_instance(self, loid):
        """Generator: evolve one instance to the class's current
        implementations; returns an :class:`EvolutionReport`.

        The pipeline: deactivate (capture state to the vault), download
        the new executable to the instance's host (unless cached),
        re-create the process, restore state, re-register the binding.
        Existing clients' bindings go stale — their discovery cost is
        measured by the caller, per client.
        """
        sim = self._runtime.sim
        record = self._klass.record(loid)
        host = record.host
        report = EvolutionReport()
        started = sim.now

        # Phase 1: deactivate + capture state into the vault.
        yield from self._klass.deactivate_instance(loid)
        report.capture_s = sim.now - started

        # Phase 2: download the new executable (explicitly, so the cost
        # is attributed; activation would otherwise fold it in).
        implementation = self._klass._implementation_for(host)
        download_started = sim.now
        endpoint = self._klass._endpoint
        yield from self._runtime.implementation_store.ensure_cached(
            host, implementation.impl_id, endpoint
        )
        report.download_s = sim.now - download_started
        report.downloaded_bytes = (
            implementation.size_bytes if report.download_s > 0 else 0
        )

        # Phase 3: new process, method table, state restore, binding.
        restart_started = sim.now
        yield from self._klass.activate_instance(loid)
        report.restart_s = sim.now - restart_started

        report.total_s = sim.now - started
        report.phases = {
            "capture": report.capture_s,
            "download": report.download_s,
            "restart": report.restart_s,
        }
        return report

    def measure_client_disruption(self, loid, client, method="get", args=()):
        """Generator: time until ``client``'s next call succeeds.

        Assumes the client holds a (now stale) binding; the measured
        time is dominated by stale-binding discovery (§4: 25-35 s).
        """
        sim = self._runtime.sim
        started = sim.now
        yield from client.invoke(loid, method, *args)
        return sim.now - started
