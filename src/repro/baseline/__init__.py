"""Normal Legion objects: the paper's evolution baseline.

A normal Legion object "is defined by a static monolithic executable"
(§2); changing its behaviour means replacing that executable, which
costs (§4): "capturing the state of the object, transferring the state
to a new machine (if necessary), downloading the new executable that
represents the next 'version' of the object, creating a new process
for the object, reading the state information into the new process,
and getting clients to know of the new physical address for the
object".

This package implements that pipeline with per-phase accounting so E7
can put the baseline and the DCDO mechanism side by side.
"""

from repro.baseline.evolution import BaselineEvolution, EvolutionReport
from repro.baseline.monolithic import (
    MODERATE_IMPL_BYTES,
    SMALL_IMPL_BYTES,
    make_monolithic_implementation,
)

__all__ = [
    "BaselineEvolution",
    "EvolutionReport",
    "MODERATE_IMPL_BYTES",
    "SMALL_IMPL_BYTES",
    "make_monolithic_implementation",
]
