"""Builders for monolithic implementations.

The §4 study's "moderately sized Legion object" has a 5.1 MB
implementation; 550 KB is the small case.  These builders produce
:class:`~repro.legion.implementation.Implementation` binaries with a
parameterized function count and size, so experiments can sweep both.
"""

from repro.legion.implementation import Implementation

#: §4: "a 5.1 Megabyte object implementation (typical for moderately
#: sized Legion objects)".
MODERATE_IMPL_BYTES = 5_100_000
#: §4: "a 550 K implementation takes about 4 seconds to download".
SMALL_IMPL_BYTES = 550_000


def _noop_body(ctx):
    return None


def make_monolithic_implementation(
    impl_id,
    function_count=10,
    size_bytes=SMALL_IMPL_BYTES,
    version_tag="1",
    architecture="x86-linux",
    functions=None,
):
    """Build a monolithic binary with ``function_count`` member functions.

    ``functions`` may supply real bodies for some names; the rest are
    padded with no-ops so method-table size (and hence registration
    cost) matches the requested count.
    """
    if function_count < 0:
        raise ValueError(f"function_count must be >= 0, got {function_count}")
    table = dict(functions or {})
    for index in range(max(0, function_count - len(table))):
        table[f"fn_{index:04d}"] = _noop_body
    return Implementation(
        impl_id=impl_id,
        size_bytes=size_bytes,
        architecture=architecture,
        functions=table,
        version_tag=version_tag,
    )
