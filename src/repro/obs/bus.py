"""A lightweight publish/subscribe event bus on the simulator clock.

The fault-tolerance layers each keep private state — the
:class:`~repro.obs.health.HealthRegistry` its quarantine flags, the
:class:`~repro.obs.slo.SLOMonitor` its breach log, the chaos harness
its crash plan — and until now nothing could *react* to a transition
without polling every one of them.  The :class:`EventBus` closes that
gap: producers (the network fabric, the health registry, SLO monitors,
the chaos coordinator, the supervisor) publish typed events as their
state transitions, and consumers (the reactive controller, tests,
report tooling) subscribe by topic.

Delivery is synchronous and in-process: ``publish`` invokes every
matching callback before returning, on the publisher's stack.
Subscribers that need to *act* (anything that yields simulated time)
must therefore only record the event and act from their own process —
the bus is a sensing fabric, not an execution engine.  A bounded ring
of recent events is kept for reports and debugging.

Topics are dotted strings (``"health.quarantined"``,
``"slo.breach"``, ``"host.crashed"``); a subscription to ``"*"``
receives everything, and a subscription to a ``"prefix."`` string
receives every topic under that prefix.
"""

from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Event:
    """One published occurrence."""

    at: float
    topic: str
    subject: object
    details: dict = field(default_factory=dict)

    def __repr__(self):
        return f"<Event {self.topic} {self.subject!r} at={self.at:.3f}>"


class EventBus:
    """Topic-keyed synchronous pub/sub with a bounded history."""

    def __init__(self, sim, history=256):
        self._sim = sim
        self._subscribers = {}  # pattern -> list of callbacks
        self.published = 0
        self.delivered = 0
        self.recent = deque(maxlen=history)
        self._counts = {}

    def subscribe(self, pattern, callback):
        """Register ``callback`` for ``pattern``; returns the callback.

        ``pattern`` is an exact topic, a ``"prefix."`` string matching
        every topic under it, or ``"*"`` for everything.
        """
        self._subscribers.setdefault(pattern, []).append(callback)
        return callback

    def unsubscribe(self, pattern, callback):
        """Remove one subscription; unknown pairs are ignored."""
        callbacks = self._subscribers.get(pattern)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)
            if not callbacks:
                del self._subscribers[pattern]

    def publish(self, topic, subject=None, **details):
        """Deliver one event to every matching subscriber; returns it."""
        event = Event(
            at=self._sim.now, topic=topic, subject=subject, details=details
        )
        self.published += 1
        self._counts[topic] = self._counts.get(topic, 0) + 1
        self.recent.append(event)
        for pattern, callbacks in list(self._subscribers.items()):
            if not self._matches(pattern, topic):
                continue
            for callback in list(callbacks):
                callback(event)
                self.delivered += 1
        return event

    @staticmethod
    def _matches(pattern, topic):
        if pattern == "*" or pattern == topic:
            return True
        return pattern.endswith(".") and topic.startswith(pattern)

    def counts(self):
        """Per-topic publish totals, for reports and assertions."""
        return dict(self._counts)

    def snapshot(self):
        """Plain-dict view for system reports."""
        return {
            "published": self.published,
            "delivered": self.delivered,
            "topics": self.counts(),
        }

    def __repr__(self):
        return (
            f"<EventBus topics={len(self._counts)} "
            f"published={self.published}>"
        )
