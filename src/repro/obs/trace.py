"""Structured event tracing for evolving systems.

A :class:`Tracer` attached to a runtime records every configuration-
plane event — version cuts, evolutions, component incorporations,
migrations — with its simulated timestamp, giving operators (and
tests) a timeline of *what changed when* in a system whose objects
mutate while running.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    at: float
    category: str
    subject: str
    details: tuple = ()

    def detail(self, key, default=None):
        """Look up one detail by key."""
        for item_key, value in self.details:
            if item_key == key:
                return value
        return default

    def __str__(self):
        detail_text = " ".join(f"{key}={value}" for key, value in self.details)
        return f"[{self.at:12.6f}] {self.category:<22s} {self.subject} {detail_text}".rstrip()


class Tracer:
    """Collects :class:`TraceEvent` records from a runtime.

    Attach with ``runtime.tracer = Tracer(runtime.sim)``; every
    traced subsystem then reports through ``runtime.trace(...)``.
    """

    def __init__(self, sim, capacity=None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._sim = sim
        self._capacity = capacity
        self.events = []
        self.dropped = 0

    def record(self, category, subject, **details):
        """Record one event at the current simulated time."""
        if self._capacity is not None and len(self.events) >= self._capacity:
            self.dropped += 1
            return None
        event = TraceEvent(
            at=self._sim.now,
            category=category,
            subject=str(subject),
            details=tuple(sorted(details.items())),
        )
        self.events.append(event)
        return event

    def in_category(self, category):
        """Events of one category, in order."""
        return [event for event in self.events if event.category == category]

    def about(self, subject):
        """Events whose subject matches ``subject``."""
        subject = str(subject)
        return [event for event in self.events if event.subject == subject]

    def between(self, start, end):
        """Events with start <= at < end."""
        return [event for event in self.events if start <= event.at < end]

    def render_timeline(self, limit=None):
        """The trace as readable text (last ``limit`` events)."""
        events = self.events if limit is None else self.events[-limit:]
        return "\n".join(str(event) for event in events)

    def __len__(self):
        return len(self.events)
