"""Service-level objectives evaluated on the simulator clock.

The guarded-reconfiguration discipline needs a *guard*: something that
can say, mid-evolution-wave, "clients are still fine" or "clients are
burning".  An :class:`SLO` declares the objectives (tail-latency bounds
per quantile plus a maximum error rate); an :class:`SLOMonitor` keeps a
sliding window of per-call outcomes (bounded memory) and evaluates the
objectives against it on demand — the health gate canary wave policies
poll during their bake windows.

Monitors register with the network fabric (mirroring the circuit-
breaker registry) so system reports can show SLO state fleet-wide.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SLO:
    """Declared service objectives for one traffic stream.

    ``latency_targets`` maps a quantile fraction (e.g. ``0.99``) to the
    maximum acceptable latency in seconds at that quantile.
    ``max_error_rate`` bounds the fraction of failed calls over the
    window.  Either axis may be omitted (None / empty).  Below
    ``min_samples`` observations the monitor refuses to judge — a gate
    must not trip (or pass) on noise.
    """

    name: str = "slo"
    latency_targets: dict = field(default_factory=dict)
    max_error_rate: float = None
    min_samples: int = 20

    def __post_init__(self):
        for fraction, bound in self.latency_targets.items():
            if not 0 < fraction <= 1:
                raise ValueError(f"latency quantile must be in (0, 1], got {fraction}")
            if bound <= 0:
                raise ValueError(f"latency bound must be > 0, got {bound}")
        if self.max_error_rate is not None and not 0 <= self.max_error_rate <= 1:
            raise ValueError(
                f"max_error_rate must be in [0, 1], got {self.max_error_rate}"
            )
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")


@dataclass
class SLOStatus:
    """One evaluation of an :class:`SLOMonitor` at one instant."""

    at: float
    healthy: bool
    #: Human-readable objective violations ("p99 0.41s > 0.05s", ...).
    violations: list
    samples: int
    error_rate: float
    #: quantile fraction -> observed latency at that quantile.
    quantiles: dict
    #: True when fewer than ``min_samples`` observations were in the
    #: window — the monitor abstained (healthy by default).
    insufficient: bool = False


class SLOMonitor:
    """Sliding-window objective evaluation with bounded memory.

    Parameters
    ----------
    sim:
        The simulator (the window slides on its clock).
    slo:
        The :class:`SLO` to evaluate.
    window_s:
        How far back observations count (default 10 simulated seconds).
    max_window_samples:
        Hard cap on retained observations; at sustained rates above
        ``max_window_samples / window_s`` the window is effectively
        sample-bounded (oldest dropped first), keeping memory constant
        under open-loop load of any aggregate rate.
    bus / stream:
        Optional :class:`~repro.obs.bus.EventBus` (and the stream name
        events carry); healthy/breached transitions publish
        ``slo.breach`` / ``slo.recovered`` so reactive consumers sense
        them without polling.  The fabric's monitor registry fills
        both in automatically.
    """

    def __init__(
        self, sim, slo, window_s=10.0, max_window_samples=8192, bus=None,
        stream=None,
    ):
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if max_window_samples < slo.min_samples:
            raise ValueError("max_window_samples must be >= slo.min_samples")
        self.sim = sim
        self.slo = slo
        self.window_s = window_s
        self.max_window_samples = max_window_samples
        #: (time, latency_s, ok) observations, oldest first.
        self._window = []
        self.total_calls = 0
        self.total_errors = 0
        #: Times at which an evaluation transitioned healthy -> breached.
        self.breach_log = []
        self._last_healthy = True
        self.bus = bus
        self.stream = stream

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_success(self, latency_s):
        """Record one successful call and its observed latency."""
        self._record(latency_s, True)

    def record_error(self, latency_s=0.0):
        """Record one failed call (time-to-failure as its latency)."""
        self._record(latency_s, False)

    def _record(self, latency_s, ok):
        self.total_calls += 1
        if not ok:
            self.total_errors += 1
        self._window.append((self.sim.now, latency_s, ok))
        if len(self._window) > self.max_window_samples:
            del self._window[0 : len(self._window) - self.max_window_samples]
        self._expire()

    def _expire(self):
        horizon = self.sim.now - self.window_s
        drop = 0
        for at, __, __ in self._window:
            if at >= horizon:
                break
            drop += 1
        if drop:
            del self._window[:drop]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self):
        """Judge the window now; returns an :class:`SLOStatus`.

        A healthy-to-breached transition is appended to ``breach_log``
        so harnesses can measure detection latency and MTTR.
        """
        self._expire()
        samples = len(self._window)
        errors = sum(1 for __, __, ok in self._window if not ok)
        error_rate = errors / samples if samples else 0.0
        quantiles = {}
        violations = []
        insufficient = samples < self.slo.min_samples
        if not insufficient:
            latencies = sorted(latency for __, latency, __ in self._window)
            for fraction in sorted(self.slo.latency_targets):
                index = min(
                    len(latencies) - 1,
                    max(0, round(fraction * (len(latencies) - 1))),
                )
                quantiles[fraction] = latencies[index]
            for fraction, bound in sorted(self.slo.latency_targets.items()):
                observed = quantiles[fraction]
                if observed > bound:
                    violations.append(
                        f"p{fraction * 100:g} {observed:.3f}s > {bound:.3f}s"
                    )
            if (
                self.slo.max_error_rate is not None
                and error_rate > self.slo.max_error_rate
            ):
                violations.append(
                    f"error rate {error_rate:.3f} > {self.slo.max_error_rate:.3f}"
                )
        healthy = not violations
        if self._last_healthy and not healthy:
            self.breach_log.append((self.sim.now, list(violations)))
            if self.bus is not None:
                self.bus.publish(
                    "slo.breach",
                    self.stream or self.slo.name,
                    violations=list(violations),
                    error_rate=round(error_rate, 6),
                    samples=samples,
                )
        elif not self._last_healthy and healthy and self.bus is not None:
            self.bus.publish("slo.recovered", self.stream or self.slo.name)
        self._last_healthy = healthy
        return SLOStatus(
            at=self.sim.now,
            healthy=healthy,
            violations=violations,
            samples=samples,
            error_rate=error_rate,
            quantiles=quantiles,
            insufficient=insufficient,
        )

    def healthy(self):
        """True when the current window satisfies every objective."""
        return self.evaluate().healthy

    def snapshot(self):
        """Plain-dict view for system reports."""
        status = self.evaluate()
        return {
            "healthy": status.healthy,
            "samples": status.samples,
            "error_rate": round(status.error_rate, 6),
            "quantiles": {
                f"p{fraction * 100:g}": round(value, 6)
                for fraction, value in sorted(status.quantiles.items())
            },
            "violations": list(status.violations),
            "breaches": len(self.breach_log),
            "total_calls": self.total_calls,
            "total_errors": self.total_errors,
        }

    def __repr__(self):
        return (
            f"<SLOMonitor {self.slo.name} window={self.window_s}s "
            f"samples={len(self._window)} breaches={len(self.breach_log)}>"
        )
