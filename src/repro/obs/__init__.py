"""Observability: metrics primitives and whole-system reports.

Long-running grid services need to be observable while they evolve;
this package provides the counters/timers used by examples and a
:func:`collect_system_report` that snapshots every built-in counter in
a runtime (network, caches, bindings, invokers, DFMs, managers) into
one structured report.
"""

from repro.obs.bus import Event, EventBus
from repro.obs.health import HealthRegistry, PeerHealth
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.obs.report import SystemReport, collect_system_report, render_report
from repro.obs.slo import SLO, SLOMonitor, SLOStatus
from repro.obs.trace import TraceEvent, Tracer

__all__ = [
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "HealthRegistry",
    "MetricsRegistry",
    "PeerHealth",
    "SLO",
    "SLOMonitor",
    "SLOStatus",
    "SystemReport",
    "Timer",
    "TraceEvent",
    "Tracer",
    "collect_system_report",
    "render_report",
]
