"""Per-peer health scoring and quarantine.

A :class:`HealthRegistry` keeps one :class:`PeerHealth` score per host,
fed by signals the transport and failure-detector layers already
produce: request successes, request timeouts, hedge wins (the primary
was slow enough that the backup answered first), and detector
suspicions.  The score is an EWMA-style value in (0, 1]:

- success     -> s += alpha * (1 - s)   (slow recovery toward 1)
- timeout     -> s *= (1 - 0.25)        (sharp penalty)
- hedge_win   -> s *= (1 - 0.10)        (mild penalty: slow, not dead)
- suspicion   -> s *= 0.5               (detector-grade evidence)

Quarantine uses hysteresis: a host is quarantined when its score falls
below ``quarantine_below`` and released only once it climbs back above
``recover_above``, so a peer oscillating near the threshold does not
flap in and out of the routing plan.  Quarantine is advice, not
enforcement — routing layers (the manager's relay waves) consult it to
steer work around gray peers, while invariant-critical traffic (acks,
fencing) still flows.

Quarantine alone would deadlock: the score only rises on successes,
and a fully quarantined peer receives no traffic that could succeed.
So :meth:`~HealthRegistry.is_quarantined` goes *half-open* once
``probation_s`` has elapsed since the peer's last negative signal —
probe traffic is admitted, a failed probe re-arms the window, and a
healed peer's successes keep the window open until the score climbs
back over ``recover_above``.  (Circuit-breaker probation, applied to
peers instead of endpoints.)
"""


class PeerHealth:
    """The health score and quarantine state of one host."""

    __slots__ = (
        "host",
        "score",
        "quarantined",
        "successes",
        "timeouts",
        "hedge_wins",
        "suspicions",
        "quarantines",
        "probes",
        "last_change_at",
        "last_penalty_at",
    )

    def __init__(self, host):
        self.host = host
        self.score = 1.0
        self.quarantined = False
        self.successes = 0
        self.timeouts = 0
        self.hedge_wins = 0
        self.suspicions = 0
        self.quarantines = 0
        self.probes = 0
        self.last_change_at = 0.0
        self.last_penalty_at = 0.0

    def snapshot(self):
        """Plain-dict view for reports."""
        return {
            "score": round(self.score, 4),
            "quarantined": self.quarantined,
            "successes": self.successes,
            "timeouts": self.timeouts,
            "hedge_wins": self.hedge_wins,
            "suspicions": self.suspicions,
            "quarantines": self.quarantines,
            "probes": self.probes,
        }

    def __repr__(self):
        state = "quarantined" if self.quarantined else "ok"
        return f"<PeerHealth {self.host} score={self.score:.3f} {state}>"


#: Multiplicative penalty per signal kind (complement of the decay).
_PENALTIES = {"timeout": 0.25, "hedge_win": 0.10, "suspicion": 0.50}


class HealthRegistry:
    """Fleet-wide peer health, shared via the network fabric.

    Parameters
    ----------
    sim:
        The owning simulator (timestamps state changes).
    recovery_alpha:
        Fraction of the remaining headroom recovered per success.
    quarantine_below / recover_above:
        Hysteresis band for entering / leaving quarantine.
    probation_s:
        Half-open window: once this long has passed since the peer's
        last negative signal, :meth:`is_quarantined` admits probe
        traffic again so a healed peer can earn its way out.
    metrics:
        Optional :class:`MetricsRegistry` mirror for counters
        (``health.quarantines`` / ``health.recoveries`` /
        ``health.probes``).
    bus:
        Optional :class:`~repro.obs.bus.EventBus`; quarantine
        transitions publish ``health.quarantined`` /
        ``health.recovered`` events so reactive consumers sense score
        flips without polling the registry.
    """

    def __init__(
        self,
        sim,
        recovery_alpha=0.2,
        quarantine_below=0.35,
        recover_above=0.75,
        probation_s=10.0,
        metrics=None,
        bus=None,
    ):
        if not 0 < recovery_alpha <= 1:
            raise ValueError(f"recovery_alpha must be in (0, 1], got {recovery_alpha}")
        if not 0 < quarantine_below < recover_above <= 1:
            raise ValueError(
                "need 0 < quarantine_below < recover_above <= 1, got "
                f"{quarantine_below} / {recover_above}"
            )
        if probation_s <= 0:
            raise ValueError(f"probation_s must be positive, got {probation_s}")
        self._sim = sim
        self._recovery_alpha = recovery_alpha
        self._quarantine_below = quarantine_below
        self._recover_above = recover_above
        self._probation_s = probation_s
        self._metrics = metrics
        self._bus = bus
        self._peers = {}

    def peer(self, host):
        """Get-or-create the :class:`PeerHealth` record for ``host``."""
        record = self._peers.get(host)
        if record is None:
            record = self._peers[host] = PeerHealth(host)
        return record

    def observe(self, host, event):
        """Fold one signal into ``host``'s score; returns the record.

        ``event`` is ``"success"`` / ``"timeout"`` / ``"hedge_win"`` /
        ``"suspicion"``; anything else raises.
        """
        record = self.peer(host)
        if event == "success":
            record.successes += 1
            record.score += self._recovery_alpha * (1.0 - record.score)
        elif event in _PENALTIES:
            if event == "timeout":
                record.timeouts += 1
            elif event == "hedge_win":
                record.hedge_wins += 1
            else:
                record.suspicions += 1
            record.score *= 1.0 - _PENALTIES[event]
            record.last_penalty_at = self._sim.now
        else:
            raise ValueError(f"unknown health event {event!r}")
        self._update_quarantine(record)
        return record

    def _update_quarantine(self, record):
        if not record.quarantined and record.score < self._quarantine_below:
            record.quarantined = True
            record.quarantines += 1
            record.last_change_at = self._sim.now
            if self._metrics is not None:
                self._metrics.counter("health.quarantines").increment()
            if self._bus is not None:
                self._bus.publish(
                    "health.quarantined",
                    record.host,
                    score=round(record.score, 4),
                    quarantines=record.quarantines,
                )
        elif record.quarantined and record.score > self._recover_above:
            record.quarantined = False
            record.last_change_at = self._sim.now
            if self._metrics is not None:
                self._metrics.counter("health.recoveries").increment()
            if self._bus is not None:
                self._bus.publish(
                    "health.recovered",
                    record.host,
                    score=round(record.score, 4),
                )

    def is_quarantined(self, host):
        """True if ``host`` is quarantined and not yet on probation.

        A quarantined peer goes half-open ``probation_s`` after its
        last negative signal: this returns False so routing layers send
        probe traffic.  A probe that times out re-arms the window; a
        probe that succeeds keeps it open, letting successes accumulate
        until the score recrosses ``recover_above``.
        """
        record = self._peers.get(host)
        if record is None or not record.quarantined:
            return False
        if self._sim.now - record.last_penalty_at >= self._probation_s:
            record.probes += 1
            if self._metrics is not None:
                self._metrics.counter("health.probes").increment()
            return False
        return True

    def quarantined_hosts(self):
        """Sorted names of every quarantined host."""
        return sorted(
            host for host, record in self._peers.items() if record.quarantined
        )

    def score(self, host):
        """Current score for ``host`` (1.0 if never observed)."""
        record = self._peers.get(host)
        return 1.0 if record is None else record.score

    def snapshot(self):
        """Plain-dict view of every tracked peer, for reports."""
        return {
            host: record.snapshot() for host, record in sorted(self._peers.items())
        }
