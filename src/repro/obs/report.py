"""Whole-system snapshots of a running Legion runtime.

:func:`collect_system_report` walks the runtime's live structures and
gathers every built-in counter into one :class:`SystemReport` — the
operator's view of a system whose objects may be mid-evolution.
"""

from dataclasses import dataclass, field


@dataclass
class SystemReport:
    """A structured snapshot of one runtime at one simulated instant."""

    at: float
    network: dict = field(default_factory=dict)
    hosts: dict = field(default_factory=dict)
    objects: dict = field(default_factory=dict)
    types: dict = field(default_factory=dict)
    #: Fleet-wide fault/recovery counters (crashes, retries, acks, …)
    #: from the network's :class:`~repro.obs.metrics.MetricsRegistry`.
    faults: dict = field(default_factory=dict)
    #: Per-type propagation delivery state (ack-tracked waves).
    propagations: dict = field(default_factory=dict)
    #: Per-target circuit-breaker state (ICO fetch guards and any
    #: other breakers registered with the network).
    breakers: dict = field(default_factory=dict)
    #: Per-stream SLO state (health, windowed quantiles, error rate,
    #: breach count) from monitors registered with the network.
    slos: dict = field(default_factory=dict)
    #: Per-host evolution-relay activity (batches served, instances
    #: evolved/failed), keyed by host name.
    relays: dict = field(default_factory=dict)
    #: Per-type manager availability state: fencing term, journal size
    #: (entries and estimated bytes), deposed flag — the operator's
    #: view of who the authority is and how big its durable state has
    #: grown.
    managers: dict = field(default_factory=dict)
    #: Per-host availability ledger: up/down now, crash count,
    #: cumulative downtime seconds.
    availability: dict = field(default_factory=dict)
    #: Fault-plan injection totals (dropped/blocked/delayed/reordered/
    #: duplicated) plus per-rule counters — what the chaos harness
    #: actually inflicted, as opposed to what the system suffered.
    fault_plan: dict = field(default_factory=dict)
    #: Per-peer health scores and quarantine state (empty unless the
    #: fabric's health registry was armed).
    health: dict = field(default_factory=dict)
    #: Per-destination RTT estimator state keyed ``"src->dst"`` (host
    #: names): smoothed RTT, variance, derived RTO and hedge delay,
    #: sample count.  Empty unless some invoker armed adaptive
    #: timeouts or hedging and has taken samples.
    rtt: dict = field(default_factory=dict)
    #: Per-shard manager state for sharded planes, keyed
    #: ``"<type>/s<shard_id>"``: host, term, owned slot spans, table
    #: size, journal size, and the plane's partition-map epoch.
    shards: dict = field(default_factory=dict)

    @property
    def total_active_objects(self):
        """Count of live objects across all hosts."""
        return sum(1 for info in self.objects.values() if info["active"])


def collect_system_report(runtime):
    """Snapshot ``runtime`` into a :class:`SystemReport`."""
    report = SystemReport(at=runtime.sim.now)
    stats = runtime.network.stats
    report.network = {
        "messages_delivered": stats.messages_delivered,
        "messages_dropped": stats.messages_dropped,
        "bytes_delivered": stats.bytes_delivered,
        "by_kind": dict(stats.deliveries_by_kind),
    }
    for name, host in runtime.hosts.items():
        report.hosts[name] = {
            "architecture": host.architecture,
            "processes": len(host.processes),
            "processes_spawned": host.processes_spawned,
            "cache_entries": len(host.cache),
            "cache_bytes": host.cache.used_bytes,
            "cache_hits": host.cache.hits,
            "cache_misses": host.cache.misses,
            "cache_evictions": host.cache.evictions,
        }
        report.availability[name] = {
            "up": host.is_up,
            "crashes": host.crash_count,
            "downtime_s": host.total_downtime_s,
        }
    from repro.cluster.relay import HostRelay

    for loid, obj in runtime._objects.items():
        if isinstance(obj, HostRelay):
            report.relays[obj.host.name] = {
                "loid": str(loid),
                "active": obj.is_active,
                "batches_served": obj.batches_served,
                "instances_evolved": obj.instances_evolved,
                "instances_failed": obj.instances_failed,
            }
        info = {
            "type": loid.type_name,
            "host": obj.host.name,
            "active": obj.is_active,
            "requests_completed": obj.requests_completed,
            "in_flight": obj.active_requests,
        }
        dfm = getattr(obj, "dfm", None)
        if dfm is not None:
            info["dynamic_calls"] = dfm.total_calls
            info["components"] = sorted(dfm.component_ids)
            info["interface"] = dfm.exported_interface()
            version = getattr(obj, "version", None)
            info["version"] = str(version) if version is not None else None
        report.objects[str(loid)] = info
    for type_name, class_object in runtime._classes.items():
        entry = {
            "instances": len(class_object.instance_loids()),
            "active_instances": len(class_object.active_instances()),
            "created": class_object.instances_created,
        }
        if hasattr(class_object, "current_version"):
            current = class_object.current_version
            entry["current_version"] = str(current) if current else None
            entry["versions"] = [str(version) for version in class_object.versions()]
            entry["evolutions"] = class_object.evolutions_performed
            entry["components"] = class_object.registered_components()
        if hasattr(class_object, "propagation_status"):
            status = class_object.propagation_status()
            if status:
                report.propagations[type_name] = status
        if hasattr(class_object, "term"):
            journal = class_object.journal
            report.managers[type_name] = {
                "host": class_object.host.name,
                "active": class_object.is_active,
                "term": class_object.term,
                "deposed": class_object.deposed,
                "journal_entries": len(journal) if journal is not None else 0,
                "journal_bytes": journal.bytes if journal is not None else 0,
                "journal_appends": journal.appends if journal is not None else 0,
                "journal_checkpoints": (
                    journal.checkpoints if journal is not None else 0
                ),
            }
            if hasattr(class_object, "remediation_status"):
                report.managers[type_name]["remediation"] = (
                    class_object.remediation_status()
                )
        report.types[type_name] = entry
    for obj in runtime._objects.values():
        shard_id = getattr(obj, "shard_id", None)
        if shard_id is None:
            continue
        journal = obj.journal
        partition_map = obj.partition_map
        report.shards[f"{obj.type_name}/s{shard_id}"] = {
            "type": obj.type_name,
            "shard_id": shard_id,
            "host": obj.host.name,
            "active": obj.is_active,
            "deposed": obj.deposed,
            "term": obj.term,
            "instances": len(obj.instance_loids()),
            "spans": list(obj.owned_spans()),
            "map_epoch": partition_map.epoch if partition_map else None,
            "journal_entries": len(journal) if journal is not None else 0,
            "journal_bytes": journal.bytes if journal is not None else 0,
        }
    for obj in runtime._objects.values():
        invoker = getattr(obj, "_invoker", None)
        estimators = getattr(invoker, "_estimators", None)
        if not estimators:
            continue
        src = obj.host.name
        for dst, estimator in estimators.items():
            if not estimator.samples or estimator.srtt is None:
                continue
            key = f"{src}->{dst}"
            entry = report.rtt.get(key)
            # Several objects on one host may talk to the same peer;
            # keep the best-informed estimator per edge.
            if entry is not None and entry["samples"] >= estimator.samples:
                continue
            report.rtt[key] = {
                "srtt_s": estimator.srtt,
                "rttvar_s": estimator.rttvar,
                "rto_s": estimator.rto_s,
                "hedge_delay_s": estimator.hedge_delay_s(),
                "samples": estimator.samples,
            }
    report.faults = runtime.network.metrics.snapshot()
    report.fault_plan = runtime.network.faults.stats()
    report.health = runtime.network.health_snapshot()
    report.breakers = runtime.network.breakers_snapshot()
    report.slos = runtime.network.slo_snapshot()
    return report


def render_report(report):
    """Render a :class:`SystemReport` as readable text."""
    lines = [f"system report at t={report.at:.3f}s"]
    lines.append(
        "network: {messages_delivered} delivered, {messages_dropped} dropped, "
        "{bytes_delivered} bytes".format(**report.network)
    )
    lines.append(f"active objects: {report.total_active_objects}")
    for type_name, entry in sorted(report.types.items()):
        detail = f"  type {type_name}: {entry['active_instances']}/{entry['instances']} active"
        if "current_version" in entry:
            detail += f", current v{entry['current_version']}, {entry['evolutions']} evolutions"
        lines.append(detail)
    for type_name, waves in sorted(report.propagations.items()):
        for wave in waves:
            if wave.get("aborted"):
                state = "ABORTED"
            elif wave.get("aborting"):
                state = "aborting"
            elif wave["complete"]:
                state = "complete"
            else:
                state = "open"
            line = (
                f"  propagation {type_name} v{wave['version']}: {state}, "
                f"{wave['acked']} acked / {wave['pending']} pending / "
                f"{wave['failed']} failed"
            )
            if wave.get("rolled_back"):
                line += f" / {wave['rolled_back']} rolled back"
            lines.append(line)
    for key, slo in sorted(report.slos.items()):
        state = "healthy" if slo["healthy"] else "BREACHED"
        quantiles = ", ".join(
            f"{name} {value * 1000:.1f}ms"
            for name, value in slo["quantiles"].items()
        )
        line = (
            f"  slo {key}: {state}, {slo['samples']} in window, "
            f"error rate {slo['error_rate']:.3f}, {slo['breaches']} breach(es)"
        )
        if quantiles:
            line += f", {quantiles}"
        if slo["violations"]:
            line += f" [{'; '.join(slo['violations'])}]"
        lines.append(line)
    for key, breaker in sorted(report.breakers.items()):
        lines.append(
            f"  breaker {key}: {breaker['state']}, "
            f"{breaker['failures']} failures, opened {breaker['times_opened']}x, "
            f"{breaker['short_circuits']} short-circuited"
        )
    for name, host in sorted(report.hosts.items()):
        lines.append(
            f"  host {name}: {host['processes']} procs, "
            f"cache {host['cache_entries']} entries / {host['cache_bytes']} B "
            f"({host['cache_hits']} hits / {host['cache_misses']} misses / "
            f"{host['cache_evictions']} evictions)"
        )
    for name, relay in sorted(report.relays.items()):
        state = "up" if relay["active"] else "down"
        lines.append(
            f"  relay {name}: {state}, {relay['batches_served']} batches, "
            f"{relay['instances_evolved']} evolved / "
            f"{relay['instances_failed']} failed"
        )
    for type_name, manager in sorted(report.managers.items()):
        if manager["deposed"]:
            state = "DEPOSED"
        elif manager["active"]:
            state = "up"
        else:
            state = "down"
        line = (
            f"  manager {type_name}: {state} on {manager['host']}, "
            f"term {manager['term']}, journal {manager['journal_entries']} "
            f"entries / {manager['journal_bytes']} B "
            f"({manager['journal_appends']} appends, "
            f"{manager['journal_checkpoints']} checkpoints)"
        )
        remediation = manager.get("remediation")
        if remediation and remediation["total"]:
            lease = remediation["lease"]
            holder = lease["owner"] if lease else "-"
            line += (
                f", remediations {remediation['total']} "
                f"({len(remediation['open'])} open, lease {holder})"
            )
        lines.append(line)
    for key, shard in sorted(report.shards.items()):
        if shard["deposed"]:
            state = "DEPOSED"
        elif shard["active"]:
            state = "up"
        else:
            state = "down"
        spans = ", ".join(f"[{lo},{hi})" for lo, hi in shard["spans"]) or "-"
        lines.append(
            f"  shard {key}: {state} on {shard['host']}, "
            f"term {shard['term']}, {shard['instances']} instances, "
            f"spans {spans}, map epoch {shard['map_epoch']}, "
            f"journal {shard['journal_entries']} entries / "
            f"{shard['journal_bytes']} B"
        )
    shard_counters = {
        name: value
        for name, value in report.faults.items()
        if name.startswith("manager.shard.") and value
    }
    if shard_counters:
        counters = ", ".join(
            f"{name.split('manager.shard.', 1)[1]} {value}"
            for name, value in sorted(shard_counters.items())
        )
        lines.append(f"  shard plane: {counters}")
    downtime = {
        name: entry
        for name, entry in report.availability.items()
        if entry["crashes"] or not entry["up"]
    }
    for name, entry in sorted(downtime.items()):
        state = "up" if entry["up"] else "DOWN"
        lines.append(
            f"  availability {name}: {state}, {entry['crashes']} crash(es), "
            f"{entry['downtime_s']:.1f}s down"
        )
    suspicions = report.faults.get("detector.suspicions", 0)
    false_positives = report.faults.get("detector.false_positives", 0)
    if suspicions or false_positives:
        lines.append(
            f"  availability detector: {suspicions} suspicion(s), "
            f"{false_positives} false positive(s) (suspected then recovered)"
        )
    for name, peer in sorted(report.health.items()):
        state = "QUARANTINED" if peer["quarantined"] else "ok"
        lines.append(
            f"  health {name}: {state}, score {peer['score']:.2f} "
            f"({peer['successes']} ok / {peer['timeouts']} timeouts / "
            f"{peer['hedge_wins']} hedge wins / {peer['suspicions']} suspicions)"
        )
    for edge, entry in sorted(report.rtt.items()):
        hedge = entry["hedge_delay_s"]
        line = (
            f"  rtt {edge}: srtt {entry['srtt_s'] * 1000:.2f}ms "
            f"rttvar {entry['rttvar_s'] * 1000:.2f}ms "
            f"rto {entry['rto_s'] * 1000:.2f}ms "
            f"({entry['samples']} samples)"
        )
        if hedge is not None:
            line += f", hedge after {hedge * 1000:.2f}ms"
        lines.append(line)
    hedges = report.faults.get("transport.hedges", 0)
    hedge_wins = report.faults.get("transport.hedge_wins", 0)
    if hedges:
        lines.append(
            f"  hedging: {hedges} hedged request(s), {hedge_wins} won by the backup"
        )
    plan = report.fault_plan
    if plan and any(plan.get(key) for key in
                    ("dropped", "blocked", "delayed", "reordered", "duplicated")):
        lines.append(
            "fault plan: {dropped} dropped, {blocked} blocked, "
            "{delayed} delayed, {reordered} reordered, "
            "{duplicated} duplicated".format(**plan)
        )
        for rule in plan.get("rules", ()):
            counters = ", ".join(
                f"{key} {value}"
                for key, value in rule.items()
                if key not in ("kind", "label") and value
            )
            lines.append(
                f"  rule {rule['label']} [{rule['kind']}]: {counters or 'idle'}"
            )
    if report.faults:
        lines.append("fault/recovery counters:")
        for name, value in sorted(report.faults.items()):
            lines.append(f"  {name}: {value}")
    return "\n".join(lines)
