"""Metric primitives over simulated time.

All timing uses the simulator clock, so metrics are deterministic and
comparable across runs with the same seed.
"""

import random

#: Default reservoir capacity for :class:`Timer` percentile tracking.
#: Below this many samples the timer is exact; beyond it, Vitter's
#: algorithm R keeps a uniform sample so memory stays bounded no matter
#: how long the run.
TIMER_RESERVOIR_SIZE = 4096


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def increment(self, amount=1):
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def __repr__(self):
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can move in both directions, tracking its peak."""

    __slots__ = ("name", "value", "_peak")

    def __init__(self, name):
        self.name = name
        self.value = 0
        # None until the first set(): the peak of a gauge that has only
        # ever seen negative values must be that (negative) value, not
        # a phantom 0 it never held.
        self._peak = None

    @property
    def peak(self):
        """Highest value ever set (the current value before any set)."""
        return self.value if self._peak is None else self._peak

    def set(self, value):
        """Set the gauge to ``value``."""
        self.value = value
        if self._peak is None or value > self._peak:
            self._peak = value

    def adjust(self, delta):
        """Move the gauge by ``delta``."""
        self.set(self.value + delta)

    def __repr__(self):
        return f"<Gauge {self.name}={self.value} peak={self.peak}>"


class Timer:
    """Accumulates duration samples (simulated seconds).

    Count, sum, min and max are exact over every sample ever recorded.
    The per-sample store backing :meth:`percentile` is a bounded
    reservoir (uniform without replacement, seeded per timer name so
    runs stay deterministic): exact below ``reservoir_size`` samples,
    a statistically uniform subset beyond it — tail quantiles over
    million-call open-loop runs cost O(reservoir), not O(calls).

    The sorted view of the reservoir is cached and invalidated by
    :meth:`record`, so ``record`` stays O(1) amortized and repeated
    percentile reads between records sort nothing.
    """

    __slots__ = (
        "name",
        "_sim",
        "samples",
        "reservoir_size",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_rng",
        "_sorted",
        "sorted_rebuilds",
    )

    def __init__(self, name, sim=None, reservoir_size=TIMER_RESERVOIR_SIZE):
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be >= 1, got {reservoir_size}")
        self.name = name
        self._sim = sim
        self.samples = []
        self.reservoir_size = reservoir_size
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None
        self._rng = random.Random(f"timer-reservoir:{name}")
        # Cached sorted reservoir; None while stale.  The rebuild count
        # is exposed so tests can assert the cache actually amortizes.
        self._sorted = None
        self.sorted_rebuilds = 0

    @property
    def count(self):
        """Number of recorded samples (exact, not reservoir-bounded)."""
        return self._count

    def record(self, duration):
        """Record one duration sample (O(1): no sorting happens here)."""
        if duration < 0:
            raise ValueError(f"durations must be >= 0, got {duration}")
        self._count += 1
        self._sum += duration
        self._min = duration if self._min is None else min(self._min, duration)
        self._max = duration if self._max is None else max(self._max, duration)
        if len(self.samples) < self.reservoir_size:
            self.samples.append(duration)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.reservoir_size:
                self.samples[slot] = duration
            else:
                return  # reservoir untouched: the sorted view stands
        self._sorted = None

    def measure(self, body):
        """Generator: time the simulated duration of ``body``.

        Usage from a process::

            result = yield from timer.measure(some_generator())
        """
        if self._sim is None:
            raise RuntimeError(f"timer {self.name!r} was built without a simulator")
        started = self._sim.now
        result = yield from body
        self.record(self._sim.now - started)
        return result

    def mean(self):
        """Mean over all recorded samples, or None when empty."""
        if not self._count:
            return None
        return self._sum / self._count

    def max(self):
        """Largest sample ever recorded, or None when empty."""
        return self._max

    def min(self):
        """Smallest sample ever recorded, or None when empty."""
        return self._min

    def _ordered(self):
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self.samples)
            self.sorted_rebuilds += 1
        return ordered

    def percentile(self, fraction):
        """The ``fraction`` quantile (0..1) by nearest-rank.

        Exact while the sample count fits the reservoir; beyond that,
        computed over the uniform reservoir sample.  Reads between
        records share one cached sort of the reservoir.
        """
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.samples:
            return None
        ordered = self._ordered()
        index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]

    def __repr__(self):
        return f"<Timer {self.name} n={self.count} mean={self.mean()}>"


class MetricsRegistry:
    """A named collection of metrics, one per subsystem or experiment."""

    __slots__ = ("_sim", "_metrics", "_sorted_items")

    def __init__(self, sim=None):
        self._sim = sim
        self._metrics = {}
        # Name-sorted (name, metric) pairs, rebuilt only when a metric
        # is created — snapshot() stops paying an O(n log n) sort per
        # call on a registry whose membership is long since stable.
        self._sorted_items = None

    def counter(self, name):
        """Get-or-create a :class:`Counter`."""
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name):
        """Get-or-create a :class:`Gauge`."""
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def timer(self, name):
        """Get-or-create a :class:`Timer` bound to the registry's clock."""
        return self._get_or_create(name, lambda: Timer(name, sim=self._sim), Timer)

    def _get_or_create(self, name, factory, expected_type):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
            self._sorted_items = None
        elif not isinstance(metric, expected_type):
            raise TypeError(
                f"metric {name!r} already exists as {type(metric).__name__}"
            )
        return metric

    def _ordered_items(self):
        items = self._sorted_items
        if items is None:
            items = self._sorted_items = sorted(self._metrics.items())
        return items

    def snapshot(self, prefix=None):
        """A plain-dict snapshot of every metric's headline value.

        ``prefix`` restricts the snapshot to one dotted namespace
        (e.g. ``"wave"`` or ``"breaker"``) — handy for asserting on a
        subsystem's counters without pinning the whole registry.
        """
        out = {}
        for name, metric in self._ordered_items():
            if prefix is not None and not (
                name == prefix or name.startswith(prefix + ".")
            ):
                continue
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = {"value": metric.value, "peak": metric.peak}
            else:
                out[name] = {
                    "count": metric.count,
                    "mean": metric.mean(),
                    "p50": metric.percentile(0.50),
                    "p99": metric.percentile(0.99),
                }
        return out

    def __len__(self):
        return len(self._metrics)
