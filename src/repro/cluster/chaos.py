"""Randomized chaos harness: crashes, partitions, and drops under load.

Building blocks for fault-tolerance tests and drills:

- :func:`crash_host` — a machine-level :meth:`Host.crash` plus the
  runtime-level reconciliation the machine cannot do itself: flipping
  the dead host's :class:`InstanceRecord`s inactive and deactivating
  the objects (including any class object / DCDO Manager homed there).
- :class:`ChaosCoordinator` — wires a :class:`CrashPlan`'s hooks to
  that reconciliation, and on restart recovers dead managers from
  their journals and rebuilds crash-lost instances.
- :class:`ChaosSchedule` — a seeded, deterministic fault scenario
  (host outages, prefix partitions, drop rules) generated from one
  integer seed, so every chaos test run is reproducible.
- :func:`drive_to_convergence` — the heal phase: repair what is
  repairable and re-propagate until every surviving DCDO reaches the
  manager's current version.

Layering note: this module orchestrates *across* layers (cluster +
core), so core imports stay inside functions to keep the cluster
package importable on its own.
"""

import random

from repro.cluster.host import CrashPlan
from repro.net import (
    DropRule,
    DuplicateRule,
    LinkFlap,
    OneWayPartition,
    PrefixPartition,
    ReorderRule,
    SlowLink,
)


def fleet_managers(runtime):
    """Class objects plus attached shard managers.

    Shards ``k >= 1`` of a :class:`ShardedManagerPlane` live outside
    the runtime's class table (only shard 0 is *the* class object for
    its type) but own instance records all the same, so crash and
    recovery reconciliation must walk them too.
    """
    managers = list(runtime.classes())
    seen = {id(manager) for manager in managers}
    for obj in list(runtime._objects.values()):
        if getattr(obj, "shard_id", None) is not None and id(obj) not in seen:
            managers.append(obj)
            seen.add(id(obj))
    return managers


def crash_host(runtime, host):
    """Fail-stop ``host`` and reconcile the runtime's object tables.

    Returns the LOIDs of instances that died.  Class objects homed on
    the host are deactivated too — their recovery (journal replay) is a
    separate, explicit act.
    """
    host.crash()
    died = []
    for class_object in fleet_managers(runtime):
        for loid in class_object.instance_loids():
            record = class_object.record(loid)
            if record.host is host and record.active:
                record.active = False
                record.process = None
                if record.obj is not None:
                    record.obj.deactivate()
                died.append(loid)
        if class_object.host is host and class_object.is_active:
            class_object.deactivate()
    return died


class ChaosCoordinator:
    """Runs crash/restart reconciliation for a fleet under test.

    Parameters
    ----------
    runtime:
        The Legion runtime under chaos.
    journals:
        ``type_name -> ManagerJournal`` for every manager that should
        be recoverable; a manager without a journal stays dead until
        its own host returns and someone rebuilds it by hand.
    auto_recover:
        When True (default), a host restart triggers recovery of dead
        journaled managers (homed on the restarting host) and of the
        crash-lost instances the live managers know about.
    """

    def __init__(self, runtime, journals=None, auto_recover=True, relays=None):
        self.runtime = runtime
        self.journals = dict(journals or {})
        self.auto_recover = auto_recover
        #: Host name -> relay LOID directory (see
        #: :func:`repro.cluster.relay.deploy_relays`); restart
        #: reconciliation re-activates dead relays on hosts that booted.
        self.relays = dict(relays or {})
        self.crash_plan = CrashPlan(
            runtime.sim, on_crash=self._on_crash, on_restart=self._on_restart
        )
        self.crash_log = []
        self.recovery_log = []
        self._recovering = set()

    def _on_crash(self, host):
        died = crash_host(self.runtime, host)
        self.crash_log.append((self.runtime.sim.now, host.name, died))
        self.runtime.network.publish(
            "host.crashed", host.name, died=len(died)
        )

    def _on_restart(self, host):
        self.runtime.network.publish("host.restarted", host.name)
        if self.auto_recover:
            yield from self.recover_on(host)

    def recover_on(self, host):
        """Generator: bring back what can come back after ``host`` boots.

        Dead journaled managers are recovered first (homed on the
        restarting host), then every live manager's crash-lost
        instances on now-up hosts are rebuilt.
        """
        from repro.core.recovery import recover_manager

        for type_name, journal in self.journals.items():
            if type_name in self._recovering:
                continue
            try:
                manager = self.runtime.class_of(type_name)
            except Exception:
                manager = None
            if manager is not None and manager.is_active:
                continue
            self._recovering.add(type_name)
            try:
                manager = yield from recover_manager(
                    self.runtime, journal, host_name=host.name
                )
                self.recovery_log.append(
                    (self.runtime.sim.now, "manager", type_name)
                )
            finally:
                self._recovering.discard(type_name)
        yield from self.restore_relays()
        yield from self.restore_components()
        yield from self.recover_instances()

    def restore_relays(self):
        """Generator: re-activate dead evolution relays on up hosts."""
        from repro.cluster.relay import restore_relays

        if self.relays:
            restored = yield from restore_relays(self.runtime, self.relays)
            for host_name in restored:
                self.recovery_log.append(
                    (self.runtime.sim.now, "relay", host_name)
                )

    def restore_components(self):
        """Generator: re-serve dead ICOs of every live manager.

        A crashed component host leaves its ICOs dead even after the
        host reboots (restart wipes memory); instances that never
        cached the blob then cannot evolve.  Managers that survived
        re-create those servers here.
        """
        for class_object in fleet_managers(self.runtime):
            if class_object.is_active and hasattr(
                class_object, "restore_components"
            ):
                yield from class_object.restore_components()

    def recover_instances(self):
        """Generator: rebuild crash-lost instances on hosts that are up."""
        from repro.legion.errors import LegionError
        from repro.net import TransportError

        for class_object in fleet_managers(self.runtime):
            if not class_object.is_active:
                continue
            for loid in class_object.instance_loids():
                record = class_object.record(loid)
                if record.active or not record.host.is_up:
                    continue
                try:
                    yield from class_object.recover_instance(loid)
                    self.recovery_log.append(
                        (self.runtime.sim.now, "instance", loid)
                    )
                except (ValueError, LegionError, TransportError):
                    # Already recovered concurrently, or still
                    # unreachable: a later pass will retry.
                    continue


class ChaosSchedule:
    """A deterministic fault scenario generated from one seed.

    Attributes
    ----------
    crashes:
        ``(host_name, crash_at, restart_at)`` outages.
    partitions:
        ``(prefixes_a, prefixes_b, start, end)`` prefix partitions.
    drops:
        ``(count, start, end)`` bounded random-drop windows.
    degradations:
        ``(kind, amount)`` version-quality regressions — ``("latency",
        seconds)`` or ``("errors", every_k)``.  Not installed on the
        network: the harness feeds them to
        :func:`repro.workloads.generator.build_degraded_version` to
        stage the bad build whose rollout the SLO gate must catch.
    one_way:
        ``(from_host, to_hosts, start, end)`` asymmetric partitions:
        traffic from ``from_host`` toward ``to_hosts`` is lost, the
        reverse direction flows.
    flaps:
        ``(host, other_hosts, period_s, down_s, start, end)`` link-flap
        schedules between one host and the rest.
    slow_links:
        ``(host, other_hosts, extra_s, jitter_s, rule_seed, start,
        end)`` latency-inflation windows.
    duplicates:
        ``(probability, spread_s, rule_seed, start, end)`` message
        duplication windows over all traffic.
    reorders:
        ``(probability, max_skew_s, rule_seed, start, end)`` bounded
        reordering windows over all traffic.
    limps:
        ``(host, factor, start, end)`` limping-host windows: CPU (and
        NIC) service times multiply by ``factor``, then heal.
    shard_crashes:
        ``(host_name, crash_at, restart_at)`` outages aimed at hosts
        running shard managers of a :class:`ShardedManagerPlane` —
        schedule-wise identical to ``crashes`` but drawn from the
        shard-host pool, so a sweep can guarantee the fault lands on
        the sharded control plane.
    map_staleness:
        ``(extra_s, start, end)`` partition-map staleness windows:
        replica convergence after a fast-mode map apply is delayed by
        ``extra_s`` inside the window, widening the stale-map bounce
        race for routed RPCs.
    rebalance_crashes:
        ``(host_name, crash_at, restart_at, pick)`` mid-rebalance
        crashes: at ``crash_at`` a live range move is triggered on the
        plane (``pick`` deterministically selects the source shard)
        and the named host is crashed while the handoff is in flight,
        exercising the abort/prune path.
    bad_deploys:
        ``(at, added_latency_s, error_every)`` unguarded bad rollouts:
        at ``at`` the harness adopts a degraded build fleet-wide
        *outside* any canary (the operator-pushed regression the SLO
        gate never saw).  Not installed on the network — the harness
        stages the build via
        :func:`repro.workloads.generator.build_degraded_version` and
        propagates it; the reactive controller must sense the breach
        and demote.
    flaky_limps:
        ``(host, factor, start, end)`` limping windows drawn from the
        instance-bearing host pool — semantics identical to ``limps``,
        but guaranteed to land where instances live, so quarantine and
        migrate-off-flaky-host remediation actually trigger.
    """

    def __init__(
        self,
        crashes=(),
        partitions=(),
        drops=(),
        degradations=(),
        one_way=(),
        flaps=(),
        slow_links=(),
        duplicates=(),
        reorders=(),
        limps=(),
        shard_crashes=(),
        map_staleness=(),
        rebalance_crashes=(),
        bad_deploys=(),
        flaky_limps=(),
    ):
        self.crashes = list(crashes)
        self.partitions = list(partitions)
        self.drops = list(drops)
        self.degradations = list(degradations)
        self.one_way = list(one_way)
        self.flaps = list(flaps)
        self.slow_links = list(slow_links)
        self.duplicates = list(duplicates)
        self.reorders = list(reorders)
        self.limps = list(limps)
        self.shard_crashes = list(shard_crashes)
        self.map_staleness = list(map_staleness)
        self.rebalance_crashes = list(rebalance_crashes)
        self.bad_deploys = list(bad_deploys)
        self.flaky_limps = list(flaky_limps)
        #: Simulated time :meth:`install` rebased the offsets onto.
        self.installed_at = None

    @classmethod
    def generate(
        cls,
        seed,
        host_names,
        duration_s=120.0,
        max_crashes=2,
        max_partitions=1,
        max_drops=2,
        protect=(),
        ico_hosts=(),
        max_ico_partitions=0,
        mid_apply_crashes=0,
        relay_hosts=(),
        max_relay_crashes=0,
        manager_hosts=(),
        max_manager_partitions=0,
        max_failovers=0,
        max_degradations=0,
        gray_one_way=0,
        gray_flaps=0,
        gray_slow_links=0,
        gray_duplicates=0,
        gray_reorders=0,
        gray_limps=0,
        shard_hosts=(),
        max_shard_crashes=0,
        max_map_staleness=0,
        mid_rebalance_crashes=0,
        instance_hosts=(),
        max_bad_deploys=0,
        max_flaky_limps=0,
    ):
        """Roll a scenario: every draw comes from ``random.Random(seed)``.

        ``protect`` names hosts exempt from crashing (they may still be
        partitioned) — e.g. a host whose manager has no journal.

        Two fault kinds target the transactional-evolution window
        specifically; both default off, and their draws come strictly
        after the legacy ones, so a given seed yields the same legacy
        schedule either way:

        - ``max_ico_partitions`` (with ``ico_hosts`` naming the hosts
          serving ICOs) cuts the component servers off from everyone
          else early in the run — an evolution that reaches its
          prepare-phase fetch then fails and must roll back.
        - ``mid_apply_crashes`` crashes extra hosts inside the first
          few seconds, while prepare/commit work is typically in
          flight.

        ``max_relay_crashes`` (with ``relay_hosts`` naming hosts that
        run evolution relays) crashes relay hosts in the first seconds
        of the run — while a batched wave is typically mid-flight, so
        the batch dies with its relay and its colocated instances.
        Its draws come strictly after every other kind, preserving a
        seed's legacy schedule.

        Two further kinds target manager availability (PR 5); both
        default off and draw strictly after everything above, again
        preserving legacy schedules:

        - ``max_manager_partitions`` (with ``manager_hosts`` naming
          hosts that run — or may be promoted to run — a DCDO
          Manager) isolates the *first* manager host from every other
          host for a window: the split-brain scenario, where a healthy
          primary is cut off, a standby is promoted, and the old
          primary's stale-term traffic must be fenced after heal.
        - ``max_failovers`` crashes manager hosts in sequence along
          ``manager_hosts`` — the first early (while a wave is
          typically mid-flight), each next one spaced out so it can
          land after the previous promotion: the double-failover
          scenario.  Crash times are chained, not overlapping, so a
          supervisor is always chasing the *current* primary.

        ``max_degradations`` (default off, draws strictly last) rolls
        version-quality faults: ``("latency", s)`` or ``("errors", k)``
        pairs the harness turns into a degraded build (see
        :func:`repro.workloads.generator.build_degraded_version`)
        whose gated rollout must breach and roll back.

        The six ``gray_*`` kinds roll *gray* failures — faults where
        messages or hosts are degraded rather than dead: asymmetric
        (one-way) partitions, link flaps, slow links, duplication,
        bounded reordering, and limping hosts.  All default off; their
        draws come strictly after every kind above, in exactly this
        order, so legacy seeds keep their schedules and each gray kind
        added later never perturbs the earlier ones.  Rules that need
        per-message randomness (slow-link jitter, duplication,
        reordering) carry their own sub-seed drawn here, keeping the
        whole scenario a pure function of ``seed``.

        The three ``shard``/``map``/``rebalance`` kinds (PR 9) target
        the sharded manager plane; all default off and draw strictly
        after every kind above — including every gray kind — in
        exactly this order, so every legacy seed keeps its exact
        schedule:

        - ``max_shard_crashes`` (with ``shard_hosts`` naming hosts
          that run shard managers) crashes shard hosts early in the
          run, while a per-shard wave is typically mid-flight.
        - ``max_map_staleness`` opens partition-map staleness windows:
          after a fast-mode map apply, replica convergence inside the
          window is delayed by an extra ``extra_s``, so stubs route on
          stale epochs for longer and stale-map bounces multiply.
        - ``mid_rebalance_crashes`` triggers a live range move on the
          plane and crashes a shard host while the row handoff is in
          flight — the aborted handoff must leave no range writable by
          two shards and no row half-moved.

        The two controller kinds (PR 10) target the self-healing loop;
        both default off and draw strictly after every kind above —
        including every shard kind — in exactly this order, so every
        legacy seed keeps its exact schedule:

        - ``max_bad_deploys`` rolls unguarded degraded rollouts the
          harness adopts fleet-wide at the drawn time, outside any
          canary — the controller must sense the SLO breach and
          originate the rollback.
        - ``max_flaky_limps`` (with ``instance_hosts`` naming hosts
          that carry instances) rolls limp windows guaranteed to land
          on instance-bearing hosts, so health quarantine and the
          migrate-off-flaky-host policy actually fire.
        """
        rng = random.Random(seed)
        host_names = list(host_names)
        eligible = [name for name in host_names if name not in protect]
        crashes = []
        if eligible and max_crashes > 0:
            victims = rng.sample(
                eligible, k=rng.randint(1, min(max_crashes, len(eligible)))
            )
            for name in victims:
                crash_at = rng.uniform(1.0, duration_s * 0.4)
                restart_at = crash_at + rng.uniform(5.0, duration_s * 0.4)
                crashes.append((name, crash_at, restart_at))
        partitions = []
        for __ in range(rng.randint(0, max_partitions)):
            if len(host_names) < 2:
                break
            shuffled = list(host_names)
            rng.shuffle(shuffled)
            cut = rng.randint(1, len(shuffled) - 1)
            start = rng.uniform(0.0, duration_s * 0.5)
            end = start + rng.uniform(2.0, duration_s * 0.4)
            partitions.append(
                (
                    [f"{name}/" for name in shuffled[:cut]],
                    [f"{name}/" for name in shuffled[cut:]],
                    start,
                    end,
                )
            )
        drops = []
        for __ in range(rng.randint(0, max_drops)):
            start = rng.uniform(0.0, duration_s * 0.6)
            drops.append((rng.randint(1, 4), start, start + rng.uniform(1.0, 20.0)))
        ico_hosts = [name for name in ico_hosts if name in host_names]
        others = [name for name in host_names if name not in ico_hosts]
        if ico_hosts and others and max_ico_partitions > 0:
            for __ in range(rng.randint(1, max_ico_partitions)):
                start = rng.uniform(0.0, duration_s * 0.25)
                end = start + rng.uniform(5.0, duration_s * 0.5)
                partitions.append(
                    (
                        [f"{name}/" for name in ico_hosts],
                        [f"{name}/" for name in others],
                        start,
                        end,
                    )
                )
        already_down = {name for name, __, __ in crashes}
        fresh = [name for name in eligible if name not in already_down]
        if fresh and mid_apply_crashes > 0:
            victims = rng.sample(fresh, k=min(mid_apply_crashes, len(fresh)))
            for name in victims:
                crash_at = rng.uniform(0.6, 6.0)
                restart_at = crash_at + rng.uniform(5.0, duration_s * 0.4)
                crashes.append((name, crash_at, restart_at))
        already_down = {name for name, __, __ in crashes}
        relay_eligible = [
            name
            for name in relay_hosts
            if name in host_names and name not in protect and name not in already_down
        ]
        if relay_eligible and max_relay_crashes > 0:
            victims = rng.sample(
                relay_eligible, k=min(max_relay_crashes, len(relay_eligible))
            )
            for name in victims:
                crash_at = rng.uniform(0.5, 8.0)
                restart_at = crash_at + rng.uniform(5.0, duration_s * 0.4)
                crashes.append((name, crash_at, restart_at))
        manager_hosts = [name for name in manager_hosts if name in host_names]
        if manager_hosts and max_manager_partitions > 0:
            primary = manager_hosts[0]
            rest = [name for name in host_names if name != primary]
            if rest:
                for __ in range(rng.randint(1, max_manager_partitions)):
                    start = rng.uniform(0.5, duration_s * 0.2)
                    end = start + rng.uniform(6.0, duration_s * 0.35)
                    partitions.append(
                        (
                            [f"{primary}/"],
                            [f"{name}/" for name in rest],
                            start,
                            end,
                        )
                    )
        if manager_hosts and max_failovers > 0:
            already_down = {name for name, __, __ in crashes}
            crash_at = rng.uniform(0.5, 6.0)
            scheduled = 0
            for name in manager_hosts:
                if scheduled >= max_failovers:
                    break
                if name in protect or name in already_down:
                    continue
                restart_at = crash_at + rng.uniform(10.0, duration_s * 0.35)
                crashes.append((name, crash_at, restart_at))
                scheduled += 1
                crash_at += rng.uniform(8.0, 20.0)
        degradations = []
        if max_degradations > 0:
            # Strictly after every network/crash draw, preserving
            # legacy seed schedules.  These are *version* faults, not
            # network faults: the k-th deploy is a build that works but
            # violates the SLO, which only a live traffic gate catches.
            for __ in range(rng.randint(1, max_degradations)):
                if rng.random() < 0.5:
                    degradations.append(
                        ("latency", round(rng.uniform(0.1, 0.5), 3))
                    )
                else:
                    degradations.append(("errors", rng.randint(1, 3)))
        # Gray kinds, strictly after everything above and in a fixed
        # order relative to each other.
        one_way = []
        if gray_one_way > 0 and len(host_names) >= 2:
            for __ in range(rng.randint(1, gray_one_way)):
                victim = rng.choice(host_names)
                rest = [name for name in host_names if name != victim]
                start = rng.uniform(0.5, duration_s * 0.4)
                end = start + rng.uniform(5.0, duration_s * 0.4)
                if rng.random() < 0.5:
                    # The victim goes mute: its sends vanish, it still hears.
                    one_way.append(([victim], rest, start, end))
                else:
                    # The victim goes deaf: it talks, nothing reaches it.
                    one_way.append((rest, [victim], start, end))
        flaps = []
        if gray_flaps > 0 and len(host_names) >= 2:
            for __ in range(rng.randint(1, gray_flaps)):
                victim = rng.choice(host_names)
                rest = [name for name in host_names if name != victim]
                period = rng.uniform(2.0, 10.0)
                down = period * rng.uniform(0.2, 0.6)
                start = rng.uniform(0.5, duration_s * 0.4)
                end = start + rng.uniform(8.0, duration_s * 0.4)
                flaps.append((victim, rest, period, down, start, end))
        slow_links = []
        if gray_slow_links > 0 and len(host_names) >= 2:
            for __ in range(rng.randint(1, gray_slow_links)):
                victim = rng.choice(host_names)
                rest = [name for name in host_names if name != victim]
                extra = rng.uniform(0.05, 0.3)
                jitter = rng.uniform(0.0, 0.2)
                rule_seed = rng.randrange(2**32)
                start = rng.uniform(0.5, duration_s * 0.4)
                end = start + rng.uniform(5.0, duration_s * 0.4)
                slow_links.append(
                    (victim, rest, extra, jitter, rule_seed, start, end)
                )
        duplicates = []
        if gray_duplicates > 0:
            for __ in range(rng.randint(1, gray_duplicates)):
                probability = rng.uniform(0.05, 0.3)
                spread = rng.uniform(0.005, 0.05)
                rule_seed = rng.randrange(2**32)
                start = rng.uniform(0.0, duration_s * 0.5)
                end = start + rng.uniform(5.0, duration_s * 0.4)
                duplicates.append((probability, spread, rule_seed, start, end))
        reorders = []
        if gray_reorders > 0:
            for __ in range(rng.randint(1, gray_reorders)):
                probability = rng.uniform(0.05, 0.3)
                skew = rng.uniform(0.002, 0.02)
                rule_seed = rng.randrange(2**32)
                start = rng.uniform(0.0, duration_s * 0.5)
                end = start + rng.uniform(5.0, duration_s * 0.4)
                reorders.append((probability, skew, rule_seed, start, end))
        limps = []
        if gray_limps > 0 and host_names:
            for __ in range(rng.randint(1, gray_limps)):
                victim = rng.choice(host_names)
                factor = rng.uniform(2.0, 8.0)
                start = rng.uniform(0.5, duration_s * 0.4)
                end = start + rng.uniform(5.0, duration_s * 0.4)
                limps.append((victim, round(factor, 2), start, end))
        # Shard-plane kinds (PR 9), strictly after every kind above —
        # legacy seeds keep their exact schedules.
        shard_crashes = []
        already_down = {name for name, __, __ in crashes}
        shard_eligible = [
            name
            for name in shard_hosts
            if name in host_names and name not in protect and name not in already_down
        ]
        if shard_eligible and max_shard_crashes > 0:
            victims = rng.sample(
                shard_eligible, k=min(max_shard_crashes, len(shard_eligible))
            )
            for name in victims:
                crash_at = rng.uniform(0.5, 8.0)
                restart_at = crash_at + rng.uniform(5.0, duration_s * 0.4)
                shard_crashes.append((name, crash_at, restart_at))
        map_staleness = []
        if max_map_staleness > 0:
            for __ in range(rng.randint(1, max_map_staleness)):
                extra = round(rng.uniform(0.1, 1.5), 3)
                start = rng.uniform(0.0, duration_s * 0.4)
                end = start + rng.uniform(2.0, duration_s * 0.3)
                map_staleness.append((extra, start, end))
        rebalance_crashes = []
        already_down |= {name for name, __, __ in shard_crashes}
        rebalance_eligible = [
            name
            for name in shard_hosts
            if name in host_names and name not in protect and name not in already_down
        ]
        if rebalance_eligible and mid_rebalance_crashes > 0:
            victims = rng.sample(
                rebalance_eligible,
                k=min(mid_rebalance_crashes, len(rebalance_eligible)),
            )
            for name in victims:
                crash_at = rng.uniform(1.0, 8.0)
                restart_at = crash_at + rng.uniform(5.0, duration_s * 0.4)
                rebalance_crashes.append(
                    (name, crash_at, restart_at, rng.random())
                )
        # Controller kinds (PR 10), strictly after every kind above —
        # legacy seeds keep their exact schedules.
        bad_deploys = []
        if max_bad_deploys > 0:
            for __ in range(rng.randint(1, max_bad_deploys)):
                at = rng.uniform(1.0, duration_s * 0.3)
                if rng.random() < 0.5:
                    added_latency_s, error_every = round(rng.uniform(0.2, 1.0), 3), 0
                else:
                    added_latency_s, error_every = 0.0, rng.randint(2, 4)
                bad_deploys.append((at, added_latency_s, error_every))
        flaky_limps = []
        flaky_pool = [name for name in instance_hosts if name in host_names]
        if flaky_pool and max_flaky_limps > 0:
            for __ in range(rng.randint(1, max_flaky_limps)):
                victim = rng.choice(flaky_pool)
                factor = rng.uniform(4.0, 10.0)
                start = rng.uniform(0.5, duration_s * 0.3)
                end = start + rng.uniform(10.0, duration_s * 0.5)
                flaky_limps.append((victim, round(factor, 2), start, end))
        return cls(
            crashes=crashes,
            partitions=partitions,
            drops=drops,
            degradations=degradations,
            one_way=one_way,
            flaps=flaps,
            slow_links=slow_links,
            duplicates=duplicates,
            reorders=reorders,
            limps=limps,
            shard_crashes=shard_crashes,
            map_staleness=map_staleness,
            rebalance_crashes=rebalance_crashes,
            bad_deploys=bad_deploys,
            flaky_limps=flaky_limps,
        )

    @property
    def heal_time(self):
        """Time by which every fault has cleared (absolute once
        installed; an offset from install before that)."""
        times = [0.0]
        times += [restart_at for __, __, restart_at in self.crashes]
        times += [end for __, __, __, end in self.partitions]
        times += [end for __, __, end in self.drops]
        times += [entry[-1] for entry in self.one_way]
        times += [entry[-1] for entry in self.flaps]
        times += [entry[-1] for entry in self.slow_links]
        times += [entry[-1] for entry in self.duplicates]
        times += [entry[-1] for entry in self.reorders]
        times += [entry[-1] for entry in self.limps]
        times += [restart_at for __, __, restart_at in self.shard_crashes]
        times += [end for __, __, end in self.map_staleness]
        times += [restart_at for __, __, restart_at, __ in self.rebalance_crashes]
        times += [at for at, __, __ in self.bad_deploys]
        times += [entry[-1] for entry in self.flaky_limps]
        return max(times) + (self.installed_at or 0.0)

    def install(self, runtime, coordinator, plane=None):
        """Arm the scenario on ``runtime`` via ``coordinator``'s plan.

        Generated times are *offsets*; they are rebased onto the
        current simulated time here, so a scenario can be installed on
        a testbed that has already been running.

        ``plane`` is an optional :class:`ShardedManagerPlane`; the
        shard-plane kinds (map staleness windows, mid-rebalance
        triggers) need it and are skipped without it — plain shard
        crashes install either way.
        """
        base = self.installed_at = runtime.sim.now
        for name, crash_at, restart_at in self.crashes:
            coordinator.crash_plan.schedule_outage(
                runtime.host(name), base + crash_at, base + restart_at
            )
        for prefixes_a, prefixes_b, start, end in self.partitions:
            runtime.network.faults.add_partition(
                PrefixPartition(
                    prefixes_a, prefixes_b, start=base + start, end=base + end
                )
            )
        for count, start, end in self.drops:
            runtime.network.faults.add_drop_rule(
                DropRule(count=count, start=base + start, end=base + end)
            )
        faults = runtime.network.faults
        for from_hosts, to_hosts, start, end in self.one_way:
            faults.add_partition(
                OneWayPartition(
                    [f"{name}/" for name in from_hosts],
                    [f"{name}/" for name in to_hosts],
                    start=base + start,
                    end=base + end,
                )
            )
        for host, rest, period, down, start, end in self.flaps:
            faults.add_partition(
                LinkFlap(
                    [f"{host}/"],
                    [f"{name}/" for name in rest],
                    period_s=period,
                    down_s=down,
                    start=base + start,
                    end=base + end,
                    label=f"flap:{host}",
                )
            )
        for host, rest, extra, jitter, rule_seed, start, end in self.slow_links:
            faults.add_delay_rule(
                SlowLink(
                    [f"{host}/"],
                    [f"{name}/" for name in rest],
                    extra_s=extra,
                    jitter_s=jitter,
                    seed=rule_seed,
                    start=base + start,
                    end=base + end,
                    label=f"slow:{host}",
                )
            )
        for probability, spread, rule_seed, start, end in self.duplicates:
            faults.add_duplicate_rule(
                DuplicateRule(
                    probability,
                    spread_s=spread,
                    seed=rule_seed,
                    start=base + start,
                    end=base + end,
                )
            )
        for probability, skew, rule_seed, start, end in self.reorders:
            faults.add_delay_rule(
                ReorderRule(
                    probability,
                    max_skew_s=skew,
                    seed=rule_seed,
                    start=base + start,
                    end=base + end,
                )
            )
        for host_name, factor, start, end in self.limps:
            runtime.sim.spawn(
                self._limp_window(runtime, host_name, factor, base + start, base + end),
                name=f"limp:{host_name}@{start:g}",
            )
        for name, crash_at, restart_at in self.shard_crashes:
            coordinator.crash_plan.schedule_outage(
                runtime.host(name), base + crash_at, base + restart_at
            )
        if self.map_staleness and plane is not None:
            for extra, start, end in self.map_staleness:
                plane.map.add_staleness_window(extra, base + start, base + end)
        for name, crash_at, restart_at, pick in self.rebalance_crashes:
            coordinator.crash_plan.schedule_outage(
                runtime.host(name), base + crash_at, base + restart_at
            )
            if plane is not None:
                runtime.sim.spawn(
                    self._rebalance_trigger(
                        runtime, plane, name, base + crash_at, pick
                    ),
                    name=f"rebalance:{name}@{crash_at:g}",
                )
        # bad_deploys are harness-driven (like degradations): staging
        # and adopting the degraded build needs a manager, which the
        # schedule does not hold.
        for host_name, factor, start, end in self.flaky_limps:
            runtime.sim.spawn(
                self._limp_window(runtime, host_name, factor, base + start, base + end),
                name=f"flaky-limp:{host_name}@{start:g}",
            )

    @staticmethod
    def _rebalance_trigger(runtime, plane, victim, crash_time, pick):
        """Process body: start a live range move just before a crash.

        Fires a hair *before* ``crash_time`` — inside the handoff's
        per-row copy window — so the crash lands while rows are still
        in flight.  The source shard is the one homed on the crash
        victim when there is one (the crash then always hits a handoff
        participant); ``pick`` deterministically selects otherwise, and
        the target is the source's successor in shard id order.
        Aborted handoffs (dead source or target) are the scenario
        working as intended, not an error.
        """
        from repro.core.shardplane import HandoffAborted
        from repro.legion.errors import LegionError
        from repro.net import TransportError

        sim = runtime.sim
        lead = min(0.0002, max(0.0, crash_time - sim.now))
        yield sim.timeout(max(0.0, crash_time - sim.now - lead), daemon=True)
        shard_ids = sorted(plane.shard_ids)
        if len(shard_ids) < 2:
            return
        source = None
        for shard_id in shard_ids:
            manager = plane.shards.get(shard_id)
            if manager is not None and manager.host.name == victim:
                source = shard_id
                break
        if source is None:
            source = shard_ids[int(pick * len(shard_ids)) % len(shard_ids)]
        target = shard_ids[(shard_ids.index(source) + 1) % len(shard_ids)]
        spans = plane.map.current.spans_of(source)
        if not spans:
            return
        lo, hi = spans[0]
        if hi - lo < 2:
            return
        half = (lo + (hi - lo) // 2, hi)
        try:
            yield from plane.move_range(half, target, mode="fast")
        except (HandoffAborted, LegionError, TransportError, ValueError, KeyError):
            # The crash landed mid-handoff and aborted it — exactly the
            # scenario this kind exists to exercise.
            return

    @staticmethod
    def _limp_window(runtime, host_name, factor, start, end):
        """Process body: degrade a host's service times, then heal."""
        sim = runtime.sim
        yield sim.timeout(start - sim.now, daemon=True)
        host = runtime.host(host_name)
        host.set_limp(factor, slow_nic=True)
        yield sim.timeout(end - sim.now, daemon=True)
        host.clear_limp()

    def __repr__(self):
        gray = (
            len(self.one_way)
            + len(self.flaps)
            + len(self.slow_links)
            + len(self.duplicates)
            + len(self.reorders)
            + len(self.limps)
        )
        shard = (
            len(self.shard_crashes)
            + len(self.map_staleness)
            + len(self.rebalance_crashes)
        )
        controller = len(self.bad_deploys) + len(self.flaky_limps)
        return (
            f"<ChaosSchedule crashes={len(self.crashes)} "
            f"partitions={len(self.partitions)} drops={len(self.drops)} "
            f"degradations={len(self.degradations)} gray={gray} "
            f"shard={shard} controller={controller}>"
        )


def drive_to_convergence(
    runtime, type_name, journal=None, retry_policy=None, max_rounds=8, relays=None
):
    """Generator: repair and re-propagate until the fleet converges.

    Meant for *after* faults heal.  Each round: recover the manager
    from its journal if it is dead, rebuild crash-lost instances on
    up hosts, then run the ack-tracked propagation of the current
    version.  The propagation is driven under explicit converge
    semantics — a wave that previously aborted keeps its abortive
    policy on its tracker, and convergence is this function's whole
    contract, so the per-call override re-drives it to completion
    instead of re-tripping the abort.  ``relays`` is an optional host
    -> relay-LOID directory: dead relays are re-activated each round
    before propagating, so batched waves keep working through host
    restarts.  Returns the final :class:`PropagationTracker` (check
    ``all_acked``).
    """
    from repro.core.manager import WavePolicy
    from repro.core.recovery import recover_manager

    tracker = None
    for __ in range(max_rounds):
        manager = runtime.class_of(type_name)
        if not manager.is_active:
            if journal is None:
                raise RuntimeError(
                    f"manager for {type_name!r} is dead and no journal was given"
                )
            manager = yield from recover_manager(runtime, journal)
            if relays:
                # A recovered manager starts without relay routing;
                # re-enable it so waves stay host-batched.
                manager.use_relays(relays)
        coordinator = ChaosCoordinator(runtime, auto_recover=False, relays=relays)
        yield from coordinator.restore_relays()
        yield from coordinator.restore_components()
        yield from coordinator.recover_instances()
        # Leave canary-frozen instances alone: their rollout's gate
        # runner owns them until it completes or aborts.
        frozen = manager.canary_frozen_loids()
        loids = None
        if frozen:
            loids = [
                loid for loid in manager.instance_loids() if loid not in frozen
            ]
        tracker = yield from manager.propagate_version(
            manager.current_version,
            loids=loids,
            retry_policy=retry_policy,
            wave_policy=WavePolicy.converge(),
        )
        if tracker.all_acked:
            return tracker
    return tracker
