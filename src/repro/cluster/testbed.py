"""Testbed builders.

A :class:`Testbed` bundles the simulator, network fabric, hosts,
vaults, and calibration into one handle the Legion runtime builds on.
:func:`build_centurion` reproduces the paper's testbed subset (§4):
"16 Dual Processor 400 MHz Pentium II's ... connected with a 100 Mbps
Switched Ethernet".
"""

from repro.cluster.calibration import Calibration
from repro.cluster.host import Host
from repro.cluster.vault import Vault
from repro.net import Network
from repro.sim import DeterministicRNG, Simulator


class Testbed:
    """A simulated cluster ready to run a Legion system.

    Attributes
    ----------
    sim:
        The discrete-event simulator.
    network:
        The switched-LAN fabric.
    hosts:
        Host name -> :class:`Host`.
    vaults:
        Host name -> :class:`Vault` (one vault per host).
    calibration:
        The cost model all components share.
    rng:
        Root deterministic RNG.
    """

    # Not a test class, despite the name (keeps pytest collection quiet).
    __test__ = False

    def __init__(self, calibration=None, seed=0):
        self.calibration = calibration or Calibration()
        self.rng = DeterministicRNG(seed=seed)
        self.sim = Simulator()
        self.network = Network(
            self.sim,
            latency_s=self.calibration.network_latency_s,
            bandwidth_bps=self.calibration.network_bandwidth_bps,
        )
        self.hosts = {}
        self.vaults = {}

    def add_host(self, name, architecture=None, cpu_factor=1.0):
        """Create a host (and its vault) and return the host."""
        if name in self.hosts:
            raise ValueError(f"host {name!r} already exists")
        architecture = architecture or self.calibration.architectures[0]
        host = Host(
            self.sim,
            name,
            self.calibration,
            architecture=architecture,
            cpu_factor=cpu_factor,
            rng=self.rng,
        )
        host.attach_network(self.network)
        self.hosts[name] = host
        self.vaults[name] = Vault(host)
        return host

    def host_names(self):
        """Host names in creation order."""
        return list(self.hosts)

    def run(self, until=None):
        """Convenience passthrough to the simulator."""
        return self.sim.run(until=until)

    def __repr__(self):
        return f"<Testbed hosts={len(self.hosts)} t={self.sim.now:g}>"


def build_lan(host_count, calibration=None, seed=0, architectures=None):
    """Build a generic switched-LAN testbed with ``host_count`` hosts.

    ``architectures`` may be a sequence cycled across hosts to model a
    heterogeneous cluster (used by the migration example).
    """
    if host_count < 1:
        raise ValueError(f"need at least one host, got {host_count}")
    testbed = Testbed(calibration=calibration, seed=seed)
    pool = architectures or testbed.calibration.architectures
    for index in range(host_count):
        testbed.add_host(f"host{index:02d}", architecture=pool[index % len(pool)])
    return testbed


def build_wan(
    site_count,
    hosts_per_site,
    calibration=None,
    seed=0,
    intersite_latency_s=0.030,
):
    """Build a multi-site wide-area testbed.

    Hosts are named ``s<site>h<index>``; every address created on a
    host (its endpoints are prefixed with the host name) inherits the
    host's site, so cross-site traffic pays ``intersite_latency_s``
    one-way (default 30 ms — a late-90s coast-to-coast link) while
    intra-site traffic stays at LAN latency.  Runtime services
    (binding agent, stores) live in the default ``core`` site,
    co-located with site 0.
    """
    if site_count < 1 or hosts_per_site < 1:
        raise ValueError("need at least one site and one host per site")
    testbed = Testbed(calibration=calibration, seed=seed)
    network = testbed.network
    sites = [f"site{index}" for index in range(site_count)]
    for site_index, site in enumerate(sites):
        for host_index in range(hosts_per_site):
            name = f"s{site_index}h{host_index:02d}"
            testbed.add_host(name)
            network.assign_site(name, site)
    for index_a, site_a in enumerate(sites):
        for site_b in sites[index_a + 1 :]:
            network.set_intersite_latency(site_a, site_b, intersite_latency_s)
        # Core services sit at site 0's facility.
        if site_a != sites[0]:
            network.set_intersite_latency(site_a, network.DEFAULT_SITE, intersite_latency_s)
    return testbed


def build_centurion(calibration=None, seed=0):
    """Build the paper's testbed subset: 16 nodes on 100 Mbps Ethernet.

    Dual processors are modeled as cpu_factor 1.0 for the serial costs
    the experiments exercise (the study's measurements are not
    parallelism-bound).
    """
    testbed = Testbed(calibration=calibration, seed=seed)
    for index in range(16):
        testbed.add_host(f"centurion{index:02d}", architecture="x86-linux")
    return testbed
