"""Per-host file caches for implementations and components.

Legion downloads an object's implementation binary to the host where
the object activates; subsequent activations of objects with the same
implementation reuse the cached file.  The paper's evolution-cost
results hinge on exactly this distinction: incorporating a *cached*
component costs ~200 microseconds, while an uncached one pays the full
download path.
"""


class FileCache:
    """A host-local cache of named byte blobs (ids -> sizes).

    Content is never stored for real; the cache tracks which
    implementation ids are present locally and how big they are, which
    is all the cost model needs.
    """

    def __init__(self, name="cache", capacity_bytes=None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity_bytes}")
        self._name = name
        self._capacity_bytes = capacity_bytes
        self._entries = {}
        self._lru = []
        self._metrics = None
        self._metrics_prefix = "cache"
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def bind_counters(self, registry, prefix="cache"):
        """Mirror hit/miss/eviction counts into a shared registry.

        Per-cache integers keep working for local assertions; the
        registry gets the fleet-wide aggregate (``<prefix>.hits`` etc.)
        that the obs report surfaces.
        """
        self._metrics = registry
        self._metrics_prefix = prefix

    def _metric(self, name):
        if self._metrics is not None:
            self._metrics.counter(f"{self._metrics_prefix}.{name}").increment()

    @property
    def used_bytes(self):
        """Total bytes of cached entries."""
        return sum(self._entries.values())

    @property
    def capacity_bytes(self):
        """Cache capacity, or None if unbounded."""
        return self._capacity_bytes

    def __contains__(self, blob_id):
        return blob_id in self._entries

    def __len__(self):
        return len(self._entries)

    def lookup(self, blob_id):
        """Return the cached size for ``blob_id`` or None, counting hit/miss."""
        if blob_id in self._entries:
            self.record_hit(blob_id)
            return self._entries[blob_id]
        self.record_miss()
        return None

    def peek(self, blob_id):
        """The cached size for ``blob_id`` or None — no accounting.

        For callers that must separate *presence checks* from *outcome
        accounting*: the single-flight fill path peeks while deciding
        who fetches, then records exactly one hit or miss per
        incorporation (a coalesced waiter counts as a hit — the blob
        reached it through the cache, not through its own fetch).
        """
        return self._entries.get(blob_id)

    def record_hit(self, blob_id):
        """Count one hit against ``blob_id`` and refresh its recency."""
        self.hits += 1
        self._metric("hits")
        self._touch(blob_id)

    def record_miss(self):
        """Count one miss (the caller is about to fetch and insert)."""
        self.misses += 1
        self._metric("misses")

    def insert(self, blob_id, size_bytes):
        """Add (or refresh) an entry, evicting LRU entries if needed."""
        if size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {size_bytes}")
        if self._capacity_bytes is not None and size_bytes > self._capacity_bytes:
            raise ValueError(f"{blob_id!r} ({size_bytes}B) exceeds cache capacity")
        self._entries[blob_id] = size_bytes
        self._touch(blob_id)
        self._evict_to_fit()

    def evict(self, blob_id):
        """Drop ``blob_id`` if present; returns True if it was cached."""
        if blob_id not in self._entries:
            return False
        del self._entries[blob_id]
        self._lru.remove(blob_id)
        return True

    def clear(self):
        """Empty the cache (used to force cold-start experiments)."""
        self._entries.clear()
        self._lru.clear()

    def _touch(self, blob_id):
        if blob_id in self._lru:
            self._lru.remove(blob_id)
        self._lru.append(blob_id)

    def _evict_to_fit(self):
        if self._capacity_bytes is None:
            return
        while self.used_bytes > self._capacity_bytes and len(self._lru) > 1:
            victim = self._lru.pop(0)
            del self._entries[victim]
            self.evictions += 1
            self._metric("evictions")

    def __repr__(self):
        return f"<FileCache {self._name} entries={len(self._entries)} bytes={self.used_bytes}>"
