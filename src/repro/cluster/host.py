"""Hosts: the machines Legion objects run on.

A :class:`Host` models one testbed node: it has an architecture tag
(used by implementation types), a CPU-speed factor, a network port, a
local file cache, and a table of running :class:`HostProcess` entries —
one per active Legion object hosted there.

Process creation is where object-activation cost lives: spawning a
process charges the calibrated ``process_spawn_s``.
"""

import itertools

from repro.cluster.filecache import FileCache
from repro.sim.errors import SimulationError

_process_counter = itertools.count(1)


class HostDown(SimulationError):
    """An operation was attempted on a crashed host."""

    def __init__(self, host_name, operation):
        super().__init__(f"host {host_name!r} is down ({operation})")
        self.host_name = host_name
        self.operation = operation


class HostProcess:
    """One OS process on a host, backing one active Legion object."""

    def __init__(self, host, owner_loid):
        self.pid = next(_process_counter)
        self.host = host
        self.owner_loid = owner_loid
        self.alive = True

    def kill(self):
        """Terminate the process (its object becomes unreachable)."""
        self.alive = False
        self.host._reap(self)

    def __repr__(self):
        state = "alive" if self.alive else "dead"
        return f"<HostProcess pid={self.pid} on {self.host.name} {state}>"


class Host:
    """A simulated machine.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Unique host name; also its base network address.
    calibration:
        The cost model in effect.
    architecture:
        Architecture tag matched against implementation types.
    cpu_factor:
        Relative CPU speed; simulated CPU work divides by this.
    rng:
        Deterministic RNG used for cost jitter.
    """

    def __init__(self, sim, name, calibration, architecture="x86-linux", cpu_factor=1.0, rng=None):
        if cpu_factor <= 0:
            raise ValueError(f"cpu_factor must be positive, got {cpu_factor}")
        self._sim = sim
        self._name = name
        self._calibration = calibration
        self._architecture = architecture
        self._cpu_factor = cpu_factor
        self._rng = rng
        self._processes = {}
        self._network = None
        self._up = True
        self._incarnation = 1
        self._limp_factor = 1.0
        self._blob_fills = {}
        self.cache = FileCache(name=f"{name}.cache")
        self.processes_spawned = 0
        self.crash_count = 0
        self.last_crash_at = None
        self.last_restart_at = None
        #: Cumulative seconds spent down (closed outages only); an
        #: availability ledger for MTTR-style reporting.
        self.total_downtime_s = 0.0

    @property
    def sim(self):
        """The owning simulator."""
        return self._sim

    @property
    def name(self):
        """Unique host name."""
        return self._name

    @property
    def calibration(self):
        """The cost model in effect on this host."""
        return self._calibration

    @property
    def architecture(self):
        """Architecture tag for implementation-type matching."""
        return self._architecture

    @property
    def processes(self):
        """Mapping of pid -> live :class:`HostProcess`."""
        return dict(self._processes)

    @property
    def is_up(self):
        """False between :meth:`crash` and :meth:`restart`."""
        return self._up

    @property
    def incarnation(self):
        """Monotonic boot counter; bumps on every :meth:`restart`."""
        return self._incarnation

    def attach_network(self, network):
        """Wire the fabric in so a crash can sever this host's endpoints."""
        self._network = network
        self.cache.bind_counters(network.metrics)

    # ------------------------------------------------------------------
    # Single-flight blob fills (content-addressed component cache)
    # ------------------------------------------------------------------

    def blob_fill_gate(self, blob_id):
        """Claim (or join) the in-flight fill of ``blob_id``.

        Returns ``(leader, gate)``: the first caller per blob becomes
        the leader (it fetches and inserts), everyone else gets the
        same gate event to wait on.  With many colocated instances
        evolving at once, this is what turns O(instances) redundant ICO
        downloads into one network crossing per host.  A waiter must
        re-check the cache after the gate fires — the leader may have
        failed, in which case the waiter claims leadership itself.
        """
        if not self._up:
            raise HostDown(self._name, "blob_fill_gate")
        gate = self._blob_fills.get(blob_id)
        if gate is not None:
            return False, gate
        gate = self._sim.event(name=f"{self._name}.fill:{blob_id}")
        self._blob_fills[blob_id] = gate
        return True, gate

    def blob_fill_done(self, blob_id):
        """Release the fill gate for ``blob_id`` (success or failure).

        Leaders call this from a ``finally`` so a failed fetch wakes
        the waiters — one of them re-checks and takes over.
        """
        gate = self._blob_fills.pop(blob_id, None)
        if gate is not None and not gate.triggered:
            gate.succeed(None)

    def blob_fills_in_flight(self):
        """Blob ids currently being filled (introspection for tests)."""
        return sorted(self._blob_fills)

    def process_for(self, loid):
        """The live process backing ``loid``, or None."""
        for process in self._processes.values():
            if process.owner_loid == loid:
                return process
        return None

    # ------------------------------------------------------------------
    # Crash faults
    # ------------------------------------------------------------------

    def crash(self):
        """Fail-stop the host *now*: every process dies, every endpoint
        attached under ``{name}/`` is closed, all in-flight and future
        traffic to this host is lost.  Idempotent while down.

        This is the machine-level act only — object-table bookkeeping
        (deactivating :class:`InstanceRecord`s, rebinding) belongs to
        the runtime layer (see :mod:`repro.cluster.chaos`).
        """
        if not self._up:
            return
        self._up = False
        self.crash_count += 1
        self.last_crash_at = self._sim.now
        for process in list(self._processes.values()):
            process.alive = False
        self._processes.clear()
        # Wake any fill waiters so their generators run on and observe
        # the crash (closed endpoints) instead of dangling on a gate
        # whose leader died with the machine.
        fills, self._blob_fills = self._blob_fills, {}
        for gate in fills.values():
            if not gate.triggered:
                gate.succeed(None)
        if self._network is not None:
            self._network.close_endpoints_with_prefix(f"{self._name}/")
            self._network.count("host.crashes")

    def restart(self):
        """Boot the host again under a new incarnation.

        Memory is gone: the process table starts empty and nothing is
        reattached to the fabric — recovery code reactivates objects
        explicitly (fresh endpoints, fresh addresses).  The file cache
        and vault survive, like a real disk across a reboot.
        """
        if self._up:
            raise SimulationError(f"host {self._name!r} is already up")
        self._up = True
        self._incarnation += 1
        self.last_restart_at = self._sim.now
        if self.last_crash_at is not None:
            self.total_downtime_s += self._sim.now - self.last_crash_at
        if self._network is not None:
            self._network.count("host.restarts")
        return self._incarnation

    def _jitter(self, value):
        if self._rng is None:
            return value
        return self._rng.jitter(f"host:{self._name}", value, self._calibration.coarse_jitter)

    # ------------------------------------------------------------------
    # Gray faults: the limping host
    # ------------------------------------------------------------------

    @property
    def limp_factor(self):
        """Service-time multiplier; 1.0 means healthy."""
        return self._limp_factor

    def set_limp(self, factor, slow_nic=False):
        """Degrade this host: CPU work takes ``factor`` times longer.

        Unlike :meth:`crash`, a limping host stays up and keeps
        answering — just slowly.  That asymmetry (alive but late) is
        the gray failure the adaptive layers must distinguish from
        death.  With ``slow_nic`` the degradation also covers the NIC:
        egress serialization on every current and future port under
        this host's prefix slows by the same factor.
        """
        if factor < 1.0:
            raise ValueError(f"limp factor must be >= 1.0, got {factor}")
        self._limp_factor = factor
        if self._network is not None:
            if factor > 1.0:
                self._network.count("host.limps")
            if slow_nic or factor == 1.0:
                self._network.set_egress_slowdown(f"{self._name}/", factor)

    def clear_limp(self):
        """Restore healthy service times (and NIC, if it was slowed)."""
        self.set_limp(1.0)

    def cpu_work(self, seconds):
        """Return a timeout event charging ``seconds`` of CPU time.

        The charge scales inversely with the host's CPU factor, so the
        same work is faster on a faster machine — and inflates by the
        limp factor while the host is degraded.
        """
        if seconds < 0:
            raise ValueError(f"cpu work must be >= 0, got {seconds}")
        return self._sim.timeout(seconds * self._limp_factor / self._cpu_factor)

    def spawn_process(self, owner_loid):
        """Process body: create an OS process for a Legion object.

        Charges the calibrated process-creation cost and returns the
        new :class:`HostProcess`.  Drive with ``yield from``.
        """
        if not self._up:
            raise HostDown(self._name, "spawn_process")
        yield self.cpu_work(self._jitter(self._calibration.process_spawn_s))
        if not self._up:
            # Crashed while the spawn was in flight.
            raise HostDown(self._name, "spawn_process")
        process = HostProcess(self, owner_loid)
        self._processes[process.pid] = process
        self.processes_spawned += 1
        return process

    def _reap(self, process):
        self._processes.pop(process.pid, None)

    def __repr__(self):
        state = "up" if self._up else "down"
        return (
            f"<Host {self._name} arch={self._architecture} "
            f"procs={len(self._processes)} {state} inc={self._incarnation}>"
        )


class CrashPlan:
    """Declarative schedule of host crashes and restarts.

    Mirrors :class:`~repro.net.faults.FaultPlan` for machine faults:
    tests declare *when* hosts die and come back, then run the
    simulation.  Each entry becomes a simulator process, so crashes
    interleave with whatever workload is running.

    ``on_crash`` / ``on_restart`` hooks (``hook(host)``; a generator
    return value is driven to completion) let higher layers reconcile —
    e.g. the chaos harness deactivates the dead host's object records
    on crash and replays the manager journal on restart.
    """

    def __init__(self, sim, on_crash=None, on_restart=None):
        self._sim = sim
        self._on_crash = on_crash
        self._on_restart = on_restart
        self.crashes_fired = 0
        self.restarts_fired = 0

    def schedule_crash(self, host, at):
        """Crash ``host`` at simulated time ``at``."""
        if at < self._sim.now:
            raise ValueError(f"cannot schedule a crash in the past ({at} < {self._sim.now})")
        return self._sim.spawn(
            self._fire(host, at, crash=True), name=f"crash:{host.name}@{at:g}"
        )

    def schedule_restart(self, host, at):
        """Restart ``host`` at simulated time ``at``."""
        if at < self._sim.now:
            raise ValueError(f"cannot schedule a restart in the past ({at} < {self._sim.now})")
        return self._sim.spawn(
            self._fire(host, at, crash=False), name=f"restart:{host.name}@{at:g}"
        )

    def schedule_outage(self, host, crash_at, restart_at):
        """Crash then restart ``host`` (restart must come after crash)."""
        if restart_at <= crash_at:
            raise ValueError(
                f"restart_at must be after crash_at ({restart_at} <= {crash_at})"
            )
        self.schedule_crash(host, crash_at)
        self.schedule_restart(host, restart_at)

    def _fire(self, host, at, crash):
        yield self._sim.timeout(at - self._sim.now)
        if crash:
            host.crash()
            self.crashes_fired += 1
            hook = self._on_crash
        else:
            host.restart()
            self.restarts_fired += 1
            hook = self._on_restart
        if hook is not None:
            result = hook(host)
            if result is not None and hasattr(result, "__next__"):
                yield from result
