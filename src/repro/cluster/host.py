"""Hosts: the machines Legion objects run on.

A :class:`Host` models one testbed node: it has an architecture tag
(used by implementation types), a CPU-speed factor, a network port, a
local file cache, and a table of running :class:`HostProcess` entries —
one per active Legion object hosted there.

Process creation is where object-activation cost lives: spawning a
process charges the calibrated ``process_spawn_s``.
"""

import itertools

from repro.cluster.filecache import FileCache

_process_counter = itertools.count(1)


class HostProcess:
    """One OS process on a host, backing one active Legion object."""

    def __init__(self, host, owner_loid):
        self.pid = next(_process_counter)
        self.host = host
        self.owner_loid = owner_loid
        self.alive = True

    def kill(self):
        """Terminate the process (its object becomes unreachable)."""
        self.alive = False
        self.host._reap(self)

    def __repr__(self):
        state = "alive" if self.alive else "dead"
        return f"<HostProcess pid={self.pid} on {self.host.name} {state}>"


class Host:
    """A simulated machine.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Unique host name; also its base network address.
    calibration:
        The cost model in effect.
    architecture:
        Architecture tag matched against implementation types.
    cpu_factor:
        Relative CPU speed; simulated CPU work divides by this.
    rng:
        Deterministic RNG used for cost jitter.
    """

    def __init__(self, sim, name, calibration, architecture="x86-linux", cpu_factor=1.0, rng=None):
        if cpu_factor <= 0:
            raise ValueError(f"cpu_factor must be positive, got {cpu_factor}")
        self._sim = sim
        self._name = name
        self._calibration = calibration
        self._architecture = architecture
        self._cpu_factor = cpu_factor
        self._rng = rng
        self._processes = {}
        self.cache = FileCache(name=f"{name}.cache")
        self.processes_spawned = 0

    @property
    def sim(self):
        """The owning simulator."""
        return self._sim

    @property
    def name(self):
        """Unique host name."""
        return self._name

    @property
    def calibration(self):
        """The cost model in effect on this host."""
        return self._calibration

    @property
    def architecture(self):
        """Architecture tag for implementation-type matching."""
        return self._architecture

    @property
    def processes(self):
        """Mapping of pid -> live :class:`HostProcess`."""
        return dict(self._processes)

    def _jitter(self, value):
        if self._rng is None:
            return value
        return self._rng.jitter(f"host:{self._name}", value, self._calibration.coarse_jitter)

    def cpu_work(self, seconds):
        """Return a timeout event charging ``seconds`` of CPU time.

        The charge scales inversely with the host's CPU factor, so the
        same work is faster on a faster machine.
        """
        if seconds < 0:
            raise ValueError(f"cpu work must be >= 0, got {seconds}")
        return self._sim.timeout(seconds / self._cpu_factor)

    def spawn_process(self, owner_loid):
        """Process body: create an OS process for a Legion object.

        Charges the calibrated process-creation cost and returns the
        new :class:`HostProcess`.  Drive with ``yield from``.
        """
        yield self.cpu_work(self._jitter(self._calibration.process_spawn_s))
        process = HostProcess(self, owner_loid)
        self._processes[process.pid] = process
        self.processes_spawned += 1
        return process

    def _reap(self, process):
        self._processes.pop(process.pid, None)

    def __repr__(self):
        return f"<Host {self._name} arch={self._architecture} procs={len(self._processes)}>"
