"""Vaults: persistent storage for object state.

In Legion, a deactivated object's state lives in an *object persistent
representation* (OPR) kept by a vault object.  The baseline evolution
pipeline (capture state, re-create process, restore state) reads and
writes OPRs; the cost model charges fixed transaction overhead plus a
throughput term, because the paper calls state capture and recovery
"object-specific parameters that depend on the size and format of the
object's contained data".
"""


class OPR:
    """An object persistent representation: one object's saved state."""

    def __init__(self, loid, state, size_bytes):
        self.loid = loid
        self.state = state
        self.size_bytes = size_bytes

    def __repr__(self):
        return f"<OPR {self.loid} {self.size_bytes}B>"


class Vault:
    """Persistent storage co-located with a host.

    Parameters
    ----------
    host:
        The host whose disk backs this vault.
    """

    def __init__(self, host):
        self._host = host
        self._sim = host.sim
        self._calibration = host.calibration
        self._oprs = {}
        self.writes = 0
        self.reads = 0

    @property
    def host(self):
        """The backing host."""
        return self._host

    def holds(self, loid):
        """True if an OPR for ``loid`` is stored here."""
        return loid in self._oprs

    def _disk_time(self, size_bytes):
        calibration = self._calibration
        return calibration.disk_seek_s + size_bytes / calibration.disk_bandwidth_bps

    def store(self, loid, state, size_bytes):
        """Process body: write an OPR; drive with ``yield from``."""
        if size_bytes < 0:
            raise ValueError(f"state size must be >= 0, got {size_bytes}")
        yield self._sim.timeout(self._disk_time(size_bytes))
        self._oprs[loid] = OPR(loid, state, size_bytes)
        self.writes += 1

    def load(self, loid):
        """Process body: read an OPR back; drive with ``yield from``.

        Raises ``KeyError`` if no OPR for ``loid`` is stored here.
        """
        opr = self._oprs[loid]
        yield self._sim.timeout(self._disk_time(opr.size_bytes))
        self.reads += 1
        return opr

    def discard(self, loid):
        """Remove the OPR for ``loid`` if present."""
        self._oprs.pop(loid, None)

    def __repr__(self):
        return f"<Vault on {self._host.name} oprs={len(self._oprs)}>"
