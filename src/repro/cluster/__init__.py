"""Simulated cluster: hosts, vaults, caches, and the Centurion testbed.

This package models the machines the paper's performance study ran on
(§4: 16 dual-processor 400 MHz Pentium IIs with 256 MB RAM on 100 Mbps
switched Ethernet) plus the storage abstractions Legion needs: *vaults*
for persistent object state and per-host file caches for implementation
binaries and components.

All cost constants are centralized in :mod:`repro.cluster.calibration`
and are documented against the sentence of the paper they reproduce.
"""

from repro.cluster.calibration import Calibration
from repro.cluster.controller import ControllerContext, ReactiveController
from repro.cluster.coordination import ConvergenceGuard, convergence_guard
from repro.cluster.failure_detector import HeartbeatFailureDetector
from repro.cluster.filecache import FileCache
from repro.cluster.host import CrashPlan, Host, HostDown, HostProcess
from repro.cluster.relay import (
    HostRelay,
    build_relay_tree,
    deploy_relays,
    restore_relays,
)
from repro.cluster.supervisor import Supervisor
from repro.cluster.testbed import Testbed, build_centurion, build_lan, build_wan
from repro.cluster.vault import Vault

__all__ = [
    "Calibration",
    "ControllerContext",
    "ConvergenceGuard",
    "CrashPlan",
    "FileCache",
    "HeartbeatFailureDetector",
    "Host",
    "HostDown",
    "HostProcess",
    "HostRelay",
    "ReactiveController",
    "Supervisor",
    "Testbed",
    "Vault",
    "build_centurion",
    "build_lan",
    "build_relay_tree",
    "build_wan",
    "convergence_guard",
    "deploy_relays",
    "restore_relays",
]
