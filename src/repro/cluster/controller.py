"""The reactive self-healing controller: sense → decide → act.

The paper's configuration manager is an *actuator*: it can evolve,
migrate, and roll back a fleet, but only when an operator tells it to.
Every fault-tolerance layer grown since (supervisor failover, canary
gates, gray-failure quarantine) reacts to one hazard it was built for.
The :class:`ReactiveController` closes the remaining loop: a daemon
per manager plane that *senses* degradation signals (health-score
transitions, SLO breaches, detector suspicions, crash/restart events —
all via the :class:`~repro.obs.bus.EventBus`), *decides* what to do
through pluggable :mod:`~repro.core.policies.remediation` policies,
and *acts* exclusively through the existing transactional machinery.

Safety is layered, in order of evaluation each tick:

1. **Liveness/identity** — the controller re-resolves the live manager
   every tick; on identity change (a promotion happened) it first
   garbage-collects intents the old term left open.
2. **Deference** — while the supervisor is promoting or converging the
   controller stands down entirely; finer-grained overlap is handled
   by the shared :class:`~repro.cluster.coordination.ConvergenceGuard`
   (all-or-nothing LOID claims; deny → defer, never run alongside).
3. **Lease** — a plane-level remediation lease, journaled on the
   manager and fenced by its term.  A zombie controller still holding
   a lease minted under the deposed primary's term finds
   ``holds_remediation_lease`` false against the promotee and goes
   quiet; the promoted supervisor can never fight a ghost.
4. **Rate limits** — a token budget per sliding window plus a
   per-(policy, target) cooldown keep a flapping signal from turning
   into remediation churn (the oscillation amplifier every reactive
   controller must not become).
5. **Intent journaling** — every admitted action is write-ahead logged
   (``begin_remediation``) before its first RPC and closed after, so a
   recovered manager knows exactly which automated actions were in
   flight and ``gc_remediations`` can orphan the unfinishable ones.
"""

from collections import deque

from repro.cluster.coordination import convergence_guard
from repro.core.policies.remediation import default_remediation_policies

#: EWMA smoothing for per-shard wave durations (RebalanceHotShard's
#: signal).  0.3 ≈ the last ~5 waves dominate.
_WAVE_EWMA_ALPHA = 0.3


class ReactiveController:
    """Self-healing daemon for one manager plane.

    Parameters
    ----------
    runtime:
        The legion runtime hosting the managed type.
    type_name:
        The DCDO type to watch; the live manager is re-resolved from
        the runtime's class registry every tick, so promotions are
        followed automatically.
    plane:
        Optional :class:`~repro.core.shardplane.ShardedManagerPlane`;
        enables shard policies and makes the lease live on the lowest
        live shard's manager.
    supervisor:
        Optional supervisor to defer to explicitly (its promote /
        converge flags); without it, deference still happens through
        the convergence guard.
    policies:
        Remediation policies, default the full registry
        (:func:`default_remediation_policies`).
    interval_s / lease_ttl_s:
        Tick period and lease time-to-live.  The lease is renewed
        every tick, so ``lease_ttl_s`` only matters across controller
        death: it bounds how long the plane stays formally "owned" by
        a remediator that stopped renewing.
    budget / budget_window_s:
        At most ``budget`` remediation actions per sliding window.
    retry_policy:
        Passed to rollback waves a policy originates.
    """

    def __init__(
        self,
        runtime,
        type_name,
        plane=None,
        supervisor=None,
        policies=None,
        interval_s=1.0,
        lease_ttl_s=30.0,
        budget=4,
        budget_window_s=60.0,
        retry_policy=None,
        name=None,
    ):
        self.runtime = runtime
        self.type_name = type_name
        self.plane = plane
        self.supervisor = supervisor
        self.policies = (
            list(policies) if policies is not None else default_remediation_policies()
        )
        self.interval_s = interval_s
        self.lease_ttl_s = lease_ttl_s
        self.budget = budget
        self.budget_window_s = budget_window_s
        self.retry_policy = retry_policy
        self.name = name or f"controller:{type_name}"

        #: Remediation timeline: one dict per executed intent
        #: (at/policy/kind/target/outcome/result) — the drill example
        #: and reports print this.
        self.remediation_log = []
        #: shard_id -> {"ewma": s, "samples": n} wave-duration stats,
        #: folded from ``wave.complete`` events.
        self.shard_wave_stats = {}

        self._inbox = deque(maxlen=512)
        self._cooldowns = {}  # (policy, target) -> last action time
        self._recent_actions = deque()  # admission times, for the budget
        self._last_manager = None
        self._intent_seq = 0
        self._stopped = False
        self._subscribed = False
        self._process = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Subscribe to the bus and spawn the control loop; returns self."""
        self._subscribe()
        self._process = self.runtime.sim.spawn(
            self._run(), name=f"controller:{self.type_name}"
        )
        return self

    def stop(self):
        """Stop the loop and release the lease on the live manager."""
        self._stopped = True
        if self._subscribed:
            self.runtime.network.bus.unsubscribe("*", self._on_event)
            self._subscribed = False
        manager = self._resolve_manager()
        if manager is not None and not manager.deposed:
            manager.release_remediation_lease(self.name)

    # ------------------------------------------------------------------
    # Sense
    # ------------------------------------------------------------------

    def _subscribe(self):
        if not self._subscribed:
            self.runtime.network.bus.subscribe("*", self._on_event)
            self._subscribed = True

    def _on_event(self, event):
        """Bus callback: record only — all action happens in our tick."""
        self._inbox.append(event)
        if event.topic == "wave.complete":
            shard_id = event.details.get("shard_id")
            duration = event.details.get("duration_s")
            if shard_id is not None and duration is not None:
                entry = self.shard_wave_stats.setdefault(
                    shard_id, {"ewma": 0.0, "samples": 0}
                )
                if entry["samples"] == 0:
                    entry["ewma"] = duration
                else:
                    entry["ewma"] += _WAVE_EWMA_ALPHA * (duration - entry["ewma"])
                entry["samples"] += 1

    def _drain(self):
        events = list(self._inbox)
        self._inbox.clear()
        return events

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def _run(self):
        sim = self.runtime.sim
        while not self._stopped:
            yield sim.timeout(self.interval_s, daemon=True)
            if self._stopped:
                break
            try:
                yield from self._tick()
            except Exception:
                # A tick must never kill the daemon: the failed action
                # was journaled and will be orphaned/repaired; the next
                # tick senses whatever state the failure left behind.
                self.runtime.network.count("controller.tick_errors")

    def _resolve_manager(self):
        if self.plane is not None:
            ids = self.plane.shard_ids
            if not ids:
                return None
            return self.plane.shards.get(ids[0])
        if self.supervisor is not None and self.supervisor.manager is not None:
            return self.supervisor.manager
        try:
            return self.runtime.class_of(self.type_name)
        except Exception:
            return None

    def _supervisor_busy(self):
        sup = self.supervisor
        if sup is not None and (
            getattr(sup, "_promote_in_progress", False)
            or getattr(sup, "_converging", False)
        ):
            return True
        return convergence_guard(self.runtime).busy("supervisor:")

    def _tick(self):
        network = self.runtime.network
        manager = self._resolve_manager()
        if manager is None or manager.deposed or not manager.is_active:
            network.count("controller.skipped_no_manager")
            return
        if manager is not self._last_manager:
            # New identity ⇒ a promotion or recovery happened since we
            # last acted.  Orphan whatever the old term left open
            # before deciding anything against the new primary.
            if self._last_manager is not None:
                orphaned = manager.gc_remediations()
                if orphaned:
                    network.count("controller.gc_orphaned", len(orphaned))
            self._last_manager = manager
        if self._supervisor_busy():
            network.count("controller.deferred")
            return
        if not manager.acquire_remediation_lease(self.name, ttl_s=self.lease_ttl_s):
            network.count("controller.lease_denied")
            return

        events = self._drain()
        ctx = ControllerContext(
            runtime=self.runtime,
            manager=manager,
            plane=self.plane,
            controller=self,
            events=events,
            retry_policy=self.retry_policy,
        )
        for policy in self.policies:
            try:
                intents = policy.evaluate(ctx)
            except Exception:
                network.count("controller.evaluate_errors")
                continue
            for intent in intents:
                if self._stopped:
                    return
                # Decisions are stale the moment an earlier intent in
                # this same tick acted; re-verify lease and liveness
                # between actions.
                if manager.deposed or not manager.holds_remediation_lease(self.name):
                    network.count("controller.lease_lost")
                    return
                if not self._admit(intent, policy):
                    continue
                yield from self._execute(ctx, policy, intent)

    # ------------------------------------------------------------------
    # Decide: admission control
    # ------------------------------------------------------------------

    def _admit(self, intent, policy):
        network = self.runtime.network
        now = self.runtime.sim.now
        last = self._cooldowns.get(intent.cooldown_key)
        if last is not None and now - last < policy.cooldown_s:
            network.count("controller.rate_limited")
            return False
        while self._recent_actions and now - self._recent_actions[0] > self.budget_window_s:
            self._recent_actions.popleft()
        if len(self._recent_actions) >= self.budget:
            network.count("controller.rate_limited")
            return False
        return True

    # ------------------------------------------------------------------
    # Act
    # ------------------------------------------------------------------

    def _execute(self, ctx, policy, intent):
        network = self.runtime.network
        guard = convergence_guard(self.runtime)
        claimed = list(intent.loids)
        if claimed and not guard.try_claim(self.name, claimed):
            # Somebody (the supervisor, another action) is already
            # driving configuration onto part of this set: defer, the
            # signal will still be there next tick if it matters.
            network.count("controller.deferred")
            return
        now = self.runtime.sim.now
        self._cooldowns[intent.cooldown_key] = now
        self._recent_actions.append(now)
        self._intent_seq += 1
        intent_id = f"{self.name}#{self._intent_seq}:{intent.policy}:{intent.target}"
        manager = ctx.manager
        manager.begin_remediation(
            intent_id, intent.kind, intent.target, policy=intent.policy
        )
        outcome, result = "done", None
        try:
            result = yield from policy.execute(ctx, intent)
        except Exception as exc:
            outcome, result = "failed", {"error": f"{type(exc).__name__}: {exc}"}
        finally:
            if claimed:
                guard.release(self.name, claimed)
            if not manager.deposed:
                manager.complete_remediation(intent_id, outcome=outcome)
            network.count(f"controller.actions.{outcome}")
            self.remediation_log.append(
                {
                    "at": round(self.runtime.sim.now, 3),
                    "intent_id": intent_id,
                    "policy": intent.policy,
                    "kind": intent.kind,
                    "target": intent.target,
                    "outcome": outcome,
                    "result": result,
                }
            )
            self.runtime.trace(
                "controller-action",
                self.name,
                policy=intent.policy,
                kind=intent.kind,
                target=str(intent.target),
                outcome=outcome,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self):
        """Plain-dict view for reports and assertions."""
        counters = self.runtime.network
        return {
            "name": self.name,
            "stopped": self._stopped,
            "policies": [policy.name for policy in self.policies],
            "actions": len(self.remediation_log),
            "log_tail": self.remediation_log[-5:],
            "deferred": counters.count_value("controller.deferred"),
            "rate_limited": counters.count_value("controller.rate_limited"),
            "shard_wave_stats": {
                shard: dict(entry) for shard, entry in self.shard_wave_stats.items()
            },
        }

    def __repr__(self):
        return (
            f"<ReactiveController {self.type_name} actions={len(self.remediation_log)} "
            f"policies={len(self.policies)}{' stopped' if self._stopped else ''}>"
        )


class ControllerContext:
    """What a policy sees each tick: sensed events plus live handles."""

    def __init__(self, runtime, manager, plane, controller, events, retry_policy):
        self.runtime = runtime
        self.manager = manager
        self.plane = plane
        self.controller = controller
        self.events = events
        self.retry_policy = retry_policy

    def events_on(self, topic):
        """This tick's events matching an exact topic."""
        return [event for event in self.events if event.topic == topic]
