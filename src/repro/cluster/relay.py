"""Host-level relays for evolution waves.

The paper's evolution-management policy (§4) has the DCDO Manager push
a new DFM descriptor to every managed instance — one management RPC
per instance per wave.  At production scale that is O(N) manager-side
RPCs even with windowed fan-out, and most of those RPCs travel to the
same handful of machines.

A :class:`HostRelay` is a small management agent, one per cluster
host, that receives a single ``evolveBatch`` RPC covering *all*
colocated instances of a type and applies each instance's two-phase
``applyConfiguration`` locally.  The per-instance acks it returns feed
the manager's existing :class:`~repro.core.recovery.PropagationTracker`
/ journal / wave-policy machinery unchanged — the relay layer is a
transport optimization, not a weakening of PR 3's transactional
guarantees:

- application stays idempotent per instance (keyed by target version),
  so a re-sent batch after a lost ack is harmless;
- a relay that dies mid-batch takes its colocated instances with it
  (same machine), and the manager's per-instance retry/FAILED
  bookkeeping — including falling back to direct delivery — proceeds
  exactly as if the instances had been unreachable directly.

For large host counts an optional k-ary diffusion tree stacks relays:
the manager sends one bundle to a root relay, which forwards child
bundles concurrently while applying its own batch, giving O(log_k H)
wave latency for H hosts.  A subtree whose relay is unreachable is
reported failed wholesale; those instances stay PENDING at the manager
and are re-delivered directly.

Layering note: like :mod:`repro.cluster.chaos` this module orchestrates
across layers, so runtime imports stay inside functions.
"""

from repro.legion.objects import LegionObject

#: In-flight window for a relay applying its local batch.
RELAY_APPLY_WINDOW = 8
#: Generous per-attempt reply timeouts for applyConfiguration calls —
#: prepare-phase downloads can run long (same schedule the manager uses
#: for direct delivery).
RELAY_APPLY_TIMEOUTS = (60.0, 120.0, 600.0)
#: Nominal wire bytes per job record in a batch (loid + diff framing).
BATCH_JOB_BYTES = 256


class HostRelay(LegionObject):
    """Per-host evolution relay agent.

    Exported interface:

    - ``evolveBatch(jobs, window, term)`` — apply ``(loid, diff)`` jobs
      to colocated instances; returns ``(loid, ok, value)`` triples
      where ``value`` is the version string reached or the exception
      raised.  ``term`` (optional) is the manager's fencing token,
      re-stamped on every downstream apply.
    - ``relayTree(bundle)`` — apply this host's jobs *and* forward
      child bundles to downstream relays concurrently, aggregating the
      whole subtree's acks into one reply.

    The relay is stateless between batches: its endpoint address lives
    under ``<host>/`` so a host crash severs it like any colocated
    object, and recovery is a plain re-activation (see
    :func:`restore_relays`).
    """

    def __init__(self, runtime, loid, host):
        super().__init__(runtime, loid, host)
        self.batches_served = 0
        self.instances_evolved = 0
        self.instances_failed = 0
        self.register_method("evolveBatch", self._m_evolve_batch)
        self.register_method("relayTree", self._m_relay_tree)

    # ------------------------------------------------------------------
    # Local batch application
    # ------------------------------------------------------------------

    def _apply_jobs(self, jobs, window, term=None):
        """Generator: apply ``(loid, diff)`` jobs, windowed; returns acks.

        ``term`` is the sending manager's fencing token; re-stamping it
        on every downstream ``applyConfiguration`` keeps the batch path
        as fenced as direct delivery — a deposed manager's batch is
        rejected per instance, and the rejection rides back in the acks.
        """
        jobs = list(jobs)
        calls = [
            (loid, "applyConfiguration", (diff,)) for loid, diff in jobs
        ]
        outcomes = yield from self.invoker.invoke_each(
            calls,
            window=window or RELAY_APPLY_WINDOW,
            timeout_schedule=RELAY_APPLY_TIMEOUTS,
            term=term,
        )
        acks = []
        for (loid, __), (ok, value) in zip(jobs, outcomes):
            if ok:
                self.instances_evolved += 1
            else:
                self.instances_failed += 1
            acks.append((loid, ok, value))
        self.batches_served += 1
        self.runtime.network.count("relay.batches")
        self.runtime.network.count("relay.batch_instances", len(jobs))
        return acks

    def _m_evolve_batch(self, ctx, jobs, window=None, term=None):
        acks = yield from self._apply_jobs(jobs, window, term)
        return acks

    # ------------------------------------------------------------------
    # k-ary diffusion tree
    # ------------------------------------------------------------------

    def _m_relay_tree(self, ctx, bundle):
        """Serve one diffusion-tree node: own jobs + child subtrees.

        ``bundle`` is ``{"jobs": [(loid, diff), ...], "children":
        [child_bundle, ...], "window": int}`` where each child bundle
        additionally carries ``"relay"``, the child relay's LOID.  Own
        application and child forwarding run concurrently; the reply
        aggregates every subtree ack.
        """
        from repro.net import TransportError, run_windowed
        from repro.legion.errors import LegionError

        window = bundle.get("window") or RELAY_APPLY_WINDOW
        children = list(bundle.get("children") or ())
        term = bundle.get("term")

        def forward(child):
            child = dict(child, term=term)
            try:
                acks = yield from self.invoker.invoke(
                    child["relay"],
                    "relayTree",
                    (child,),
                    payload_bytes=BATCH_JOB_BYTES * count_jobs(child),
                    timeout_schedule=RELAY_APPLY_TIMEOUTS,
                    term=term,
                )
            except (LegionError, TransportError):
                # The whole subtree is unreachable through this child;
                # report every job failed so the manager re-delivers.
                # The failure is reported as the *relay* being
                # unreachable — never the child error verbatim, which
                # for a vanished relay would be an UnknownObject and
                # read at the manager as "instance deleted" (terminal).
                from repro.legion.errors import ObjectUnreachable

                self.runtime.network.count("relay.subtree_failures")
                failure = ObjectUnreachable(child["relay"], 0.0)
                return [
                    (loid, False, failure) for loid, __ in iter_jobs(child)
                ]
            return acks

        thunks = [lambda: self._apply_jobs(bundle.get("jobs") or (), window, term)]
        thunks += [lambda c=child: forward(c) for child in children]
        outcomes = yield from run_windowed(self.sim, thunks, len(thunks))
        acks = []
        for ok, value in outcomes:
            if not ok:
                raise value  # a bug in the relay itself, not a delivery
            acks.extend(value)
        return acks


def count_jobs(bundle):
    """Total jobs in ``bundle``'s subtree."""
    total = len(bundle.get("jobs") or ())
    for child in bundle.get("children") or ():
        total += count_jobs(child)
    return total


def iter_jobs(bundle):
    """Every ``(loid, diff)`` job in ``bundle``'s subtree."""
    for job in bundle.get("jobs") or ():
        yield job
    for child in bundle.get("children") or ():
        yield from iter_jobs(child)


def build_relay_tree(host_batches, directory, fanout_k, window=None):
    """Arrange per-host batches into k-ary diffusion-tree bundles.

    ``host_batches`` maps host name -> job list; ``directory`` maps
    host name -> relay LOID.  Hosts are ordered by name (deterministic)
    and node ``i``'s children are nodes ``k*i+1 .. k*i+k``.  Returns
    the root bundle, or None when there are no batches.
    """
    if fanout_k < 2:
        raise ValueError(f"fanout_k must be >= 2, got {fanout_k}")
    names = sorted(host_batches)
    if not names:
        return None
    bundles = [
        {
            "relay": directory[name],
            "host": name,
            "jobs": list(host_batches[name]),
            "children": [],
            "window": window,
        }
        for name in names
    ]
    for index, bundle in enumerate(bundles):
        for child in range(fanout_k * index + 1, fanout_k * index + fanout_k + 1):
            if child < len(bundles):
                bundle["children"].append(bundles[child])
    return bundles[0]


def deploy_relays(runtime, hosts=None, context_prefix="/relays"):
    """Create one :class:`HostRelay` per (up) host; returns a directory.

    The directory maps host name -> relay LOID and is what
    :meth:`~repro.core.manager.DCDOManager.use_relays` consumes.
    Relays are bound into the context space under
    ``<context_prefix>/<host>`` so operators (and recovery) can find
    them by name (§2.3: one global namespace for everything).  Calling
    again is idempotent per host — an existing live relay is reused.
    """
    from repro.legion.loid import mint_loid

    if hosts is None:
        hosts = sorted(runtime.hosts)
    directory = {}
    for host_name in hosts:
        host = runtime.host(host_name)
        if not host.is_up:
            continue
        path = f"{context_prefix}/{host_name}"
        if path in runtime.context_space:
            existing = runtime.context_space.lookup(path)
            obj = runtime.live_object(existing)
            if obj is not None and obj.is_active:
                directory[host_name] = existing
                continue
            runtime.context_space.unbind(path)
        loid = mint_loid(runtime.domain, "HostRelay")
        relay = HostRelay(runtime, loid, host)
        runtime.sim.run_process(relay.activate())
        runtime.attach_object(relay)
        runtime.context_space.bind(path, loid)
        directory[host_name] = loid
    return directory


def restore_relays(runtime, directory):
    """Generator: re-activate relays that died with their hosts.

    Relays are stateless, so recovery after a host restart is a fresh
    activation (new endpoint, bumped binding incarnation).  Hosts still
    down are skipped — their relays come back with them on a later
    pass.  Returns the host names restored.
    """
    restored = []
    for host_name, loid in sorted(directory.items()):
        host = runtime.host(host_name) if host_name in runtime.hosts else None
        if host is None or not host.is_up:
            continue
        relay = runtime.live_object(loid)
        if relay is None or relay.is_active:
            continue
        yield from relay.activate()
        runtime.network.count("relay.recoveries")
        restored.append(host_name)
    return restored
