"""Host-level relays for evolution waves.

The paper's evolution-management policy (§4) has the DCDO Manager push
a new DFM descriptor to every managed instance — one management RPC
per instance per wave.  At production scale that is O(N) manager-side
RPCs even with windowed fan-out, and most of those RPCs travel to the
same handful of machines.

A :class:`HostRelay` is a small management agent, one per cluster
host, that receives a single ``evolveBatch`` RPC covering *all*
colocated instances of a type and applies each instance's two-phase
``applyConfiguration`` locally.  The per-instance acks it returns feed
the manager's existing :class:`~repro.core.recovery.PropagationTracker`
/ journal / wave-policy machinery unchanged — the relay layer is a
transport optimization, not a weakening of PR 3's transactional
guarantees:

- application stays idempotent per instance (keyed by target version),
  so a re-sent batch after a lost ack is harmless;
- a relay that dies mid-batch takes its colocated instances with it
  (same machine), and the manager's per-instance retry/FAILED
  bookkeeping — including falling back to direct delivery — proceeds
  exactly as if the instances had been unreachable directly.

For large host counts an optional k-ary diffusion tree stacks relays:
the manager sends one bundle to a root relay, which forwards child
bundles concurrently while applying its own batch, giving O(log_k H)
wave latency for H hosts.  A subtree whose relay is unreachable is
reported failed wholesale; those instances stay PENDING at the manager
and are re-delivered directly.

Job-carrying bundles still put O(instances) bytes through the manager
and root-relay egress ports, which caps wave scaling: at a fixed
instances-per-host density the wave time grows linearly with fleet
size purely from serializing per-instance job records.  *Announcement*
waves (``announceTree``) remove that term: the tree carries only the
configuration diffs (constant size per distinct from-version) plus the
subtree routing table, each relay enumerates its own colocated
instances of the announced type, and acks travel up as one per-host
``(host, count, digest)`` summary.  The manager commits a host's
instances only when the relay's applied-set digest matches the set it
expected, so announcement waves keep exactly the per-instance
tracker/journal bookkeeping of job batches — any mismatch leaves the
host PENDING for the job-batch and direct paths.

The per-host form still puts O(hosts) bytes through the root (routing
table down, one summary per host up).  The *fleet* form
(``announceFleet``) removes that last size-dependent term: every relay
is seeded with the shared sorted host roster at deploy time, bundles
route by a contiguous roster index range (constant bytes per hop), and
— because set digests are additive CRC sums — each relay folds its
subtree's acks into one ``(hosts, count, digest)`` aggregate (constant
bytes per hop).  An exact aggregate match commits the whole wave in
one round trip; any shortfall drops the wave to per-host announcement
rounds, which localize the failure, and from there to job batches and
direct delivery.  Guarantees are unchanged — the aggregate can only
*under*-commit, never commit an instance the manager did not expect.

Layering note: like :mod:`repro.cluster.chaos` this module orchestrates
across layers, so runtime imports stay inside functions.
"""

import zlib

from repro.core.partition import partition_slot
from repro.legion.objects import LegionObject

#: In-flight window for a relay applying its local batch.
RELAY_APPLY_WINDOW = 8
#: Generous per-attempt reply timeouts for applyConfiguration calls —
#: prepare-phase downloads can run long (same schedule the manager uses
#: for direct delivery).
RELAY_APPLY_TIMEOUTS = (60.0, 120.0, 600.0)
#: Nominal wire bytes per job record in a batch (loid + diff framing).
BATCH_JOB_BYTES = 256
#: Nominal wire bytes per subtree routing entry (host + relay LOID) and
#: per per-host ack summary in an announcement wave.
ANNOUNCE_HOST_BYTES = 32
#: Nominal wire bytes for one announced configuration diff.
ANNOUNCE_DIFF_BYTES = 1024
#: Nominal wire bytes for a fleet announcement's fixed routing header
#: (roster index range + fanout + term) and for one aggregated ack.
ANNOUNCE_ROUTE_BYTES = 64
ANNOUNCE_ACK_BYTES = 64
#: Mask keeping set digests (and their sums) at 64 bits.
DIGEST_MASK = 0xFFFFFFFFFFFFFFFF


def set_digest(loids):
    """Order-independent digest of a LOID set.

    A 64-bit sum of per-LOID CRC32s: deterministic across runs (unlike
    ``hash(str)`` under hash randomization) and independent of apply
    order, so a relay and the manager can compare "which instances"
    without shipping the LOID list back up the tree.
    """
    total = 0
    for loid in loids:
        total = (total + zlib.crc32(str(loid).encode("utf-8"))) & DIGEST_MASK
    return total


class HostRelay(LegionObject):
    """Per-host evolution relay agent.

    Exported interface:

    - ``evolveBatch(jobs, window, term)`` — apply ``(loid, diff)`` jobs
      to colocated instances; returns ``(loid, ok, value)`` triples
      where ``value`` is the version string reached or the exception
      raised.  ``term`` (optional) is the manager's fencing token,
      re-stamped on every downstream apply.
    - ``relayTree(bundle)`` — apply this host's jobs *and* forward
      child bundles to downstream relays concurrently, aggregating the
      whole subtree's acks into one reply.

    The relay is stateless between batches: its endpoint address lives
    under ``<host>/`` so a host crash severs it like any colocated
    object, and recovery is a plain re-activation (see
    :func:`restore_relays`).
    """

    def __init__(self, runtime, loid, host):
        super().__init__(runtime, loid, host)
        self.batches_served = 0
        self.instances_evolved = 0
        self.instances_failed = 0
        #: Sorted ``((host, relay_loid), ...)`` roster shared by every
        #: relay in the deployment; seeded by :func:`deploy_relays` /
        #: :func:`restore_relays` so fleet announcements can route by
        #: roster index instead of shipping a subtree table per hop.
        self.announce_roster = None
        #: Named roster slices for sharded planes: ``roster_id ->
        #: roster``.  Each shard manager announces over its own slice
        #: of the host set (``bundle["roster"]`` selects it), so shard
        #: waves fan out in parallel without sharing one tree root.
        self.rosters = {}
        self.register_method("evolveBatch", self._m_evolve_batch)
        self.register_method("relayTree", self._m_relay_tree)
        self.register_method("announceTree", self._m_announce_tree)
        self.register_method("announceFleet", self._m_announce_fleet)

    # ------------------------------------------------------------------
    # Local batch application
    # ------------------------------------------------------------------

    def _prewarm_local_bindings(self, loids):
        """Resolve colocated targets host-locally, skipping the agent.

        The node's runtime already knows the physical addresses of
        endpoints it hosts, so a relay binding to a target on its own
        host need not pay a round trip to the central binding agent.
        Without this, a fleet-wide wave funnels one resolve per
        instance through the agent's single port — an O(instances)
        serial bottleneck on what is otherwise a parallel diffusion
        tree.
        """
        cache = self.invoker.binding_cache
        agent = self.runtime.binding_agent
        warmed = 0
        for loid in loids:
            if loid in cache:
                continue
            obj = self.runtime.live_object(loid)
            if obj is None or not obj.is_active or obj.host is not self.host:
                continue
            cache.put(agent.resolve_local(loid))
            warmed += 1
        if warmed:
            self.runtime.network.count("relay.local_binds", warmed)

    def _apply_jobs(self, jobs, window, term=None):
        """Generator: apply ``(loid, diff)`` jobs, windowed; returns acks.

        ``term`` is the sending manager's fencing token; re-stamping it
        on every downstream ``applyConfiguration`` keeps the batch path
        as fenced as direct delivery — a deposed manager's batch is
        rejected per instance, and the rejection rides back in the acks.
        """
        jobs = list(jobs)
        self._prewarm_local_bindings([loid for loid, __ in jobs])
        calls = [
            (loid, "applyConfiguration", (diff,)) for loid, diff in jobs
        ]
        outcomes = yield from self.invoker.invoke_each(
            calls,
            window=window or RELAY_APPLY_WINDOW,
            timeout_schedule=RELAY_APPLY_TIMEOUTS,
            term=term,
        )
        acks = []
        for (loid, __), (ok, value) in zip(jobs, outcomes):
            if ok:
                self.instances_evolved += 1
            else:
                self.instances_failed += 1
            acks.append((loid, ok, value))
        self.batches_served += 1
        self.runtime.network.count("relay.batches")
        self.runtime.network.count("relay.batch_instances", len(jobs))
        return acks

    def _m_evolve_batch(self, ctx, jobs, window=None, term=None):
        acks = yield from self._apply_jobs(jobs, window, term)
        return acks

    # ------------------------------------------------------------------
    # k-ary diffusion tree
    # ------------------------------------------------------------------

    def _m_relay_tree(self, ctx, bundle):
        """Serve one diffusion-tree node: own jobs + child subtrees.

        ``bundle`` is ``{"jobs": [(loid, diff), ...], "children":
        [child_bundle, ...], "window": int}`` where each child bundle
        additionally carries ``"relay"``, the child relay's LOID.  Own
        application and child forwarding run concurrently; the reply
        aggregates every subtree ack.
        """
        from repro.net import TransportError, run_windowed
        from repro.legion.errors import LegionError

        window = bundle.get("window") or RELAY_APPLY_WINDOW
        children = list(bundle.get("children") or ())
        term = bundle.get("term")

        def forward(child):
            child = dict(child, term=term)
            try:
                acks = yield from self.invoker.invoke(
                    child["relay"],
                    "relayTree",
                    (child,),
                    payload_bytes=BATCH_JOB_BYTES * count_jobs(child),
                    timeout_schedule=RELAY_APPLY_TIMEOUTS,
                    term=term,
                )
            except (LegionError, TransportError):
                # The whole subtree is unreachable through this child;
                # report every job failed so the manager re-delivers.
                # The failure is reported as the *relay* being
                # unreachable — never the child error verbatim, which
                # for a vanished relay would be an UnknownObject and
                # read at the manager as "instance deleted" (terminal).
                from repro.legion.errors import ObjectUnreachable

                self.runtime.network.count("relay.subtree_failures")
                failure = ObjectUnreachable(child["relay"], 0.0)
                return [
                    (loid, False, failure) for loid, __ in iter_jobs(child)
                ]
            return acks

        thunks = [lambda: self._apply_jobs(bundle.get("jobs") or (), window, term)]
        thunks += [lambda c=child: forward(c) for child in children]
        outcomes = yield from run_windowed(self.sim, thunks, len(thunks))
        acks = []
        for ok, value in outcomes:
            if not ok:
                raise value  # a bug in the relay itself, not a delivery
            acks.extend(value)
        return acks

    # ------------------------------------------------------------------
    # Announcement waves (constant-size bundles, digest acks)
    # ------------------------------------------------------------------

    def _apply_announcement(self, announcement, window, term):
        """Generator: apply an announced configuration locally.

        Enumerates this host's live instances of the announced type
        (via the runtime's per-host index), applies the diff matching
        each instance's current version, and returns one ``(host,
        count, digest, failures)`` summary.  Instances already at the
        target version count as applied without an RPC — application
        is idempotent keyed by the target version, exactly like the
        manager's own early-ack on a re-armed wave.
        """
        type_name = announcement["type_name"]
        diffs = announcement["diffs"]
        target_version = announcement["target_version"]
        hash_range = announcement.get("hash_range")
        jobs = []
        applied = []
        for obj in self.runtime.objects_on_host(self.host.name):
            loid = obj.loid
            if loid.type_name != type_name or not obj.is_active:
                continue
            if hash_range is not None:
                # Sharded plane: only the announcing shard's slice of
                # this host's instances — siblings' colocated instances
                # belong to other shards' (concurrent) waves.
                slot = partition_slot(loid)
                if not any(lo <= slot < hi for lo, hi in hash_range):
                    continue
            version = getattr(obj, "version", None)
            if version == target_version:
                applied.append(loid)
                continue
            diff = diffs.get(version)
            if diff is not None:
                jobs.append((loid, diff))
        acks = yield from self._apply_jobs(jobs, window, term)
        failures = []
        for loid, ok, value in acks:
            if ok:
                applied.append(loid)
            else:
                failures.append((loid, value))
        return [(self.host.name, len(applied), set_digest(applied), failures)]

    def _m_announce_tree(self, ctx, bundle):
        """Serve one announcement-tree node.

        ``bundle`` carries the announcement (``type_name``, ``diffs``
        keyed by from-version, ``target_version``, ``window``,
        ``term``) plus ``node``, this relay's subtree of ``{"relay",
        "host", "children"}`` routing entries.  Own application and
        child forwarding run concurrently; the reply aggregates one
        per-host summary per subtree host — O(hosts) bytes total, never
        O(instances).
        """
        from repro.net import TransportError, run_windowed
        from repro.legion.errors import LegionError

        node = bundle["node"]
        window = bundle.get("window") or RELAY_APPLY_WINDOW
        term = bundle.get("term")
        children = list(node.get("children") or ())

        def forward(child):
            child_bundle = dict(bundle, node=child)
            try:
                acks = yield from self.invoker.invoke(
                    child["relay"],
                    "announceTree",
                    (child_bundle,),
                    payload_bytes=announce_bundle_bytes(child_bundle),
                    timeout_schedule=RELAY_APPLY_TIMEOUTS,
                    term=term,
                )
            except (LegionError, TransportError):
                # Whole subtree unreachable through this child: report
                # each host with a None digest so the manager leaves
                # its instances PENDING for the fallback paths.
                self.runtime.network.count("relay.subtree_failures")
                return [(host, 0, None, []) for host in iter_tree_hosts(child)]
            return acks

        thunks = [lambda: self._apply_announcement(bundle, window, term)]
        thunks += [lambda c=child: forward(c) for child in children]
        outcomes = yield from run_windowed(self.sim, thunks, len(thunks))
        acks = []
        for ok, value in outcomes:
            if not ok:
                raise value  # a bug in the relay itself, not a delivery
            acks.extend(value)
        ctx.reply_bytes = ANNOUNCE_HOST_BYTES * len(acks)
        return acks

    def _m_announce_fleet(self, ctx, bundle):
        """Serve one fleet-announcement node (roster-range routing).

        ``bundle`` carries the announcement plus only ``lo``/``hi`` —
        a contiguous index range into the shared :attr:`announce_roster`
        — and ``fanout_k``.  This relay is ``roster[lo]``; the rest of
        the range splits into at most ``fanout_k`` contiguous child
        spans, each headed by its first host's relay.  Both the bundle
        and the aggregated ack are constant-size on the wire (digests
        are additive, so a subtree folds into one ``(hosts, count,
        digest)`` summary), which keeps root egress — and therefore wave
        latency — independent of fleet size.  Unreachable subtrees fold
        in as zero hosts; the manager sees the shortfall in the
        aggregate and falls back to per-host rounds.
        """
        from repro.net import TransportError, run_windowed
        from repro.legion.errors import LegionError

        roster_id = bundle.get("roster")
        if roster_id is None:
            roster = self.announce_roster or ()
        else:
            roster = self.rosters.get(roster_id) or ()
        lo = bundle["lo"]
        hi = min(bundle["hi"], len(roster))
        window = bundle.get("window") or RELAY_APPLY_WINDOW
        term = bundle.get("term")
        ctx.reply_bytes = ANNOUNCE_ACK_BYTES
        if lo >= hi or roster[lo][0] != self.host.name:
            # Roster drift (relay redeployed since the sender built its
            # range): report an empty subtree so the manager's aggregate
            # check fails closed instead of double-applying.
            return {"hosts": 0, "count": 0, "digest": 0, "failures": []}

        def forward(span):
            start, stop = span
            __, child_relay, child_binding = roster[start]
            cache = self.invoker.binding_cache
            if child_binding is not None and child_relay not in cache:
                # The roster ships bindings (a membership list carries
                # addresses): child resolves must not funnel through
                # the central binding agent's one port.
                cache.put(child_binding)
            child_bundle = dict(bundle, lo=start, hi=stop)
            try:
                ack = yield from self.invoker.invoke(
                    child_relay,
                    "announceFleet",
                    (child_bundle,),
                    payload_bytes=announce_fleet_bytes(child_bundle),
                    timeout_schedule=RELAY_APPLY_TIMEOUTS,
                    term=term,
                )
            except (LegionError, TransportError):
                self.runtime.network.count("relay.subtree_failures")
                return {"hosts": 0, "count": 0, "digest": 0, "failures": []}
            return ack

        spans = chunk_spans(lo + 1, hi, bundle["fanout_k"])
        thunks = [lambda: self._apply_announcement(bundle, window, term)]
        thunks += [lambda s=span: forward(s) for span in spans]
        outcomes = yield from run_windowed(self.sim, thunks, len(thunks))
        ok, own = outcomes[0]
        if not ok:
            raise own  # a bug in the relay itself, not a delivery
        __, count, digest, failures = own[0]
        total = {
            "hosts": 1,
            "count": count,
            "digest": digest,
            "failures": list(failures),
        }
        for ok, ack in outcomes[1:]:
            if not ok:
                raise ack
            total["hosts"] += ack["hosts"]
            total["count"] += ack["count"]
            total["digest"] = (total["digest"] + ack["digest"]) & DIGEST_MASK
            total["failures"].extend(ack["failures"])
        ctx.reply_bytes = ANNOUNCE_ACK_BYTES + (
            ANNOUNCE_HOST_BYTES * len(total["failures"])
        )
        return total


def chunk_spans(lo, hi, fanout_k):
    """Split ``[lo, hi)`` into at most ``fanout_k`` contiguous spans.

    Spans are as even as possible and deterministic; an empty range
    yields no spans.  Used to hand a fleet announcement's roster range
    down to child relays.
    """
    size = hi - lo
    if size <= 0:
        return []
    chunks = min(fanout_k, size)
    base, extra = divmod(size, chunks)
    spans = []
    start = lo
    for index in range(chunks):
        stop = start + base + (1 if index < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def count_jobs(bundle):
    """Total jobs in ``bundle``'s subtree."""
    total = len(bundle.get("jobs") or ())
    for child in bundle.get("children") or ():
        total += count_jobs(child)
    return total


def iter_jobs(bundle):
    """Every ``(loid, diff)`` job in ``bundle``'s subtree."""
    for job in bundle.get("jobs") or ():
        yield job
    for child in bundle.get("children") or ():
        yield from iter_jobs(child)


def build_relay_tree(host_batches, directory, fanout_k, window=None, order_key=None):
    """Arrange per-host batches into k-ary diffusion-tree bundles.

    ``host_batches`` maps host name -> job list; ``directory`` maps
    host name -> relay LOID.  Hosts are ordered by name (deterministic)
    and node ``i``'s children are nodes ``k*i+1 .. k*i+k``.  Returns
    the root bundle, or None when there are no batches.

    ``order_key`` overrides the name ordering (it must stay
    deterministic).  The manager passes a health key when peer health
    is armed, so degraded-but-not-quarantined hosts sink toward the
    leaves where their slowness stalls nobody's subtree.
    """
    if fanout_k < 2:
        raise ValueError(f"fanout_k must be >= 2, got {fanout_k}")
    names = sorted(host_batches, key=order_key) if order_key else sorted(host_batches)
    if not names:
        return None
    bundles = [
        {
            "relay": directory[name],
            "host": name,
            "jobs": list(host_batches[name]),
            "children": [],
            "window": window,
        }
        for name in names
    ]
    for index, bundle in enumerate(bundles):
        for child in range(fanout_k * index + 1, fanout_k * index + fanout_k + 1):
            if child < len(bundles):
                bundle["children"].append(bundles[child])
    return bundles[0]


def build_announce_tree(host_names, directory, fanout_k, order_key=None):
    """Arrange hosts into a k-ary announcement-tree routing node.

    Same deterministic shape as :func:`build_relay_tree` (sorted hosts,
    node ``i``'s children are ``k*i+1 .. k*i+k``, health ``order_key``
    override) but each node carries only ``{"relay", "host",
    "children"}`` — no per-instance jobs.  Returns the root node, or
    None when ``host_names`` is empty.
    """
    if fanout_k < 2:
        raise ValueError(f"fanout_k must be >= 2, got {fanout_k}")
    names = sorted(host_names, key=order_key) if order_key else sorted(host_names)
    if not names:
        return None
    nodes = [
        {"relay": directory[name], "host": name, "children": []} for name in names
    ]
    for index, node in enumerate(nodes):
        for child in range(fanout_k * index + 1, fanout_k * index + fanout_k + 1):
            if child < len(nodes):
                node["children"].append(nodes[child])
    return nodes[0]


def count_tree_hosts(node):
    """Total hosts in an announcement node's subtree."""
    total = 1
    for child in node.get("children") or ():
        total += count_tree_hosts(child)
    return total


def iter_tree_hosts(node):
    """Every host name in an announcement node's subtree."""
    yield node["host"]
    for child in node.get("children") or ():
        yield from iter_tree_hosts(child)


def announce_bundle_bytes(bundle):
    """Wire bytes for one announcement bundle hop.

    The diffs cost a constant per distinct from-version; the routing
    table costs a constant per subtree host.  Nothing here scales with
    instance count — that is the whole point of announcement waves.
    """
    return ANNOUNCE_DIFF_BYTES * len(bundle["diffs"]) + (
        ANNOUNCE_HOST_BYTES * count_tree_hosts(bundle["node"])
    )


def announce_fleet_bytes(bundle):
    """Wire bytes for one fleet-announcement hop.

    The diffs cost a constant per distinct from-version; routing is an
    index range into the pre-seeded roster, so it costs a constant
    regardless of fleet size.  Nothing here scales with hosts *or*
    instances — this is what keeps wave latency flat from 1k to 100k
    live objects.
    """
    return ANNOUNCE_DIFF_BYTES * len(bundle["diffs"]) + ANNOUNCE_ROUTE_BYTES


def deploy_relays(runtime, hosts=None, context_prefix="/relays"):
    """Create one :class:`HostRelay` per (up) host; returns a directory.

    The directory maps host name -> relay LOID and is what
    :meth:`~repro.core.manager.DCDOManager.use_relays` consumes.
    Relays are bound into the context space under
    ``<context_prefix>/<host>`` so operators (and recovery) can find
    them by name (§2.3: one global namespace for everything).  Calling
    again is idempotent per host — an existing live relay is reused.
    """
    from repro.legion.loid import mint_loid

    if hosts is None:
        hosts = sorted(runtime.hosts)
    directory = {}
    for host_name in hosts:
        host = runtime.host(host_name)
        if not host.is_up:
            continue
        path = f"{context_prefix}/{host_name}"
        if path in runtime.context_space:
            existing = runtime.context_space.lookup(path)
            obj = runtime.live_object(existing)
            if obj is not None and obj.is_active:
                directory[host_name] = existing
                continue
            runtime.context_space.unbind(path)
        loid = mint_loid(runtime.domain, "HostRelay")
        relay = HostRelay(runtime, loid, host)
        runtime.sim.run_process(relay.activate())
        runtime.attach_object(relay)
        runtime.context_space.bind(path, loid)
        directory[host_name] = loid
    seed_announce_roster(runtime, directory)
    return directory


def seed_announce_roster(runtime, directory, roster_id=None):
    """Hand every relay in ``directory`` the shared sorted roster.

    ``roster_id`` names a per-shard roster slice instead of replacing
    the deployment-wide default: sharded planes seed one named slice
    per shard over that shard's hosts, and the shard's announcements
    select it via ``bundle["roster"]``.

    The roster is the deployment-wide ``((host, relay_loid, binding),
    ...)`` list that fleet announcements route through by index range;
    every relay must hold the same one, so it is (re)seeded whenever
    the directory changes — deploy, redeploy, and restore.  Carrying
    each relay's current binding is what a real deployment directory
    does (membership lists ship addresses, not just names): without it
    every relay's child resolves would funnel through the central
    binding agent — O(hosts) serialized traffic on one port, exactly
    the term fleet announcements exist to remove.  A binding gone
    stale between seedings (relay died un-restored) just fails the
    forward, which reports the subtree short and drops the wave to the
    per-host paths.
    """
    from repro.legion.errors import UnknownObject

    agent = runtime.binding_agent
    entries = []
    for host_name, loid in sorted(directory.items()):
        try:
            binding = agent.resolve_local(loid)
        except UnknownObject:
            binding = None  # unregistered (dead) relay: forward will fail
        entries.append((host_name, loid, binding))
    roster = tuple(entries)
    for loid in directory.values():
        relay = runtime.live_object(loid)
        if relay is not None:
            if roster_id is None:
                relay.announce_roster = roster
            else:
                relay.rosters[roster_id] = roster
    return roster


def restore_relays(runtime, directory, roster_id=None):
    """Generator: re-activate relays that died with their hosts.

    Relays are stateless, so recovery after a host restart is a fresh
    activation (new endpoint, bumped binding incarnation).  Hosts still
    down are skipped — their relays come back with them on a later
    pass.  Returns the host names restored.
    """
    restored = []
    for host_name, loid in sorted(directory.items()):
        host = runtime.host(host_name) if host_name in runtime.hosts else None
        if host is None or not host.is_up:
            continue
        relay = runtime.live_object(loid)
        if relay is None or relay.is_active:
            continue
        yield from relay.activate()
        runtime.network.count("relay.recoveries")
        restored.append(host_name)
    if restored:
        seed_announce_roster(runtime, directory, roster_id=roster_id)
    return restored
