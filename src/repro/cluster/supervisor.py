"""Autonomous manager failover: detector + standby + fenced promotion.

PR 3's chaos harness recovers a dead manager only when the *test*
calls :func:`~repro.cluster.chaos.drive_to_convergence` — an operator
in the loop.  The :class:`Supervisor` closes that loop in-simulation:

1. a :class:`~repro.cluster.failure_detector.HeartbeatFailureDetector`
   on an independent host probes the manager's current binding;
2. a :class:`~repro.core.replication.ReplicationLink` keeps a hot
   standby journal on another host, continuously replayed;
3. on suspicion the supervisor *promotes* the standby —
   :func:`~repro.core.recovery.recover_manager` with
   ``skip_entries=len(journal)`` (replay already paid), a bumped
   fencing term so the old primary's in-flight traffic is rejected
   everywhere, relays re-enabled — then re-arms replication to the
   next standby and drives the fleet back to convergence (resume
   interrupted propagations, rebuild lost instances/ICOs/relays,
   re-propagate until all acked).

Promotion is safe against the failure modes that make naive failover
wrong:

- **Split brain** — a merely *partitioned* primary keeps running, but
  every management RPC it sends carries its old term and is rejected
  (``manager.stale_term_rejections``); the first rejection it sees
  fences it permanently (``manager.fenced_stepdowns``).
- **Double failover** — the new primary can die too; the detector
  keeps probing the type's (stable) LOID and re-fires, and the
  supervisor promotes the re-armed standby with a further term bump.
- **Standby loss** — a dead standby is detected by a background link
  check and replaced with a fresh bootstrap from the live primary.

Layering note: like :mod:`repro.cluster.chaos` this module
orchestrates across layers, so runtime imports stay inside functions.
"""

#: Convergence retry backoff: round ``i`` waits ``min(2**i, cap)``.
CONVERGENCE_BACKOFF_CAP_S = 60.0


class Supervisor:
    """Watches one DCDO Manager type and fails it over automatically.

    Parameters
    ----------
    runtime:
        The Legion runtime.
    type_name:
        The managed type; ``runtime.class_of(type_name)`` must be a
        live, journaled manager when :meth:`start` runs.
    standby_hosts:
        Ordered host-name preferences for the standby replica (and for
        promotion targets).  The supervisor picks the first one that is
        up and not the current primary's host.
    detector_host_name:
        Where the failure detector runs — pick a host that is neither
        the primary nor a standby, so detection survives their loss.
    relays / relay_fanout_k / relay_batch_window:
        Optional relay routing (see
        :meth:`~repro.core.manager.DCDOManager.use_relays`), restored
        and re-enabled on every promotion.
    """

    def __init__(
        self,
        runtime,
        type_name,
        standby_hosts,
        detector_host_name,
        relays=None,
        relay_fanout_k=0,
        relay_batch_window=None,
        heartbeat_interval_s=0.5,
        heartbeat_timeout_s=0.4,
        suspicion_threshold=3,
        detector_mode="threshold",
        phi_threshold=8.0,
        replication_mode="sync",
        ship_interval_s=0.25,
        retry_policy=None,
        max_convergence_rounds=10,
        reconcile_interval_s=15.0,
        manager=None,
        on_promote=None,
        relay_announce=False,
        relay_roster_id=None,
    ):
        if not standby_hosts:
            raise ValueError("supervisor needs at least one standby host")
        self.runtime = runtime
        self.type_name = type_name
        self.standby_hosts = tuple(standby_hosts)
        self.detector_host_name = detector_host_name
        self.relays = dict(relays or {})
        self.relay_fanout_k = relay_fanout_k
        self.relay_batch_window = relay_batch_window
        # Sharded planes supervise one manager *per shard* under a
        # shared type name: the shard's manager is passed explicitly
        # (``class_of`` only knows shard 0), its announce roster slice
        # rides along, and ``on_promote(manager)`` lets the plane remap
        # routing to the promotee.
        self._explicit_manager = manager
        self.on_promote = on_promote
        self.relay_announce = relay_announce
        self.relay_roster_id = relay_roster_id
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.suspicion_threshold = suspicion_threshold
        # Phi-accrual detection keeps a merely-slow primary in office:
        # failing over on slowness trades one gray manager for a full
        # promotion storm (see failure_detector mode docs).
        self.detector_mode = detector_mode
        self.phi_threshold = phi_threshold
        self.replication_mode = replication_mode
        self.ship_interval_s = ship_interval_s
        self.retry_policy = retry_policy
        self.max_convergence_rounds = max_convergence_rounds
        self.reconcile_interval_s = reconcile_interval_s
        self.detector = None
        self.link = None
        self.promotions = 0
        self.takeover_log = []  # (time, old_primary_host, new_primary_host)
        self._manager = None
        self._loid = None
        self._promote_in_progress = False
        self._converging = False
        # A suspicion only triggers promotion while armed.  Promotion
        # disarms; seeing the (new) primary actually answer a probe
        # re-arms.  Without this, a detector partitioned from the
        # standby side would flip-flop promotions for the whole
        # partition: it can never observe any promotee alive, so it
        # must not depose one on the same evidence again.
        self._armed = True
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Arm replication and the failure detector; returns self."""
        from repro.cluster.failure_detector import HeartbeatFailureDetector

        manager = self._explicit_manager or self.runtime.class_of(self.type_name)
        if manager.journal is None:
            raise ValueError(
                f"manager for {self.type_name!r} has no journal; "
                f"attach one before supervising"
            )
        self._manager = manager
        self._loid = manager.loid
        self._arm_replication(manager)
        self.detector = HeartbeatFailureDetector(
            self.runtime,
            self.runtime.host(self.detector_host_name),
            interval_s=self.heartbeat_interval_s,
            timeout_s=self.heartbeat_timeout_s,
            suspicion_threshold=self.suspicion_threshold,
            mode=self.detector_mode,
            phi_threshold=self.phi_threshold,
        )
        self.detector.watch(
            self.type_name,
            lambda: self.runtime.binding_agent.current_address(self._loid),
            self._on_suspect,
            on_recover=self._on_primary_alive,
        )
        self.runtime.sim.spawn(
            self._link_health_loop(), name=f"supervisor-link:{self.type_name}"
        )
        self.runtime.sim.spawn(
            self._reconcile_loop(), name=f"supervisor-reconcile:{self.type_name}"
        )
        return self

    def stop(self):
        """Disarm the detector and the replication link."""
        self._stopped = True
        if self.detector is not None:
            self.detector.stop()
        if self.link is not None:
            self.link.stop()

    @property
    def manager(self):
        """The currently supervised (most recently promoted) manager."""
        return self._manager

    # ------------------------------------------------------------------
    # Replication arming
    # ------------------------------------------------------------------

    def _pick_standby_host(self, exclude):
        for name in self.standby_hosts:
            if name == exclude:
                continue
            host = self.runtime.host(name) if name in self.runtime.hosts else None
            if host is not None and host.is_up:
                return name
        return None

    def _arm_replication(self, manager):
        from repro.core.replication import ReplicationLink

        if self.link is not None:
            self.link.stop()
            self.link = None
        standby = self._pick_standby_host(exclude=manager.host.name)
        if standby is None:
            self.runtime.network.count("supervisor.no_standby")
            return
        self.link = ReplicationLink(
            self.runtime,
            manager,
            standby,
            mode=self.replication_mode,
            ship_interval_s=self.ship_interval_s,
        )

    def _link_health_loop(self):
        """Daemon: replace a standby that died (its endpoint severed).

        A partitioned standby just lags and catches up; a *crashed*
        standby can never receive again (restart does not resurrect
        its endpoint), so a fresh replica is bootstrapped from the
        live primary's journal on the next eligible host.
        """
        sim = self.runtime.sim
        period = max(self.heartbeat_interval_s * 4, 1.0)
        while not self._stopped:
            yield sim.timeout(period, daemon=True)
            if self._stopped or self._promote_in_progress:
                continue
            if self.link is None:
                # Lost the standby earlier with no replacement up yet.
                if self._manager.is_active:
                    self._arm_replication(self._manager)
                continue
            if not self.link.replica.reachable and self._manager.is_active:
                self.runtime.network.count("supervisor.standby_replacements")
                self._arm_replication(self._manager)

    # ------------------------------------------------------------------
    # Background reconciliation (anti-entropy)
    # ------------------------------------------------------------------

    def _reconcile_loop(self):
        """Daemon: re-drive repair whenever the fleet drifts.

        The post-promotion convergence pass is one-shot, and each of
        its repair steps can fail *transiently* under gray faults — an
        instance whose rebuild needed an ICO behind a one-way partition
        stays dead even though its host is up, and nothing ever retries
        once the pass has run out of rounds or returned early.  This
        loop closes that gap: while the supervised manager is the live
        authority, any inactive instance on an up host (or any instance
        off the current version) triggers a fresh repair-and-converge
        pass.  A healthy, converged fleet makes this a pure no-op.
        """
        sim = self.runtime.sim
        while not self._stopped:
            yield sim.timeout(self.reconcile_interval_s, daemon=True)
            if self._stopped or self._promote_in_progress or self._converging:
                continue
            manager = self._manager
            if manager is None or not manager.is_active or manager.deposed:
                continue
            if not self._needs_repair(manager):
                continue
            self.runtime.network.count("supervisor.reconciles")
            yield from self._converge(manager)

    def _needs_repair(self, manager):
        """True if any non-frozen instance is dead-but-rebuildable or
        off the manager's current version."""
        from repro.legion.errors import LegionError

        try:
            frozen = manager.canary_frozen_loids()
            current = manager.current_version
            for loid in manager.instance_loids():
                if loid in frozen:
                    continue
                record = manager.record(loid)
                if not record.active:
                    if record.host.is_up:
                        return True
                    continue
                if current is not None and manager.instance_version(loid) != current:
                    return True
        except LegionError:
            return False
        return False

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------

    def _on_primary_alive(self, key):
        self._armed = True

    def _on_suspect(self, key):
        if self._promote_in_progress or self._stopped:
            return
        if not self._armed and self._manager.is_active:
            # Disarmed: the detector has not seen this primary answer
            # even once, so this suspicion is the same evidence that
            # already promoted somebody — not fresh evidence against
            # the promotee (e.g. the detector is on the wrong side of a
            # partition).  A primary that is *known* dead (its host
            # crashed and deactivated it) is promotable regardless.
            return
        self._promote_in_progress = True
        self.runtime.network.count("supervisor.suspicions_acted")
        self.runtime.sim.spawn(
            self._failover(), name=f"supervisor-failover:{self.type_name}"
        )

    def _failover(self):
        """Generator: promote the standby, then drive convergence."""
        from repro.core.errors import ManagerRecoveryError
        from repro.core.recovery import recover_manager

        runtime = self.runtime
        started = runtime.sim.now
        old_host = self._manager.host.name
        link = self.link
        hot = (
            link is not None
            and link.replica.journal.meta.get("type_name") is not None
        )
        if hot:
            # Hot path: every entry in the standby journal was replayed
            # as it was shipped, so takeover pays no replay cost.
            link.stop()
            self.link = None
            journal = link.replica.journal
            skip_entries = len(journal)
            target = link.replica.host_name
            target_host = runtime.host(target) if target in runtime.hosts else None
            if target_host is None or not target_host.is_up:
                target = self._pick_standby_host(exclude=old_host)
        else:
            # Cold path: no bootstrapped standby (it crashed before a
            # replacement could be armed, or its bootstrap never
            # landed).  Fall back to the durable primary journal with a
            # full replay — slower, but the fleet still gets an
            # authority without an operator.
            journal = self._manager.journal
            skip_entries = 0
            target = self._pick_standby_host(exclude=old_host)
        if target is None:
            # Nowhere to promote to right now.  The detector re-fires;
            # an eligible host may be back up by then.  A live link is
            # left armed — its retries may still bootstrap the standby.
            runtime.network.count("supervisor.failed_promotions")
            self._promote_in_progress = False
            return
        if not hot and link is not None:
            link.stop()
            self.link = None
        if not hot:
            runtime.network.count("supervisor.cold_promotions")
        try:
            manager = yield from recover_manager(
                runtime,
                journal,
                host_name=target,
                resume=False,
                skip_entries=skip_entries,
            )
        except (ManagerRecoveryError, ValueError):
            runtime.network.count("supervisor.failed_promotions")
            self._promote_in_progress = False
            return
        if self.relays:
            from repro.cluster.relay import restore_relays

            yield from restore_relays(
                runtime, self.relays, roster_id=self.relay_roster_id
            )
            manager.use_relays(
                self.relays,
                fanout_k=self.relay_fanout_k,
                batch_window=self.relay_batch_window,
                announce=self.relay_announce,
                roster_id=self.relay_roster_id,
            )
        self._manager = manager
        if self.on_promote is not None:
            self.on_promote(manager)
        # Disarm until the detector actually sees this primary answer:
        # re-deposing it on the same stale evidence would thrash.
        self._armed = False
        self.promotions += 1
        self.takeover_log.append((runtime.sim.now, old_host, manager.host.name))
        runtime.network.count("supervisor.promotions")
        runtime.network.metrics.timer("supervisor.takeover_s").record(
            runtime.sim.now - started
        )
        runtime.trace(
            "supervisor-promoted",
            self.type_name,
            host=manager.host.name,
            term=manager.term,
        )
        runtime.network.publish(
            "supervisor.promoted",
            self.type_name,
            host=manager.host.name,
            term=manager.term,
        )
        self._arm_replication(manager)
        # Promotion done: clear the guard *before* convergence so a
        # second failure mid-convergence can trigger a fresh failover.
        self._promote_in_progress = False
        yield from self._converge(manager)

    def _converge(self, manager):
        """Generator: repair and re-propagate until the fleet converges.

        The supervised counterpart of
        :func:`~repro.cluster.chaos.drive_to_convergence` — same
        round structure, but it never recovers the manager itself
        (that is the failover path's job) and it stands down as soon
        as its manager stops being the authority (deposed or replaced
        by a newer promotion).
        """
        self._converging = True
        try:
            yield from self._converge_rounds(manager)
        finally:
            self._converging = False

    def _converge_rounds(self, manager):
        from repro.cluster.chaos import ChaosCoordinator
        from repro.cluster.coordination import convergence_guard
        from repro.core.manager import WavePolicy
        from repro.legion.errors import LegionError
        from repro.net import TransportError

        sim = self.runtime.sim
        guard = convergence_guard(self.runtime)
        guard_owner = f"supervisor:{self.type_name}"
        yield from manager.resume_propagations(self.retry_policy)
        for round_no in range(self.max_convergence_rounds):
            if self._stopped or manager.deposed or not manager.is_active:
                return
            if manager is not self._manager:
                return  # a newer promotion owns convergence now
            coordinator = ChaosCoordinator(
                self.runtime, auto_recover=False, relays=self.relays
            )
            # Each repair step is guarded on its own: an ICO still cut
            # off behind a partition must not stop this round's
            # re-propagation to the instances that *are* reachable.
            for step in (
                coordinator.restore_relays,
                coordinator.restore_components,
                coordinator.recover_instances,
            ):
                try:
                    yield from step()
                except (LegionError, TransportError):
                    pass
            # Instances admitted to a still-open canary are frozen:
            # converging them back onto the fleet's current version
            # would silently undo the rollout the SLO gate is
            # judging (the gate runner itself finishes or aborts
            # the canary using the journaled state).
            frozen = manager.canary_frozen_loids()
            loids = [
                loid
                for loid in manager.instance_loids()
                if loid not in frozen
            ]
            # The shared guard keeps this converge from racing a
            # remediation wave over the same instances: an overlap
            # denies the whole claim, and the round backs off instead
            # of double-converging.
            if not guard.try_claim(guard_owner, loids):
                self.runtime.network.count("supervisor.converge_deferred")
                yield sim.timeout(
                    min(2.0 ** (round_no + 1), CONVERGENCE_BACKOFF_CAP_S)
                )
                continue
            try:
                tracker = yield from manager.propagate_version(
                    manager.current_version,
                    loids=loids,
                    retry_policy=self.retry_policy,
                    wave_policy=WavePolicy.converge(),
                )
                if tracker.all_acked:
                    self.runtime.network.count("supervisor.convergences")
                    return
            except (LegionError, TransportError):
                # Fleet still unhealthy (or we just got fenced); the
                # guards at the top of the loop sort out which.
                pass
            finally:
                guard.release(guard_owner, loids)
            yield sim.timeout(
                min(2.0 ** (round_no + 1), CONVERGENCE_BACKOFF_CAP_S)
            )
        self.runtime.network.count("supervisor.convergence_giveups")

    def __repr__(self):
        return (
            f"<Supervisor {self.type_name} promotions={self.promotions} "
            f"standbys={','.join(self.standby_hosts)}>"
        )
