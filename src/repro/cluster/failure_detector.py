"""Heartbeat failure detection for management services.

The paper's recovery story (and PR 3's chaos harness) assumes an
*operator* notices a dead manager and calls the recovery entry points.
This module supplies the missing sensor: a
:class:`HeartbeatFailureDetector` probes a watched object on the
simulated clock and reports suspicion after a configurable run of
missed probes — the trigger the :class:`~repro.cluster.supervisor.Supervisor`
uses to promote a standby with no operator in the loop.

Probes are plain transport requests to the watched object's *current*
binding address (resolved per probe, so a watch survives the target
recovering at a new address).  Any reply — including an application
error — proves liveness; only transport-level silence counts as a
miss.  The detection latency from last-good-contact to suspicion is
recorded per transition in the ``detector.detection_latency_s`` timer,
making the interval/timeout trade-off measurable (experiment P4).

Probe loops sleep on daemon timers, so an armed detector never keeps
``Simulator.run()`` alive on its own.
"""

import itertools
import math
from collections import deque

_detector_ids = itertools.count(1)

#: Probe request size: a ping carries no payload beyond framing.
PROBE_BYTES = 64

#: log10(e): converts the exponential-model survival exponent to phi.
_LOG10_E = math.log10(math.e)

#: Success inter-arrival gaps remembered per watch in phi mode.
_GAP_WINDOW = 32


class _Watch:
    """Liveness state for one watched target."""

    __slots__ = (
        "key",
        "resolve",
        "on_suspect",
        "on_recover",
        "misses",
        "suspected",
        "last_ok_at",
        "last_address",
        "gaps",
        "active",
    )

    def __init__(self, key, resolve, on_suspect, on_recover, now):
        self.key = key
        self.resolve = resolve
        self.on_suspect = on_suspect
        self.on_recover = on_recover
        self.misses = 0
        self.suspected = False
        self.last_ok_at = now
        self.last_address = None
        self.gaps = deque(maxlen=_GAP_WINDOW)
        self.active = True


class HeartbeatFailureDetector:
    """Suspicion-threshold heartbeat prober.

    Parameters
    ----------
    runtime:
        The Legion runtime (clock, network, tracing).
    host:
        The host the detector runs on; its endpoint lives under the
        host's address prefix, so the detector dies with its machine
        like everything else.
    interval_s / timeout_s:
        Probe period and per-probe reply timeout.
    suspicion_threshold:
        Consecutive missed probes before a target is suspected.  While
        a target stays suspected, ``on_suspect`` re-fires every further
        ``suspicion_threshold`` misses — so a second failure after a
        recovery the detector never observed still raises the alarm.
    mode:
        ``"threshold"`` (the historical miss-counter) or ``"phi"``.
        Phi-accrual mode scores suspicion continuously from the time
        since the last successful probe, scaled by the *observed* mean
        success-to-success gap (Hayashibara et al.'s accrual detector,
        with Cassandra's exponential model): ``phi =
        log10(e) * elapsed / mean_gap``.  A merely-slow target keeps
        answering — late replies keep resetting the clock, so phi never
        accrues and slow is not declared dead; a crashed target's phi
        climbs without bound and crosses the threshold in bounded time.
        In phi mode each probe also waits longer for its reply
        (``max(timeout_s, 2 * interval_s)``), because a reply that
        limps home late must count as evidence of life, not a miss.
    phi_threshold:
        Suspicion level for phi mode.  8.0 (Cassandra's default) fires
        after ~18.4 mean gaps of silence — ~9 s at the default 0.5 s
        probe interval.
    """

    def __init__(
        self,
        runtime,
        host,
        interval_s=0.5,
        timeout_s=0.4,
        suspicion_threshold=3,
        mode="threshold",
        phi_threshold=8.0,
    ):
        if suspicion_threshold < 1:
            raise ValueError(
                f"suspicion_threshold must be >= 1, got {suspicion_threshold}"
            )
        if mode not in ("threshold", "phi"):
            raise ValueError(f"mode must be 'threshold' or 'phi', got {mode!r}")
        if phi_threshold <= 0:
            raise ValueError(f"phi_threshold must be > 0, got {phi_threshold}")
        self._runtime = runtime
        self._host = host
        self.interval_s = interval_s
        self.timeout_s = timeout_s
        self.suspicion_threshold = suspicion_threshold
        self.mode = mode
        self.phi_threshold = phi_threshold
        #: Suspected-then-recovered transitions: the target answered a
        #: probe while suspected, so the alarm was (at least by then)
        #: wrong.  The gray-failure scorecard for detector tuning.
        self.false_positives = 0
        self.address = f"{host.name}/fdet:{next(_detector_ids)}"
        from repro.net import Endpoint

        self._endpoint = Endpoint(runtime.network, self.address)
        self._watches = {}

    # ------------------------------------------------------------------
    # Watch management
    # ------------------------------------------------------------------

    def watch(self, key, resolve, on_suspect, on_recover=None):
        """Start probing a target; returns the watch key.

        ``resolve`` is a zero-argument callable returning the target's
        current transport address (or None while it has none) — pass
        e.g. ``lambda: runtime.binding_agent.current_address(loid)``.
        ``on_suspect(key)`` fires on the alive->suspected transition
        (and again every threshold-multiple of further misses);
        ``on_recover(key)`` fires on the first successful probe after a
        suspicion.
        """
        if key in self._watches and self._watches[key].active:
            raise ValueError(f"already watching {key!r}")
        watch = _Watch(key, resolve, on_suspect, on_recover, self._runtime.sim.now)
        self._watches[key] = watch
        self._runtime.sim.spawn(
            self._probe_loop(watch), name=f"fdet:{self._host.name}:{key}"
        )
        return key

    def unwatch(self, key):
        """Stop probing ``key`` (the loop exits on its next wake)."""
        watch = self._watches.pop(key, None)
        if watch is not None:
            watch.active = False

    def stop(self):
        """Stop every watch and close the probe endpoint."""
        for key in list(self._watches):
            self.unwatch(key)
        if not self._endpoint.is_closed:
            self._endpoint.close()

    def is_suspected(self, key):
        watch = self._watches.get(key)
        return bool(watch and watch.suspected)

    def phi(self, key):
        """Current accrued suspicion level for ``key`` (phi mode math).

        Defined in any mode (tests compare modes on the same history);
        0.0 for unknown keys.
        """
        watch = self._watches.get(key)
        if watch is None:
            return 0.0
        return self._phi_of(watch, self._runtime.sim.now)

    def _phi_of(self, watch, now):
        if watch.gaps:
            mean_gap = sum(watch.gaps) / len(watch.gaps)
        else:
            # Cold start: no gap history yet, assume a slightly lazy
            # prober so the first silence does not alarm instantly.
            mean_gap = 1.5 * self.interval_s
        if mean_gap < self.interval_s:
            mean_gap = self.interval_s
        return _LOG10_E * (now - watch.last_ok_at) / mean_gap

    # ------------------------------------------------------------------
    # Probe loop
    # ------------------------------------------------------------------

    def _probe_loop(self, watch):
        from repro.net import RemoteError, RequestTimeout, TransportError

        sim = self._runtime.sim
        while watch.active and not self._endpoint.is_closed:
            yield sim.timeout(self.interval_s, daemon=True)
            if not watch.active or self._endpoint.is_closed:
                return
            address = watch.resolve()
            alive = False
            if address is not None:
                watch.last_address = address
                # Phi mode tolerates late replies: a reply landing after
                # the fixed timeout is still proof of life, so the
                # per-probe wait stretches to cover slow-but-alive peers
                # (the accrual math, not the reply wait, decides death).
                reply_wait = self.timeout_s
                if self.mode == "phi":
                    reply_wait = max(reply_wait, 2.0 * self.interval_s)
                try:
                    yield from self._endpoint.request(
                        address,
                        {"op": "invoke", "method": "ping", "args": ()},
                        size_bytes=PROBE_BYTES,
                        timeout_s=reply_wait,
                        max_attempts=1,
                    )
                    alive = True
                except RemoteError:
                    # The target answered, even if with an error: alive.
                    alive = True
                except (RequestTimeout, TransportError):
                    alive = False
            self._runtime.network.count("detector.probes")
            if alive:
                self._note_alive(watch)
            else:
                self._note_miss(watch)

    def _note_alive(self, watch):
        now = self._runtime.sim.now
        watch.misses = 0
        gap = now - watch.last_ok_at
        if gap > 0:
            watch.gaps.append(gap)
        watch.last_ok_at = now
        if watch.suspected:
            watch.suspected = False
            self.false_positives += 1
            self._runtime.network.count("detector.recoveries")
            self._runtime.network.count("detector.false_positives")
            self._runtime.trace(
                "detector-recovered", watch.key, detector=self.address
            )
            if watch.on_recover is not None:
                watch.on_recover(watch.key)

    def _note_miss(self, watch):
        watch.misses += 1
        self._runtime.network.count("detector.missed_probes")
        if self.mode == "phi":
            if self._phi_of(watch, self._runtime.sim.now) < self.phi_threshold:
                return
            # Past the accrual threshold: alarm on the transition, then
            # re-alarm on every further threshold-run of misses (parity
            # with the fixed-threshold re-fire cadence below).
            if watch.suspected and watch.misses % self.suspicion_threshold != 0:
                return
        elif watch.misses % self.suspicion_threshold != 0:
            return
        first = not watch.suspected
        if first:
            watch.suspected = True
            self._runtime.network.count("detector.suspicions")
            self._runtime.network.metrics.timer(
                "detector.detection_latency_s"
            ).record(self._runtime.sim.now - watch.last_ok_at)
            if watch.last_address is not None:
                self._runtime.network.health_observe(
                    watch.last_address, "suspicion"
                )
            self._runtime.trace(
                "detector-suspected",
                watch.key,
                detector=self.address,
                misses=watch.misses,
            )
            self._runtime.network.publish(
                "detector.suspicion",
                watch.key,
                address=watch.last_address,
                misses=watch.misses,
            )
        # Fire on every threshold multiple while suspected: a target
        # that died again before we ever saw it healthy still alarms.
        watch.on_suspect(watch.key)

    def __repr__(self):
        return (
            f"<HeartbeatFailureDetector {self.address} "
            f"watching={len(self._watches)}>"
        )
