"""Cross-daemon coordination: the shared convergence-in-flight guard.

Two daemons can independently decide to drive an instance's
configuration: the :class:`~repro.cluster.supervisor.Supervisor`'s
anti-entropy reconcile loop and the
:class:`~repro.cluster.controller.ReactiveController`'s remediation
actions.  Both funnel through the manager's transactional wave
machinery, which is idempotent per version — but two *concurrent*
converges over the same instance still race: each can observe the
other's half-finished evolution as drift and re-drive it, churning
`applyConfiguration` traffic and (under an abortive wave policy)
double-counting failures.

The :class:`ConvergenceGuard` is the fix: one registry per runtime,
keyed by LOID.  A driver claims the instances it is about to converge;
a claim that overlaps someone else's holding is *denied* — the caller
defers and retries later, it never runs alongside.  Claims are
all-or-nothing so a wave is never split into a claimed and an
unclaimed half.

``violations`` stays zero by construction; it exists so chaos sweeps
can assert the property held (a forced release of somebody else's
claim, the only way to break it, increments the counter instead of
silently corrupting the table).
"""


class ConvergenceGuard:
    """Per-runtime LOID-keyed mutual exclusion for convergence drivers."""

    def __init__(self):
        self._owners = {}  # loid -> owner token
        #: Denied claims (a second driver tried to converge a held
        #: instance and deferred) — the double-converge races *avoided*.
        self.denials = 0
        #: Times a release found the claim held by someone else — a
        #: guard-discipline bug; chaos sweeps assert this stays 0.
        self.violations = 0

    def try_claim(self, owner, loids):
        """Claim every LOID in ``loids`` for ``owner``, all-or-nothing.

        Returns True on success.  Re-claiming one's own holdings is
        fine (a convergence loop re-driving its own wave); any overlap
        with another owner denies the whole claim and counts it.
        """
        loids = list(loids)
        for loid in loids:
            holder = self._owners.get(loid)
            if holder is not None and holder != owner:
                self.denials += 1
                return False
        for loid in loids:
            self._owners[loid] = owner
        return True

    def release(self, owner, loids=None):
        """Release ``owner``'s claims (all of them when ``loids`` is None)."""
        if loids is None:
            loids = [l for l, holder in self._owners.items() if holder == owner]
        for loid in loids:
            holder = self._owners.get(loid)
            if holder is None:
                continue
            if holder != owner:
                self.violations += 1
                continue
            del self._owners[loid]

    def owner_of(self, loid):
        """The owner token holding ``loid``, or None."""
        return self._owners.get(loid)

    def held_by(self, owner):
        """The LOIDs currently claimed by ``owner``."""
        return [l for l, holder in self._owners.items() if holder == owner]

    def busy(self, prefix=""):
        """True when any claim's owner token starts with ``prefix``."""
        return any(owner.startswith(prefix) for owner in self._owners.values())

    def __repr__(self):
        return (
            f"<ConvergenceGuard held={len(self._owners)} "
            f"denials={self.denials} violations={self.violations}>"
        )


def convergence_guard(runtime):
    """The runtime's shared guard, created on first use.

    Lazily attached so the guard needs no runtime-constructor change
    and every driver (supervisor, controller, tests) sees the same
    instance.
    """
    guard = getattr(runtime, "_convergence_guard", None)
    if guard is None:
        guard = runtime._convergence_guard = ConvergenceGuard()
    return guard
