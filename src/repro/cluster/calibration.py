"""Calibrated cost constants, each tied to a claim in the paper (§4).

The reproduction does not try to match the authors' absolute numbers
from first principles — the original substrate was Legion on real
hardware — but every constant here is chosen so that the *measured
behaviour of the mechanism* (who wins, by what factor, where the
crossovers are) reproduces the paper.  Each constant cites the sentence
it is calibrated against.

All times are seconds of simulated time; all sizes are bytes; all
bandwidths are bytes per second.
"""

from dataclasses import dataclass, field


@dataclass
class Calibration:
    """Tunable cost model for the simulated Legion substrate.

    The defaults reproduce the Centurion testbed numbers; experiments
    that sweep a cost (e.g. network bandwidth ablations) construct a
    modified instance rather than mutating the defaults.
    """

    # ------------------------------------------------------------------
    # Network (testbed description, §4: "100 Mbps Switched Ethernet")
    # ------------------------------------------------------------------

    #: Raw port bandwidth: 100 Mbps in bytes/second.
    network_bandwidth_bps: float = 100e6 / 8
    #: One-way LAN propagation + switch latency.
    network_latency_s: float = 100e-6

    # ------------------------------------------------------------------
    # Dynamic function invocation (§4 Overhead: "a dynamic function
    # takes between 10 and 15 microseconds per call, for self-calls,
    # intra-component calls, and inter-component calls alike")
    # ------------------------------------------------------------------

    #: Mean DFM-indirected call overhead.
    dynamic_call_overhead_s: float = 12.5e-6
    #: Fractional jitter giving the paper's 10-15 us spread.
    dynamic_call_jitter: float = 0.2
    #: A direct (compiled, non-DFM) intra-object call, for the ablation.
    direct_call_overhead_s: float = 0.2e-6

    # ------------------------------------------------------------------
    # Remote method invocation (§4: DCDO remote calls "take no longer
    # than calls made on normal Legion objects (since 10-15
    # microseconds is a small fraction of the overall time needed to
    # complete a remote method invocation)")
    # ------------------------------------------------------------------

    #: Per-side marshalling/dispatch cost of a Legion method invocation.
    #: Two sides plus two network legs give a null-RPC round trip of a
    #: few milliseconds, making the DFM's ~12 us "a small fraction".
    method_dispatch_s: float = 1.5e-3
    #: Default request/reply payload for a null method invocation.
    method_message_bytes: int = 512

    # ------------------------------------------------------------------
    # Object creation (§4: "incorporating an object with 500 functions
    # separated into 50 components takes about 10 seconds, whereas
    # creating an object with the same 500 functions that reside in a
    # static monolithic executable takes only 2.2 seconds")
    # ------------------------------------------------------------------

    #: OS process creation + Legion runtime bootstrap for a new object.
    process_spawn_s: float = 1.0
    #: Registering one member function in the object's dispatch table
    #: (both monolithic method tables and DCDO DFMs pay this), chosen so
    #: a 500-function monolithic object costs ~2.2 s to create.
    function_register_s: float = 2.0e-3
    #: Mapping one fetched component into the address space (the
    #: dlopen/symbol-resolution analogue).  Together with the simulated
    #: ICO round trips, data transfer, and disk costs this puts one
    #: uncached small-component incorporation at ~156 ms, so 50
    #: components add ~8 s to creation, reproducing the 10 s DCDO
    #: figure next to the 2.2 s monolithic one.
    component_link_s: float = 0.09
    #: Re-mapping a component that is already in the local cache
    #: (§4 Cost: "approximately 200 microseconds per component").
    component_cached_link_s: float = 200e-6
    #: Effective throughput of fetching component data out of an ICO
    #: into the local file system (includes write-out and checksum), so
    #: that uncached-component evolution is "dominated by the time
    #: needed to download the component data" (§4).
    component_transfer_bps: float = 2e6
    #: One DFM table mutation (add/enable/disable an entry); DFM-only
    #: evolution steps cost microseconds, keeping no-new-component
    #: evolution under the paper's half-second bound.
    dfm_update_s: float = 10e-6

    # ------------------------------------------------------------------
    # Implementation download (§4: "a 5.1 Megabyte object
    # implementation ... takes 15 to 25 seconds to download and ... a
    # 550 K implementation takes about 4 seconds")
    # ------------------------------------------------------------------

    #: Fixed protocol setup cost per executable download (binding the
    #: vault, opening the transfer, creating the local file).
    download_setup_s: float = 2.0
    #: Transfer chunk size of the download protocol.
    download_chunk_bytes: int = 65536
    #: Per-chunk protocol processing (vault read, checksum, disk
    #: write).  With the chunk size above this yields ~4 s for 550 KB
    #: and ~19 s for 5.1 MB, matching the paper's ranges.
    download_chunk_process_s: float = 0.215

    # ------------------------------------------------------------------
    # Stale bindings (§4: "it takes objects approximately 25 to 35
    # seconds to realize that a local binding contains a physical
    # address that the object is no longer using")
    # ------------------------------------------------------------------

    #: Per-attempt reply timeouts used before declaring a binding
    #: stale; the cumulative 2+4+8+16 = 30 s reproduces the 25-35 s
    #: discovery window once jitter is applied.
    rebind_timeout_schedule_s: tuple = (2.0, 4.0, 8.0, 16.0)

    # ------------------------------------------------------------------
    # Object state (state capture/recovery are "object-specific
    # parameters that depend on the size and format of the object's
    # contained data")
    # ------------------------------------------------------------------

    #: Throughput of serializing object state to its OPR.
    state_capture_bps: float = 10e6
    #: Throughput of reading state back into a new process.
    state_restore_bps: float = 10e6
    #: Fixed cost to open/close an OPR transaction with the vault.
    state_fixed_s: float = 0.1

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------

    #: Local disk bandwidth for vault reads/writes.
    disk_bandwidth_bps: float = 20e6
    #: Per-operation disk seek/overhead.
    disk_seek_s: float = 5e-3

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    #: Fractional jitter applied to coarse costs (spawn, link).
    coarse_jitter: float = 0.05

    #: Host architectures present in the testbed, for implementation
    #: types; Centurion was x86 Linux but the model is heterogeneous.
    architectures: tuple = ("x86-linux",)

    extra: dict = field(default_factory=dict)

    def download_time(self, size_bytes):
        """Model time to download an implementation of ``size_bytes``.

        This is the analytical form of the chunked download protocol,
        used for sanity checks; the simulated path in
        :mod:`repro.legion.implementation` produces the same value by
        construction plus wire time.
        """
        chunks = max(1, -(-size_bytes // self.download_chunk_bytes))
        wire = size_bytes / self.network_bandwidth_bps
        return self.download_setup_s + chunks * self.download_chunk_process_s + wire


#: Shared default calibration used when a testbed does not override it.
DEFAULT_CALIBRATION = Calibration()
