"""Client traffic generators.

Two traffic models:

- **Closed loop** (:class:`ClosedLoopClient`): issue a call, wait for
  the reply, optionally think, repeat — the standard model for
  request/response experiments.  Errors count: failed calls record
  their time-to-failure and show up in ``error_rate()``.
- **Open loop** (:class:`OpenLoopLoad`): arrivals fire on a schedule
  regardless of outstanding replies.  One generator process draws
  inter-arrival gaps at the *aggregate* rate of the whole client
  population — a million clients each calling once every 1000 s is one
  Poisson stream at 1000 calls/s — so simulating planet-scale traffic
  costs O(arrivals), not O(clients).  Each arrival spawns a short-lived
  invocation process; per-call success/error and latency feed an
  optional :class:`~repro.obs.slo.SLOMonitor` and
  :class:`~repro.obs.metrics.Timer`.

Arrival schedules (:class:`PoissonArrivals`, :class:`BurstyArrivals`,
:class:`DiurnalArrivals`) are pure inter-arrival calculators over a
caller-supplied ``random.Random``, so traffic is deterministic per
(seed, stream name).
"""

import math


class ClosedLoopClient:
    """A closed-loop caller against one target object.

    Parameters
    ----------
    client:
        A :class:`~repro.legion.runtime.Client`.
    loid:
        Target object.
    method, args:
        The invocation to repeat.
    calls:
        How many calls to issue (None = until stopped).
    think_time_s:
        Idle time between calls.
    """

    def __init__(self, client, loid, method, args=(), calls=100, think_time_s=0.0):
        self._client = client
        self._loid = loid
        self._method = method
        self._args = tuple(args)
        self._calls = calls
        self._think_time_s = think_time_s
        self.latencies = []
        self.errors = []
        #: Time-to-failure samples, one per error, parallel to
        #: ``errors`` — how long each failed call burned before giving
        #: up.  Failed calls are *not* free: a harness that drops them
        #: from its aggregates under-reports what clients experienced.
        self.failure_latencies = []
        self._stopped = False

    def stop(self):
        """Stop after the in-flight call completes."""
        self._stopped = True

    @property
    def completed_calls(self):
        """Number of successful calls so far."""
        return len(self.latencies)

    @property
    def failed_calls(self):
        """Number of calls that raised."""
        return len(self.errors)

    @property
    def total_calls(self):
        """Every call issued: successes plus failures."""
        return len(self.latencies) + len(self.errors)

    def error_rate(self):
        """Fraction of issued calls that failed, or None before any."""
        total = self.total_calls
        if not total:
            return None
        return len(self.errors) / total

    def mean_latency(self):
        """Mean latency over successful calls, or None."""
        if not self.latencies:
            return None
        return sum(self.latencies) / len(self.latencies)

    def run(self):
        """Process body driving the call loop; spawn or ``yield from``."""
        sim = self._client.sim
        issued = 0
        while not self._stopped and (self._calls is None or issued < self._calls):
            issued += 1
            started = sim.now
            try:
                yield from self._client.invoke(self._loid, self._method, *self._args)
            except Exception as error:  # noqa: BLE001 - experiments record errors
                self.errors.append((sim.now, error))
                self.failure_latencies.append(sim.now - started)
            else:
                self.latencies.append(sim.now - started)
            if self._think_time_s:
                yield sim.timeout(self._think_time_s)
        return self.completed_calls


def run_clients(runtime, clients):
    """Run a set of :class:`ClosedLoopClient` loops to completion."""
    processes = [runtime.sim.spawn(client.run(), name="client-loop") for client in clients]
    from repro.sim.events import AllOf

    runtime.sim.run_process(_join_all(runtime, processes))
    return clients


def _join_all(runtime, processes):
    from repro.sim.events import AllOf

    if processes:
        yield AllOf(runtime.sim, processes)
    return None


# ----------------------------------------------------------------------
# Open-loop arrival schedules
# ----------------------------------------------------------------------


class PoissonArrivals:
    """Memoryless arrivals at a constant aggregate rate.

    ``rate_hz`` is the whole population's rate; use
    :meth:`population` to derive it from a client count and a
    per-client rate without ever materializing the clients.
    """

    def __init__(self, rate_hz):
        if rate_hz <= 0:
            raise ValueError(f"rate_hz must be > 0, got {rate_hz}")
        self.rate_hz = rate_hz

    @classmethod
    def population(cls, clients, per_client_rate_hz):
        """Aggregate ``clients`` independent Poisson callers into one
        stream — the superposition of Poisson processes is Poisson at
        the summed rate, so a million-client population is a single
        arrival generator."""
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        return cls(clients * per_client_rate_hz)

    def rate(self, now):
        """Instantaneous aggregate rate (constant here)."""
        return self.rate_hz

    def interarrival(self, now, rng):
        """Seconds until the next arrival after ``now``."""
        return rng.expovariate(self.rate_hz)


class BurstyArrivals:
    """On/off (interrupted Poisson) arrivals: bursts over a base load.

    Each ``period_s`` cycle spends ``burst_fraction`` of its start at
    ``burst_rate_hz`` and the rest at ``base_rate_hz`` — flash crowds
    over a steady background.
    """

    def __init__(self, base_rate_hz, burst_rate_hz, period_s=60.0, burst_fraction=0.2):
        if base_rate_hz <= 0 or burst_rate_hz < base_rate_hz:
            raise ValueError("need burst_rate_hz >= base_rate_hz > 0")
        if not 0 < burst_fraction < 1:
            raise ValueError(f"burst_fraction must be in (0, 1), got {burst_fraction}")
        if period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {period_s}")
        self.base_rate_hz = base_rate_hz
        self.burst_rate_hz = burst_rate_hz
        self.period_s = period_s
        self.burst_fraction = burst_fraction

    def rate(self, now):
        """Burst rate inside the burst window, base rate outside."""
        phase = (now % self.period_s) / self.period_s
        return self.burst_rate_hz if phase < self.burst_fraction else self.base_rate_hz

    def interarrival(self, now, rng):
        """Thinning against the burst (peak) rate."""
        return _thinned_interarrival(self, now, rng, self.burst_rate_hz)


class DiurnalArrivals:
    """Sinusoidal day/night load between a trough and a peak rate."""

    def __init__(self, peak_rate_hz, trough_rate_hz, period_s=86_400.0, phase_s=0.0):
        if trough_rate_hz <= 0 or peak_rate_hz < trough_rate_hz:
            raise ValueError("need peak_rate_hz >= trough_rate_hz > 0")
        if period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {period_s}")
        self.peak_rate_hz = peak_rate_hz
        self.trough_rate_hz = trough_rate_hz
        self.period_s = period_s
        self.phase_s = phase_s

    def rate(self, now):
        """Instantaneous rate: peak at phase 0, trough half a period on."""
        mid = (self.peak_rate_hz + self.trough_rate_hz) / 2.0
        amplitude = (self.peak_rate_hz - self.trough_rate_hz) / 2.0
        angle = 2.0 * math.pi * ((now + self.phase_s) % self.period_s) / self.period_s
        return mid + amplitude * math.cos(angle)

    def interarrival(self, now, rng):
        """Thinning against the peak rate."""
        return _thinned_interarrival(self, now, rng, self.peak_rate_hz)


def _thinned_interarrival(schedule, now, rng, peak_rate_hz):
    """Lewis-Shedler thinning: exact non-homogeneous Poisson sampling.

    Draw candidates at the peak rate; accept each with probability
    rate(t)/peak.  Pure computation — no simulated time passes here.
    """
    t = now
    while True:
        t += rng.expovariate(peak_rate_hz)
        if rng.random() * peak_rate_hz <= schedule.rate(t):
            return t - now


class OpenLoopLoad:
    """Open-loop traffic: arrivals never wait for replies.

    One driver process draws inter-arrival gaps from ``arrivals`` and
    spawns a per-call process for each — so offered load is governed by
    the schedule, not by service latency, and a slow fleet shows up as
    latency (and queue) growth instead of silently shedding offered
    work the way a closed loop does.

    Parameters
    ----------
    client:
        A :class:`~repro.legion.runtime.Client` issuing the calls.
    loids:
        Target objects; arrivals round-robin across them.
    arrivals:
        A :class:`PoissonArrivals` / :class:`BurstyArrivals` /
        :class:`DiurnalArrivals` (anything with ``interarrival``).
    rng:
        A ``random.Random`` (e.g. ``runtime.rng.stream("traffic")``).
    method, args:
        The invocation each arrival issues.
    duration_s:
        How long to generate arrivals (None = until :meth:`stop`).
    monitor:
        Optional :class:`~repro.obs.slo.SLOMonitor` fed per call.
    timer:
        Optional :class:`~repro.obs.metrics.Timer` fed success latency.
    timeout_schedule:
        Per-call invocation timeouts (keep short under chaos: a dead
        target should cost an error sample, not minutes of rebinding).
    max_in_flight:
        Arrivals beyond this many outstanding calls are *shed* (counted
        in ``shed_calls``) — the harness's own memory guard; an SLO
        breach should fire long before this trips.
    """

    def __init__(
        self,
        client,
        loids,
        arrivals,
        rng,
        method="ping",
        args=(),
        duration_s=None,
        monitor=None,
        timer=None,
        timeout_schedule=(2.0, 5.0),
        max_in_flight=10_000,
        name="open-loop",
    ):
        if not loids:
            raise ValueError("open-loop load needs at least one target")
        self._client = client
        self._loids = list(loids)
        self._arrivals = arrivals
        self._rng = rng
        self._method = method
        self._args = tuple(args)
        self._duration_s = duration_s
        self.monitor = monitor
        self.timer = timer
        self._timeout_schedule = timeout_schedule
        self._max_in_flight = max_in_flight
        self.name = name
        self.issued_calls = 0
        self.ok_calls = 0
        self.error_calls = 0
        self.shed_calls = 0
        self.in_flight = 0
        self.peak_in_flight = 0
        self._stopped = False
        self._process = None

    def stop(self):
        """Stop generating arrivals (in-flight calls finish)."""
        self._stopped = True

    @property
    def done_calls(self):
        """Calls that finished, either way."""
        return self.ok_calls + self.error_calls

    def error_rate(self):
        """Fraction of finished calls that failed, or None before any."""
        done = self.done_calls
        if not done:
            return None
        return self.error_calls / done

    def start(self):
        """Spawn the driver process; returns self."""
        sim = self._client.sim
        self._process = sim.spawn(self.run(), name=f"open-loop:{self.name}")
        return self

    def run(self):
        """Generator: the arrival driver; spawn or ``yield from``."""
        sim = self._client.sim
        end = None if self._duration_s is None else sim.now + self._duration_s
        while not self._stopped:
            gap = self._arrivals.interarrival(sim.now, self._rng)
            if end is not None and sim.now + gap >= end:
                # Daemon wait-out so an open-ended run() caller sees the
                # full duration without keeping the sim alive forever.
                if end > sim.now:
                    yield sim.timeout(end - sim.now, daemon=True)
                break
            yield sim.timeout(gap, daemon=True)
            if self._stopped:
                break
            if self.in_flight >= self._max_in_flight:
                self.shed_calls += 1
                continue
            target = self._loids[self.issued_calls % len(self._loids)]
            self.issued_calls += 1
            self.in_flight += 1
            self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
            sim.spawn(
                self._one_call(target),
                name=f"open-loop-call:{self.name}:{self.issued_calls}",
            )
        return self.issued_calls

    def _one_call(self, loid):
        sim = self._client.sim
        started = sim.now
        try:
            yield from self._client.invoke(
                loid,
                self._method,
                *self._args,
                timeout_schedule=self._timeout_schedule,
            )
        except Exception:  # noqa: BLE001 - per-call outcome is the datum
            elapsed = sim.now - started
            self.error_calls += 1
            if self.monitor is not None:
                self.monitor.record_error(elapsed)
        else:
            elapsed = sim.now - started
            self.ok_calls += 1
            if self.monitor is not None:
                self.monitor.record_success(elapsed)
            if self.timer is not None:
                self.timer.record(elapsed)
        finally:
            self.in_flight -= 1

    def __repr__(self):
        return (
            f"<OpenLoopLoad {self.name} issued={self.issued_calls} "
            f"ok={self.ok_calls} err={self.error_calls} "
            f"in_flight={self.in_flight}>"
        )
