"""Client traffic generators.

Closed-loop clients issue a call, wait for the reply, optionally think,
and repeat — the standard model for request/response experiments.
Latency samples are collected per client for the harness to aggregate.
"""


class ClosedLoopClient:
    """A closed-loop caller against one target object.

    Parameters
    ----------
    client:
        A :class:`~repro.legion.runtime.Client`.
    loid:
        Target object.
    method, args:
        The invocation to repeat.
    calls:
        How many calls to issue (None = until stopped).
    think_time_s:
        Idle time between calls.
    """

    def __init__(self, client, loid, method, args=(), calls=100, think_time_s=0.0):
        self._client = client
        self._loid = loid
        self._method = method
        self._args = tuple(args)
        self._calls = calls
        self._think_time_s = think_time_s
        self.latencies = []
        self.errors = []
        self._stopped = False

    def stop(self):
        """Stop after the in-flight call completes."""
        self._stopped = True

    @property
    def completed_calls(self):
        """Number of successful calls so far."""
        return len(self.latencies)

    def mean_latency(self):
        """Mean latency over successful calls, or None."""
        if not self.latencies:
            return None
        return sum(self.latencies) / len(self.latencies)

    def run(self):
        """Process body driving the call loop; spawn or ``yield from``."""
        sim = self._client.sim
        issued = 0
        while not self._stopped and (self._calls is None or issued < self._calls):
            issued += 1
            started = sim.now
            try:
                yield from self._client.invoke(self._loid, self._method, *self._args)
            except Exception as error:  # noqa: BLE001 - experiments record errors
                self.errors.append((sim.now, error))
            else:
                self.latencies.append(sim.now - started)
            if self._think_time_s:
                yield sim.timeout(self._think_time_s)
        return self.completed_calls


def run_clients(runtime, clients):
    """Run a set of :class:`ClosedLoopClient` loops to completion."""
    processes = [runtime.sim.spawn(client.run(), name="client-loop") for client in clients]
    from repro.sim.events import AllOf

    runtime.sim.run_process(_join_all(runtime, processes))
    return clients


def _join_all(runtime, processes):
    from repro.sim.events import AllOf

    if processes:
        yield AllOf(runtime.sim, processes)
    return None
