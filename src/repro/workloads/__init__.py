"""Synthetic workload generators for experiments and examples."""

from repro.workloads.generator import (
    DegradedCallError,
    build_component_version,
    build_degraded_version,
    degraded_body,
    make_noop_manager,
    synthetic_components,
)
from repro.workloads.traffic import (
    BurstyArrivals,
    ClosedLoopClient,
    DiurnalArrivals,
    OpenLoopLoad,
    PoissonArrivals,
    run_clients,
)

__all__ = [
    "BurstyArrivals",
    "ClosedLoopClient",
    "DegradedCallError",
    "DiurnalArrivals",
    "OpenLoopLoad",
    "PoissonArrivals",
    "build_component_version",
    "build_degraded_version",
    "degraded_body",
    "make_noop_manager",
    "run_clients",
    "synthetic_components",
]
