"""Synthetic workload generators for experiments and examples."""

from repro.workloads.generator import (
    build_component_version,
    make_noop_manager,
    synthetic_components,
)
from repro.workloads.traffic import ClosedLoopClient, run_clients

__all__ = [
    "ClosedLoopClient",
    "build_component_version",
    "make_noop_manager",
    "run_clients",
    "synthetic_components",
]
