"""Parameterized component and type generators.

The §4 creation experiment sweeps "an object with 500 functions
separated into 50 components"; these builders produce exactly such
configurations: ``n`` components of ``k`` no-op functions each, with
controllable component sizes.
"""

from repro.core import ComponentBuilder
from repro.core.manager import define_dcdo_type


def _noop_body(ctx):
    return None


def _echo_body(ctx, *args):
    return args


def synthetic_components(
    component_count,
    functions_per_component,
    size_bytes=64_000,
    prefix="comp",
):
    """Build ``component_count`` components of no-op functions.

    Function names are globally unique (``<prefix><i>_fn<j>``), so all
    components can be incorporated into one DCDO without collisions.
    """
    if component_count < 1:
        raise ValueError(f"component_count must be >= 1, got {component_count}")
    if functions_per_component < 1:
        raise ValueError(
            f"functions_per_component must be >= 1, got {functions_per_component}"
        )
    components = []
    for comp_index in range(component_count):
        builder = ComponentBuilder(f"{prefix}{comp_index:03d}")
        for fn_index in range(functions_per_component):
            builder.function(f"{prefix}{comp_index:03d}_fn{fn_index:03d}", _noop_body)
        builder.variant(size_bytes=size_bytes)
        components.append(builder.build())
    return components


def build_component_version(manager, components, enable_all=True):
    """Register ``components``, build an instantiable version of them.

    Returns the version id; does not set it current (callers choose).
    """
    for component in components:
        if component.component_id not in manager.registered_components():
            manager.register_component(component)
    parent = manager.current_version
    version = manager.derive_version(parent) if parent is not None else manager.new_version()
    for component in components:
        if component.component_id not in manager.descriptor_of(version).component_ids:
            manager.incorporate_into(version, component.component_id)
    if enable_all:
        descriptor = manager.descriptor_of(version)
        for component in components:
            for name in component.functions:
                if not descriptor.is_enabled(name, component.component_id):
                    descriptor.enable(name, component.component_id)
    manager.mark_instantiable(version)
    return version


class DegradedCallError(Exception):
    """Raised by a fault-injected function body: the bad build failing."""


def degraded_body(added_latency_s=0.0, error_every=0):
    """A ``ping``-compatible body with built-in regressions.

    The returned body charges ``added_latency_s`` extra CPU per call
    and (with ``error_every=k > 0``) raises :class:`DegradedCallError`
    on every ``k``-th call — a component version that is *functionally*
    deployable but violates service objectives, which is exactly what
    structural dependency checks (§3.2) cannot catch and SLO gates can.
    """

    def body(ctx, *args):
        if added_latency_s > 0:
            yield ctx.work(added_latency_s)
        if error_every > 0:
            count = ctx.state["degraded_calls"] = (
                ctx.state.get("degraded_calls", 0) + 1
            )
            if count % error_every == 0:
                raise DegradedCallError(
                    f"injected failure (call {count}, every {error_every})"
                )
        return args

    return body


def build_degraded_version(
    manager, added_latency_s=0.0, error_every=0, prefix="degraded", size_bytes=64_000
):
    """Stage a v-next that regresses the ``ping`` path; returns its id.

    Builds one new component whose ``ping`` (enabled with
    ``replace_current``) carries the injected latency/error behaviour
    of :func:`degraded_body`, derives a version from the manager's
    current one incorporating it, and marks it instantiable.  Pair with
    :func:`make_noop_manager` fleets: after evolution, client pings hit
    the degraded build.
    """
    builder = ComponentBuilder(f"{prefix}-{added_latency_s:g}-{error_every}")
    builder.function("ping", degraded_body(added_latency_s, error_every))
    builder.variant(size_bytes=size_bytes)
    component = builder.build()
    if component.component_id not in manager.registered_components():
        manager.register_component(component)
    parent = manager.current_version
    version = manager.derive_version(parent) if parent is not None else manager.new_version()
    descriptor = manager.descriptor_of(version)
    if component.component_id not in descriptor.component_ids:
        manager.incorporate_into(version, component.component_id)
    descriptor.enable("ping", component.component_id, replace_current=True)
    manager.mark_instantiable(version)
    return version


def make_noop_manager(
    runtime,
    type_name,
    component_count,
    functions_per_component,
    size_bytes=64_000,
    **policy_kwargs,
):
    """A fully-initialized manager for a synthetic no-op DCDO type.

    Registers the components, builds version 1 with everything
    enabled, and makes it current.  Also adds a real ``ping`` function
    (in the first component) so invocation experiments have something
    to call.
    """
    components = synthetic_components(
        component_count, functions_per_component, size_bytes=size_bytes,
        prefix=f"{type_name.lower()}-",
    )
    # Give the first component a ping for invocation measurements.
    first = components[0]
    from repro.core.functions import FunctionDef

    first.functions["ping"] = FunctionDef(name="ping", body=_echo_body)
    manager = define_dcdo_type(runtime, type_name, **policy_kwargs)
    version = build_component_version(manager, components)
    manager.set_current_version(version)
    return manager, components
