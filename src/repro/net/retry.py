"""Reusable retry policies: exponential backoff with jitter.

A :class:`RetryPolicy` is pure arithmetic — it owns no clock and sends
nothing.  Callers (the transport's multi-attempt ``request``, the
invoker's schedule walk, the DCDO Manager's propagation push) ask it
how long to wait before the next attempt and whether another attempt
is still worth making, then do the waiting themselves on the simulator
clock.  Keeping the policy passive makes one implementation reusable
across layers and keeps runs deterministic: jitter draws come from the
caller-supplied named RNG stream, never from global randomness.
"""

import enum


class RetryPolicy:
    """Exponential backoff with optional jitter, cap, and deadline.

    Parameters
    ----------
    base_s:
        Backoff before the second attempt (the first attempt is always
        immediate).
    multiplier:
        Growth factor per subsequent attempt.
    max_backoff_s:
        Ceiling on any single backoff.
    max_attempts:
        Total attempts allowed, or ``None`` for unlimited (bounded by
        ``deadline_s`` instead).
    deadline_s:
        Give up once this much time has elapsed since the first
        attempt, or ``None`` for no deadline.
    jitter_fraction:
        Each backoff is perturbed by up to ±this fraction of itself.
    rng:
        A :class:`~repro.sim.DeterministicRNG`; required when
        ``jitter_fraction`` is non-zero.
    stream:
        RNG stream name for jitter draws.
    """

    def __init__(
        self,
        base_s=0.1,
        multiplier=2.0,
        max_backoff_s=5.0,
        max_attempts=4,
        deadline_s=None,
        jitter_fraction=0.0,
        rng=None,
        stream="retry",
    ):
        if base_s < 0:
            raise ValueError(f"base_s must be >= 0, got {base_s}")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if max_backoff_s < 0:
            raise ValueError(f"max_backoff_s must be >= 0, got {max_backoff_s}")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1 or None, got {max_attempts}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0 or None, got {deadline_s}")
        if not 0 <= jitter_fraction < 1:
            raise ValueError(f"jitter_fraction must be in [0, 1), got {jitter_fraction}")
        if jitter_fraction > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self.base_s = base_s
        self.multiplier = multiplier
        self.max_backoff_s = max_backoff_s
        self.max_attempts = max_attempts
        self.deadline_s = deadline_s
        self.jitter_fraction = jitter_fraction
        self._rng = rng
        self._stream = stream

    def backoff_s(self, attempt):
        """Backoff to wait after ``attempt`` failed attempts (>= 1).

        Grows geometrically from ``base_s`` with jitter applied to the
        capped nominal value; the result is clamped again after jitter,
        so ``max_backoff_s`` is a true upper bound on every wait.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        nominal = min(self.base_s * self.multiplier ** (attempt - 1), self.max_backoff_s)
        if self.jitter_fraction == 0 or nominal == 0:
            return nominal
        jittered = self._rng.jitter(self._stream, nominal, self.jitter_fraction)
        return min(jittered, self.max_backoff_s)

    def should_retry(self, attempts_made, started, now):
        """True if another attempt is allowed.

        ``attempts_made`` attempts have already been made; ``started``
        is when the first began.  Deadline accounting is against *now*,
        before the next backoff, so a caller may slightly overshoot the
        deadline by one backoff — matching how real retry loops behave.
        """
        if self.max_attempts is not None and attempts_made >= self.max_attempts:
            return False
        if self.deadline_s is not None and now - started >= self.deadline_s:
            return False
        return True

    def __repr__(self):
        return (
            f"<RetryPolicy base={self.base_s:g}s x{self.multiplier:g} "
            f"cap={self.max_backoff_s:g}s attempts={self.max_attempts} "
            f"deadline={self.deadline_s}>"
        )


#: Spacing used by a bare multi-attempt ``Endpoint.request`` when the
#: caller supplies no policy: quick first retry, doubling, short cap —
#: the per-attempt reply timeout remains the dominant cost.
DEFAULT_REQUEST_RETRY = RetryPolicy(
    base_s=0.1, multiplier=2.0, max_backoff_s=2.0, max_attempts=None
)


class RttEstimator:
    """Jacobson/Karn round-trip estimation for one peer.

    Keeps the classic smoothed-RTT / RTT-variance pair
    (``srtt += err/8``, ``rttvar += (|err| - rttvar)/4``) and derives
    the retransmission timeout as ``srtt + 4*rttvar``, clamped to
    ``[min_rto_s, max_rto_s]``.  Like the retry policy above it is pure
    arithmetic: callers feed it successful-attempt RTTs and ask it for
    timeouts.  Karn's ambiguity problem mostly vanishes here because
    the transport mints a fresh message id per attempt, so every reply
    is matched to the exact attempt that earned it.

    ``timeout_schedule(n)`` expands the single RTO into an n-step
    per-attempt schedule growing geometrically, mirroring the shape of
    the calibrated fixed schedules it substitutes for.
    ``hedge_delay_s()`` answers when a backup request becomes worth
    sending: around the high percentiles of the RTT distribution
    (``srtt + 2*rttvar``), well before the timeout gives up.
    """

    #: Smoothing gains from RFC 6298 (alpha = 1/8, beta = 1/4).
    ALPHA = 0.125
    BETA = 0.25
    #: Variance multiplier in the RTO formula.
    K = 4.0

    __slots__ = ("initial_rto_s", "min_rto_s", "max_rto_s", "srtt", "rttvar", "samples")

    def __init__(self, initial_rto_s=1.0, min_rto_s=0.01, max_rto_s=60.0):
        if initial_rto_s <= 0:
            raise ValueError(f"initial_rto_s must be > 0, got {initial_rto_s}")
        if not 0 < min_rto_s <= max_rto_s:
            raise ValueError(
                f"need 0 < min_rto_s <= max_rto_s, got {min_rto_s} / {max_rto_s}"
            )
        self.initial_rto_s = initial_rto_s
        self.min_rto_s = min_rto_s
        self.max_rto_s = max_rto_s
        self.srtt = None
        self.rttvar = None
        self.samples = 0

    def observe(self, rtt_s):
        """Fold one measured round trip into the estimate."""
        if rtt_s < 0:
            raise ValueError(f"rtt must be >= 0, got {rtt_s}")
        if self.srtt is None:
            # First sample (RFC 6298 §2.2): srtt = R, rttvar = R/2.
            self.srtt = rtt_s
            self.rttvar = rtt_s / 2.0
        else:
            err = rtt_s - self.srtt
            self.rttvar += self.BETA * (abs(err) - self.rttvar)
            self.srtt += self.ALPHA * err
        self.samples += 1

    @property
    def rto_s(self):
        """Current retransmission timeout (initial RTO until warmed)."""
        if self.srtt is None:
            return self.initial_rto_s
        rto = self.srtt + self.K * self.rttvar
        if rto < self.min_rto_s:
            return self.min_rto_s
        if rto > self.max_rto_s:
            return self.max_rto_s
        return rto

    def timeout_schedule(self, attempts, multiplier=2.0):
        """Per-attempt timeouts: RTO doubling per attempt, capped."""
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        rto = self.rto_s
        return tuple(
            min(rto * multiplier**i, self.max_rto_s) for i in range(attempts)
        )

    def hedge_delay_s(self):
        """Delay before a backup (hedged) request is worth sending.

        ``srtt + 2*rttvar`` sits near the tail of the observed RTT
        distribution: a healthy reply has usually landed by then, so a
        hedge fired after it mostly costs nothing — and under a gray
        peer it races a fresh sample against the slow one.  Falls back
        to the initial RTO while cold.
        """
        if self.srtt is None:
            return self.initial_rto_s
        delay = self.srtt + 2.0 * self.rttvar
        if delay < self.min_rto_s:
            return self.min_rto_s
        if delay > self.max_rto_s:
            return self.max_rto_s
        return delay

    def __repr__(self):
        if self.srtt is None:
            return f"<RttEstimator cold rto={self.initial_rto_s:g}s>"
        return (
            f"<RttEstimator srtt={self.srtt * 1e3:.2f}ms "
            f"rttvar={self.rttvar * 1e3:.2f}ms rto={self.rto_s * 1e3:.2f}ms "
            f"n={self.samples}>"
        )


class CircuitState(enum.Enum):
    """The three classical circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """A failure-counting circuit breaker on the simulator clock.

    Protects callers from burning a full timeout schedule against a
    target that is known-dead: after ``failure_threshold`` consecutive
    failures the breaker *opens* and :meth:`allow` answers False until
    ``cooldown_s`` of simulated time has passed.  The first caller
    after the cooldown gets a single *half-open* probe; its success
    closes the breaker, its failure re-opens it (restarting the
    cooldown).  All timing uses ``sim.now``, so breaker behaviour is
    deterministic and reproducible across seeded runs.

    The breaker is accounting only — it sends nothing and waits for
    nothing.  Callers check :meth:`allow` before attempting and report
    the outcome via :meth:`record_success` / :meth:`record_failure`;
    see :meth:`MethodInvoker.invoke`'s ``breaker`` parameter for the
    RPC wiring (shared by the rebind walk and ICO downloads).

    Parameters
    ----------
    sim:
        The simulator whose clock cooldowns are measured on.
    failure_threshold:
        Consecutive failures that trip a closed breaker open.
    cooldown_s:
        Open-state dwell time before a half-open probe is admitted.
    name:
        Diagnostic label (used by registries and reports).
    on_transition:
        Optional callback ``(breaker, new_state)`` fired on every state
        change — registries hook metrics counters here.
    """

    def __init__(
        self, sim, failure_threshold=3, cooldown_s=30.0, name=None, on_transition=None
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self._sim = sim
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.name = name
        self._on_transition = on_transition
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = None
        self._probe_in_flight = False
        #: Lifetime counters, for reports and assertions.
        self.failures = 0
        self.successes = 0
        self.times_opened = 0
        self.short_circuits = 0

    @property
    def state(self):
        """The breaker's current :class:`CircuitState` (clock-aware:
        an open breaker past its cooldown reads as HALF_OPEN)."""
        if (
            self._state is CircuitState.OPEN
            and self._sim.now - self._opened_at >= self.cooldown_s
        ):
            return CircuitState.HALF_OPEN
        return self._state

    @property
    def retry_at(self):
        """Earliest simulated time a probe will be admitted, or None
        when the breaker is not open."""
        if self._state is not CircuitState.OPEN:
            return None
        return self._opened_at + self.cooldown_s

    def _transition(self, state):
        self._state = state
        if self._on_transition is not None:
            self._on_transition(self, state)

    def allow(self):
        """True if an attempt may proceed now.

        In the half-open window exactly one probe is admitted at a
        time; concurrent callers are short-circuited until its outcome
        is recorded.
        """
        state = self.state
        if state is CircuitState.CLOSED:
            return True
        if state is CircuitState.HALF_OPEN and not self._probe_in_flight:
            if self._state is not CircuitState.HALF_OPEN:
                self._transition(CircuitState.HALF_OPEN)
            self._probe_in_flight = True
            return True
        self.short_circuits += 1
        return False

    def record_success(self):
        """Report a successful attempt: the breaker closes."""
        self.successes += 1
        self._consecutive_failures = 0
        self._probe_in_flight = False
        if self._state is not CircuitState.CLOSED:
            self._transition(CircuitState.CLOSED)

    def record_failure(self):
        """Report a failed attempt: count towards tripping, or re-open
        immediately if this was the half-open probe."""
        self.failures += 1
        self._consecutive_failures += 1
        probe_failed = self._probe_in_flight
        self._probe_in_flight = False
        if probe_failed or (
            self._state is CircuitState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._opened_at = self._sim.now
            self.times_opened += 1
            self._transition(CircuitState.OPEN)

    def __repr__(self):
        return (
            f"<CircuitBreaker {self.name or '?'} {self.state.value} "
            f"failures={self._consecutive_failures}/{self.failure_threshold}>"
        )
