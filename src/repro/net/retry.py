"""Reusable retry policies: exponential backoff with jitter.

A :class:`RetryPolicy` is pure arithmetic — it owns no clock and sends
nothing.  Callers (the transport's multi-attempt ``request``, the
invoker's schedule walk, the DCDO Manager's propagation push) ask it
how long to wait before the next attempt and whether another attempt
is still worth making, then do the waiting themselves on the simulator
clock.  Keeping the policy passive makes one implementation reusable
across layers and keeps runs deterministic: jitter draws come from the
caller-supplied named RNG stream, never from global randomness.
"""


class RetryPolicy:
    """Exponential backoff with optional jitter, cap, and deadline.

    Parameters
    ----------
    base_s:
        Backoff before the second attempt (the first attempt is always
        immediate).
    multiplier:
        Growth factor per subsequent attempt.
    max_backoff_s:
        Ceiling on any single backoff.
    max_attempts:
        Total attempts allowed, or ``None`` for unlimited (bounded by
        ``deadline_s`` instead).
    deadline_s:
        Give up once this much time has elapsed since the first
        attempt, or ``None`` for no deadline.
    jitter_fraction:
        Each backoff is perturbed by up to ±this fraction of itself.
    rng:
        A :class:`~repro.sim.DeterministicRNG`; required when
        ``jitter_fraction`` is non-zero.
    stream:
        RNG stream name for jitter draws.
    """

    def __init__(
        self,
        base_s=0.1,
        multiplier=2.0,
        max_backoff_s=5.0,
        max_attempts=4,
        deadline_s=None,
        jitter_fraction=0.0,
        rng=None,
        stream="retry",
    ):
        if base_s < 0:
            raise ValueError(f"base_s must be >= 0, got {base_s}")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if max_backoff_s < 0:
            raise ValueError(f"max_backoff_s must be >= 0, got {max_backoff_s}")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1 or None, got {max_attempts}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0 or None, got {deadline_s}")
        if not 0 <= jitter_fraction < 1:
            raise ValueError(f"jitter_fraction must be in [0, 1), got {jitter_fraction}")
        if jitter_fraction > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self.base_s = base_s
        self.multiplier = multiplier
        self.max_backoff_s = max_backoff_s
        self.max_attempts = max_attempts
        self.deadline_s = deadline_s
        self.jitter_fraction = jitter_fraction
        self._rng = rng
        self._stream = stream

    def backoff_s(self, attempt):
        """Backoff to wait after ``attempt`` failed attempts (>= 1).

        Grows geometrically from ``base_s``, capped at
        ``max_backoff_s``, with jitter applied last so the cap bounds
        the nominal value (jitter may nudge slightly above it).
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        nominal = min(self.base_s * self.multiplier ** (attempt - 1), self.max_backoff_s)
        if self.jitter_fraction == 0 or nominal == 0:
            return nominal
        return self._rng.jitter(self._stream, nominal, self.jitter_fraction)

    def should_retry(self, attempts_made, started, now):
        """True if another attempt is allowed.

        ``attempts_made`` attempts have already been made; ``started``
        is when the first began.  Deadline accounting is against *now*,
        before the next backoff, so a caller may slightly overshoot the
        deadline by one backoff — matching how real retry loops behave.
        """
        if self.max_attempts is not None and attempts_made >= self.max_attempts:
            return False
        if self.deadline_s is not None and now - started >= self.deadline_s:
            return False
        return True

    def __repr__(self):
        return (
            f"<RetryPolicy base={self.base_s:g}s x{self.multiplier:g} "
            f"cap={self.max_backoff_s:g}s attempts={self.max_attempts} "
            f"deadline={self.deadline_s}>"
        )


#: Spacing used by a bare multi-attempt ``Endpoint.request`` when the
#: caller supplies no policy: quick first retry, doubling, short cap —
#: the per-attempt reply timeout remains the dominant cost.
DEFAULT_REQUEST_RETRY = RetryPolicy(
    base_s=0.1, multiplier=2.0, max_backoff_s=2.0, max_attempts=None
)
