"""Network messages.

A :class:`Message` is the unit of transfer on the simulated fabric.
Sizes are explicit (in bytes) because transfer time — not content — is
what the reproduction measures; payloads are ordinary Python objects
and are never serialized for real.
"""

import itertools
from dataclasses import dataclass, field

_message_counter = itertools.count(1)

# Fixed per-message framing overhead, roughly Ethernet + IP + UDP
# headers plus the Legion message header.  Charged on every transfer so
# that zero-payload control messages still cost wire time.
HEADER_BYTES = 128


def next_message_id():
    """Return a fresh globally unique message id."""
    return next(_message_counter)


@dataclass(frozen=True, slots=True)
class ManagerTerm:
    """A fencing token for management traffic.

    ``scope`` names the coordination domain (for DCDO traffic, the
    managed type name) and ``number`` is the monotonically increasing
    term of the coordinator that stamped the message.  Receivers track
    the highest number seen per scope and reject anything lower, so a
    deposed primary that heals from a partition cannot disturb state a
    newer primary already owns.
    """

    scope: str
    number: int

    def __repr__(self):
        return f"<ManagerTerm {self.scope}#{self.number}>"


@dataclass(slots=True)
class Message:
    """A single message in flight on the network.

    Attributes
    ----------
    source:
        Address string of the sending endpoint.
    destination:
        Address string of the receiving endpoint.
    payload:
        Arbitrary Python object carried by the message.
    size_bytes:
        Logical payload size used for transmission-time accounting.
    kind:
        Free-form tag (``"request"``, ``"reply"``, ``"oneway"``) used by
        the transport layer and by fault-injection predicates.
    correlation_id:
        For replies, the id of the request being answered.
    term:
        Optional :class:`ManagerTerm` fencing token.  ``None`` (the
        default) means unfenced traffic; receivers skip the term check.
    """

    source: str
    destination: str
    payload: object
    size_bytes: int = 0
    kind: str = "oneway"
    correlation_id: int = 0
    term: object = None
    message_id: int = field(default_factory=next_message_id)

    def __post_init__(self):
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")

    @property
    def wire_bytes(self):
        """Bytes that occupy the wire: payload plus framing overhead."""
        return self.size_bytes + HEADER_BYTES

    def reply_to(self, payload, size_bytes=0, kind="reply"):
        """Build a reply message addressed back to this message's sender."""
        return Message(
            source=self.destination,
            destination=self.source,
            payload=payload,
            size_bytes=size_bytes,
            kind=kind,
            correlation_id=self.message_id,
        )

    def __repr__(self):
        return (
            f"<Message #{self.message_id} {self.kind} "
            f"{self.source}->{self.destination} {self.size_bytes}B>"
        )
