"""Reliable request/reply transport over the datagram fabric.

An :class:`Endpoint` binds an address on the fabric, runs a receive
loop, and offers:

- ``send(...)`` — one-way datagram;
- ``request(...)`` — request/reply with per-attempt timeout and bounded
  retries (both generators to be driven with ``yield from``).

Request handlers are generators, so servicing a request can itself
perform simulated work and nested calls.  Remote exceptions propagate
back to the caller as :class:`RemoteError`.
"""

from collections import OrderedDict

from repro.net.message import Message
from repro.net.retry import DEFAULT_REQUEST_RETRY
from repro.sim.errors import SimulationError


class TransportError(SimulationError):
    """Base class for transport-level failures."""


class RequestTimeout(TransportError):
    """No reply arrived within the allotted attempts.

    Carries the destination address and total time spent so callers
    (e.g. the binding layer) can account rebinding cost.
    """

    def __init__(self, destination, attempts, elapsed):
        super().__init__(f"no reply from {destination!r} after {attempts} attempt(s) ({elapsed:.3f}s)")
        self.destination = destination
        self.attempts = attempts
        self.elapsed = elapsed


class RemoteError(TransportError):
    """The remote handler raised; carries the original exception."""

    def __init__(self, destination, cause):
        super().__init__(f"remote error from {destination!r}: {cause!r}")
        self.destination = destination
        self.cause = cause


class _ErrorReply:
    """Wire marker distinguishing an error reply from a value reply."""

    __slots__ = ("cause",)

    def __init__(self, cause):
        self.cause = cause


class Endpoint:
    """A transport endpoint bound to one fabric address.

    Parameters
    ----------
    network:
        The :class:`~repro.net.fabric.Network` to attach to.
    address:
        Unique address string for this endpoint.
    request_handler:
        Optional generator function ``handler(message)`` driven for
        each inbound request; its return value becomes the reply
        payload.  It may return ``(payload, size_bytes)`` to charge a
        reply size.
    default_timeout_s:
        Per-attempt reply timeout for :meth:`request`.
    max_attempts:
        Number of send attempts before :class:`RequestTimeout`.
    retry_policy:
        Spacing between attempts of a multi-attempt :meth:`request`
        (defaults to :data:`~repro.net.retry.DEFAULT_REQUEST_RETRY`);
        its attempt/deadline limits are not consulted — the request's
        own ``max_attempts`` bounds the loop.
    dedupe_ttl_s:
        How long a served request id is remembered for duplicate
        suppression after its reply went out.  Entries are evicted
        lazily so the table stays bounded under heavy traffic.
    """

    #: Hard cap on remembered request ids; beyond it the oldest
    #: completed entries are evicted even if their TTL has not expired.
    SEEN_REQUEST_LIMIT = 4096

    def __init__(
        self,
        network,
        address,
        request_handler=None,
        oneway_handler=None,
        default_timeout_s=5.0,
        max_attempts=1,
        retry_policy=None,
        dedupe_ttl_s=60.0,
    ):
        self._network = network
        self._sim = network.sim
        self._address = address
        self._port = network.attach(address)
        self._request_handler = request_handler
        self._oneway_handler = oneway_handler
        self._default_timeout_s = default_timeout_s
        self._max_attempts = max_attempts
        self._retry_policy = retry_policy or DEFAULT_REQUEST_RETRY
        self._dedupe_ttl_s = dedupe_ttl_s
        self._pending_replies = {}
        # message_id -> completion time (None while still being served);
        # insertion-ordered so TTL/size eviction walks the oldest first.
        self._seen_requests = OrderedDict()
        self._closed = False
        self.requests_served = 0
        network.register_endpoint(self)
        self._receive_loop = self._sim.spawn(self._run(), name=f"endpoint:{address}")

    @property
    def address(self):
        """This endpoint's fabric address."""
        return self._address

    @property
    def network(self):
        """The fabric this endpoint is attached to."""
        return self._network

    @property
    def sim(self):
        """The owning simulator."""
        return self._sim

    @property
    def is_closed(self):
        """True after :meth:`close`."""
        return self._closed

    def set_request_handler(self, handler):
        """Install (or replace) the inbound request handler."""
        self._request_handler = handler

    def set_oneway_handler(self, handler):
        """Install (or replace) the inbound one-way handler."""
        self._oneway_handler = handler

    def close(self):
        """Detach from the fabric; all later traffic to us is lost."""
        if self._closed:
            return
        self._closed = True
        self._network.unregister_endpoint(self)
        self._network.detach(self._address)
        if self._receive_loop.is_alive:
            self._receive_loop.interrupt("endpoint closed")
        # Fail callers still waiting on replies: their peer is us, and
        # we are gone, so the wait could otherwise dangle forever.
        pending, self._pending_replies = self._pending_replies, {}
        for event in pending.values():
            if not event.triggered:
                event.fail(TransportError(f"endpoint {self._address!r} closed"))

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, destination, payload, size_bytes=0, kind="oneway"):
        """Fire-and-forget datagram; returns the fabric delivery process."""
        if self._closed:
            raise TransportError(f"endpoint {self._address!r} is closed")
        message = Message(
            source=self._address,
            destination=destination,
            payload=payload,
            size_bytes=size_bytes,
            kind=kind,
        )
        return self._network.send(message)

    def request(
        self,
        destination,
        payload,
        size_bytes=0,
        timeout_s=None,
        max_attempts=None,
        retry_policy=None,
    ):
        """Generator: send a request and wait for its reply.

        Usage from a process::

            reply = yield from endpoint.request("other", {"op": "ping"})

        Retries up to ``max_attempts`` times with a fresh message per
        attempt (the correlation table accepts a reply to any attempt);
        attempts after the first are spaced by the retry policy's
        backoff, so a fleet of timed-out callers does not re-fire in
        lockstep.  Raises :class:`RequestTimeout` when attempts are
        exhausted and :class:`RemoteError` when the remote handler
        raised.
        """
        if self._closed:
            raise TransportError(f"endpoint {self._address!r} is closed")
        timeout_s = self._default_timeout_s if timeout_s is None else timeout_s
        max_attempts = self._max_attempts if max_attempts is None else max_attempts
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        policy = retry_policy or self._retry_policy
        started = self._sim.now
        for attempt in range(1, max_attempts + 1):
            if self._closed:
                # Closed while backing off (e.g. our host crashed).
                raise TransportError(f"endpoint {self._address!r} is closed")
            message = Message(
                source=self._address,
                destination=destination,
                payload=payload,
                size_bytes=size_bytes,
                kind="request",
            )
            reply_event = self._sim.event(name=f"reply#{message.message_id}")
            self._pending_replies[message.message_id] = reply_event
            self._network.send(message)
            timeout = self._sim.timeout(timeout_s)
            from repro.sim.events import AnyOf

            outcome = yield AnyOf(self._sim, [reply_event, timeout])
            self._pending_replies.pop(message.message_id, None)
            if reply_event in outcome:
                reply = outcome[reply_event]
                if isinstance(reply.payload, _ErrorReply):
                    raise RemoteError(destination, reply.payload.cause)
                return reply.payload
            if attempt < max_attempts:
                self._network.count("retry.request_attempts")
                backoff = policy.backoff_s(attempt)
                if backoff > 0:
                    self._network.count("retry.backoff_waits")
                    yield self._sim.timeout(backoff)
        raise RequestTimeout(destination, max_attempts, self._sim.now - started)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def _run(self):
        from repro.sim.errors import Interrupt

        try:
            while True:
                message = yield self._port.inbox.get()
                if message.kind == "reply":
                    self._handle_reply(message)
                elif message.kind == "request":
                    self._sim.spawn(
                        self._serve_request(message),
                        name=f"serve#{message.message_id}",
                    )
                else:
                    self._handle_oneway(message)
        except Interrupt:
            return

    def _handle_reply(self, message):
        event = self._pending_replies.pop(message.correlation_id, None)
        if event is not None and not event.triggered:
            event.succeed(message)
        # Replies to abandoned (timed-out) requests are dropped, which
        # is exactly the at-most-once behaviour the binding layer
        # depends on for its stale-binding timings.

    def _handle_oneway(self, message):
        if self._oneway_handler is None:
            return
        result = self._oneway_handler(message)
        if result is not None and hasattr(result, "__next__"):
            self._sim.spawn(result, name=f"oneway#{message.message_id}")

    def _serve_request(self, message):
        if message.message_id in self._seen_requests:
            # Duplicate of a request we served or are still serving (a
            # retry racing our reply); at-most-once execution drops it.
            self._network.count("transport.duplicate_requests")
            return
        self._evict_seen_requests()
        self._seen_requests[message.message_id] = None
        if self._request_handler is None:
            self._reply(message, _ErrorReply(TransportError("no request handler")))
            return
        try:
            result = yield from self._request_handler(message)
        except Exception as exc:  # noqa: BLE001 - marshalled to caller
            self._reply(message, _ErrorReply(exc))
            return
        payload, reply_size = result if isinstance(result, tuple) else (result, 0)
        if self._reply(message, payload, size_bytes=reply_size):
            self.requests_served += 1

    def _reply(self, message, payload, size_bytes=0):
        """Send a reply unless we closed mid-service; True if it went out.

        A crashed/closed endpoint must not keep talking from a detached
        address — the fabric would reject the unknown source.  The
        served-request id stays remembered either way, stamped with the
        completion time so TTL eviction can reclaim it.
        """
        if message.message_id in self._seen_requests:
            self._seen_requests[message.message_id] = self._sim.now
        if self._closed:
            return False
        self._network.send(message.reply_to(payload, size_bytes=size_bytes))
        return True

    def _evict_seen_requests(self):
        """Drop remembered request ids that are expired or over the cap.

        Entries are insertion-ordered and only completed entries (a
        non-``None`` completion time) are evictable; an in-flight entry
        halts the walk since everything after it is newer.
        """
        now = self._sim.now
        while self._seen_requests:
            done = next(iter(self._seen_requests.values()))
            if done is None:
                break
            expired = now - done > self._dedupe_ttl_s
            over_cap = len(self._seen_requests) >= self.SEEN_REQUEST_LIMIT
            if not (expired or over_cap):
                break
            self._seen_requests.popitem(last=False)

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return f"<Endpoint {self._address} {state}>"
