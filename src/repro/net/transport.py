"""Reliable request/reply transport over the datagram fabric.

An :class:`Endpoint` binds an address on the fabric, runs a receive
loop, and offers:

- ``send(...)`` — one-way datagram;
- ``request(...)`` — request/reply with per-attempt timeout and bounded
  retries (both generators to be driven with ``yield from``);
- the group-communication primitives ``cast`` / ``broadcast`` /
  ``broadcall`` (om-legion's comm-primitive shape), the latter with a
  bounded in-flight window;
- optional same-destination coalescing: with a flush window configured
  (:meth:`Endpoint.configure_batching`), outbound messages to one
  destination within the window share a single wire message, amortizing
  the per-message framing header and dispatch cost.  Batching is off by
  default so the calibrated §4 timings are untouched.

Request handlers are generators, so servicing a request can itself
perform simulated work and nested calls.  Remote exceptions propagate
back to the caller as :class:`RemoteError`.
"""

from collections import OrderedDict

from repro.net.message import HEADER_BYTES, Message
from repro.net.retry import DEFAULT_REQUEST_RETRY
from repro.sim.errors import SimulationError

#: Per-record framing inside a batch (length prefix + kind tag); what a
#: coalesced sub-message pays instead of a full :data:`HEADER_BYTES`.
BATCH_RECORD_BYTES = 16


def run_windowed(sim, thunks, window):
    """Generator: run generator-thunks with at most ``window`` in flight.

    The shared fan-out engine behind :meth:`Endpoint.broadcall` and the
    manager's windowed evolution waves.  ``thunks`` is a sequence of
    zero-argument callables returning generators; at most ``window`` of
    them execute concurrently, each freed slot immediately pulling the
    next.  Returns a list of ``(ok, value)`` pairs in input order —
    ``(True, result)`` or ``(False, exception)`` — so one slow or
    failing item never hides the others' outcomes.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    thunks = list(thunks)
    results = [None] * len(thunks)
    work = iter(list(enumerate(thunks)))

    def worker():
        for index, thunk in work:
            try:
                value = yield from thunk()
            except Exception as error:  # noqa: BLE001 - reported per item
                results[index] = (False, error)
            else:
                results[index] = (True, value)

    workers = [
        sim.spawn(worker(), name=f"windowed#{slot}")
        for slot in range(min(window, len(thunks)))
    ]
    if workers:
        from repro.sim.events import AllOf

        yield AllOf(sim, workers)
    return results


class TransportError(SimulationError):
    """Base class for transport-level failures."""


class RequestTimeout(TransportError):
    """No reply arrived within the allotted attempts.

    Carries the destination address and total time spent so callers
    (e.g. the binding layer) can account rebinding cost.
    """

    def __init__(self, destination, attempts, elapsed):
        super().__init__(f"no reply from {destination!r} after {attempts} attempt(s) ({elapsed:.3f}s)")
        self.destination = destination
        self.attempts = attempts
        self.elapsed = elapsed


class RemoteError(TransportError):
    """The remote handler raised; carries the original exception."""

    def __init__(self, destination, cause):
        super().__init__(f"remote error from {destination!r}: {cause!r}")
        self.destination = destination
        self.cause = cause


class CircuitOpen(TransportError):
    """An attempt was short-circuited by an open circuit breaker.

    Raised *before* any traffic is sent: the breaker has seen enough
    consecutive failures against the target that another full timeout
    walk would be wasted.  ``retry_at`` is the simulated time at which
    a half-open probe will next be admitted.
    """

    def __init__(self, target, retry_at=None):
        suffix = f"; probe admitted at t={retry_at:.3f}s" if retry_at is not None else ""
        super().__init__(f"circuit open for {target!r}{suffix}")
        self.target = target
        self.retry_at = retry_at


class _ErrorReply:
    """Wire marker distinguishing an error reply from a value reply."""

    __slots__ = ("cause",)

    def __init__(self, cause):
        self.cause = cause


class Endpoint:
    """A transport endpoint bound to one fabric address.

    Parameters
    ----------
    network:
        The :class:`~repro.net.fabric.Network` to attach to.
    address:
        Unique address string for this endpoint.
    request_handler:
        Optional generator function ``handler(message)`` driven for
        each inbound request; its return value becomes the reply
        payload.  It may return ``(payload, size_bytes)`` to charge a
        reply size.
    default_timeout_s:
        Per-attempt reply timeout for :meth:`request`.
    max_attempts:
        Number of send attempts before :class:`RequestTimeout`.
    retry_policy:
        Spacing between attempts of a multi-attempt :meth:`request`
        (defaults to :data:`~repro.net.retry.DEFAULT_REQUEST_RETRY`);
        its attempt/deadline limits are not consulted — the request's
        own ``max_attempts`` bounds the loop.
    dedupe_ttl_s:
        How long a served request id is remembered for duplicate
        suppression after its reply went out.  Entries are evicted
        lazily so the table stays bounded under heavy traffic.
    """

    #: Hard cap on remembered request ids; beyond it the oldest
    #: completed entries are evicted even if their TTL has not expired.
    SEEN_REQUEST_LIMIT = 4096

    def __init__(
        self,
        network,
        address,
        request_handler=None,
        oneway_handler=None,
        default_timeout_s=5.0,
        max_attempts=1,
        retry_policy=None,
        dedupe_ttl_s=60.0,
    ):
        self._network = network
        self._sim = network.sim
        self._address = address
        self._port = network.attach(address)
        self._request_handler = request_handler
        self._oneway_handler = oneway_handler
        self._default_timeout_s = default_timeout_s
        self._max_attempts = max_attempts
        self._retry_policy = retry_policy or DEFAULT_REQUEST_RETRY
        self._dedupe_ttl_s = dedupe_ttl_s
        self._batch_window_s = 0.0
        self._batch_max = 16
        self._batch_queues = {}
        self._pending_replies = {}
        # message_id -> completion time (None while still being served);
        # insertion-ordered so TTL/size eviction walks the oldest first.
        self._seen_requests = OrderedDict()
        self._closed = False
        self.requests_served = 0
        network.register_endpoint(self)
        self._receive_loop = self._sim.spawn(self._run(), name=f"endpoint:{address}")

    @property
    def address(self):
        """This endpoint's fabric address."""
        return self._address

    @property
    def network(self):
        """The fabric this endpoint is attached to."""
        return self._network

    @property
    def sim(self):
        """The owning simulator."""
        return self._sim

    @property
    def is_closed(self):
        """True after :meth:`close`."""
        return self._closed

    def set_request_handler(self, handler):
        """Install (or replace) the inbound request handler."""
        self._request_handler = handler

    def set_oneway_handler(self, handler):
        """Install (or replace) the inbound one-way handler."""
        self._oneway_handler = handler

    def configure_batching(self, flush_window_s, max_batch=16):
        """Enable (or disable) same-destination coalescing.

        With ``flush_window_s > 0``, outbound messages to the same
        destination emitted at the same simulation instant are packed
        into one wire message: one framing header for the whole batch
        plus :data:`BATCH_RECORD_BYTES` per coalesced record.  The
        flush is adaptive — a solitary message goes out immediately (a
        lone request pays no batching latency), while a burst drains
        until its event cascade stops producing, bounded by
        ``max_batch`` messages per batch.  ``flush_window_s`` is
        therefore just the on/off switch (any positive value behaves
        identically); pass ``0`` to turn batching back off.
        """
        if flush_window_s < 0:
            raise ValueError(f"flush window must be >= 0, got {flush_window_s}")
        if max_batch < 2:
            raise ValueError(f"max_batch must be >= 2, got {max_batch}")
        self._batch_window_s = flush_window_s
        self._batch_max = max_batch

    @property
    def batching_enabled(self):
        """True while a coalescing flush window is configured."""
        return self._batch_window_s > 0

    def close(self):
        """Detach from the fabric; all later traffic to us is lost."""
        if self._closed:
            return
        self._closed = True
        # Queued-but-unflushed batches die with us, like any in-flight
        # datagram from a crashing host.
        self._batch_queues.clear()
        self._network.unregister_endpoint(self)
        self._network.detach(self._address)
        if self._receive_loop.is_alive:
            self._receive_loop.interrupt("endpoint closed")
        # Fail callers still waiting on replies: their peer is us, and
        # we are gone, so the wait could otherwise dangle forever.
        pending, self._pending_replies = self._pending_replies, {}
        for event in pending.values():
            if not event.triggered:
                event.fail(TransportError(f"endpoint {self._address!r} closed"))

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, destination, payload, size_bytes=0, kind="oneway"):
        """Fire-and-forget datagram.

        With batching enabled the message may be coalesced into a
        shared wire message; either way delivery is asynchronous and
        nothing is returned to wait on (datagram semantics).
        """
        if self._closed:
            raise TransportError(f"endpoint {self._address!r} is closed")
        message = Message(
            source=self._address,
            destination=destination,
            payload=payload,
            size_bytes=size_bytes,
            kind=kind,
        )
        return self._transmit(message)

    # ------------------------------------------------------------------
    # Same-destination coalescing
    # ------------------------------------------------------------------

    def _transmit(self, message):
        """Put ``message`` on the wire, through the batcher if enabled."""
        if self._batch_window_s <= 0:
            return self._network.send(message)
        queue = self._batch_queues.setdefault(message.destination, [])
        queue.append(message)
        if len(queue) >= self._batch_max:
            self._flush(message.destination)
        elif len(queue) == 1:
            self._sim.spawn(
                self._flush_later(message.destination),
                name=f"flush:{self._address}->{message.destination}",
            )
        return None

    def _flush_later(self, destination):
        """Process body: adaptive flush for one destination's queue.

        Rather than lingering a fixed window (which taxed every lone
        message with the full window of latency), the batcher drains
        the *current simulation instant*: it re-yields zero-length
        timeouts while the queue keeps growing, so all messages emitted
        by the same event cascade — a windowed fan-out firing its
        burst, a batch of replies — coalesce, and a solitary message
        flushes immediately with no added delay.  The size trigger in
        :meth:`_transmit` still bounds bursts at ``max_batch``.
        """
        seen = 0
        while True:
            queue = self._batch_queues.get(destination)
            if not queue:
                # Flushed underneath us by the size trigger.
                return
            if len(queue) == seen:
                break
            seen = len(queue)
            yield self._sim.timeout(0)
        self._flush(destination)

    def _flush(self, destination):
        queue = self._batch_queues.pop(destination, None)
        if not queue or self._closed:
            return
        if len(queue) == 1:
            self._network.send(queue[0])
            return
        # One header for the whole batch; each record pays only its
        # payload plus a small per-record framing cost.
        batch = Message(
            source=self._address,
            destination=destination,
            payload=tuple(queue),
            size_bytes=sum(m.size_bytes for m in queue)
            + len(queue) * BATCH_RECORD_BYTES,
            kind="batch",
        )
        self._network.count("transport.batches_sent")
        self._network.count("transport.batched_messages", len(queue))
        self._network.send(batch)

    # ------------------------------------------------------------------
    # Group primitives (cast / broadcast / broadcall)
    # ------------------------------------------------------------------

    def cast(self, destination, payload, size_bytes=0):
        """One-way message to one peer, no reply expected."""
        self._network.count("transport.casts")
        return self.send(destination, payload, size_bytes=size_bytes)

    def broadcast(self, destinations, payload, size_bytes=0):
        """Cast ``payload`` to every destination; returns the count."""
        count = 0
        for destination in destinations:
            self.cast(destination, payload, size_bytes=size_bytes)
            count += 1
        return count

    def broadcall(
        self,
        destinations,
        payload,
        size_bytes=0,
        timeout_s=None,
        max_attempts=None,
        window=None,
        retry_policy=None,
    ):
        """Generator: request ``payload`` from every destination.

        Requests run concurrently with at most ``window`` in flight
        (default: all at once).  Blocks until every destination has
        answered or exhausted its attempts; returns an ordered mapping
        ``destination -> (ok, value-or-exception)`` so partial failure
        is visible per peer rather than aborting the whole call.
        """
        destinations = list(destinations)
        thunks = [
            lambda d=destination: self.request(
                d,
                payload,
                size_bytes=size_bytes,
                timeout_s=timeout_s,
                max_attempts=max_attempts,
                retry_policy=retry_policy,
            )
            for destination in destinations
        ]
        self._network.count("transport.broadcalls")
        outcomes = yield from run_windowed(
            self._sim, thunks, window or max(1, len(destinations))
        )
        return dict(zip(destinations, outcomes))

    def request(
        self,
        destination,
        payload,
        size_bytes=0,
        timeout_s=None,
        max_attempts=None,
        retry_policy=None,
        term=None,
        hedge_delay_s=None,
    ):
        """Generator: send a request and wait for its reply.

        Usage from a process::

            reply = yield from endpoint.request("other", {"op": "ping"})

        Retries up to ``max_attempts`` times with a fresh message per
        attempt (the correlation table accepts a reply to any attempt);
        attempts after the first are spaced by the retry policy's
        backoff, so a fleet of timed-out callers does not re-fire in
        lockstep.  Raises :class:`RequestTimeout` when attempts are
        exhausted and :class:`RemoteError` when the remote handler
        raised.

        With ``hedge_delay_s`` set (below the attempt timeout), an
        attempt still unanswered after that delay sends a *backup* copy
        with a fresh message id and races both replies for the rest of
        the timeout — Dean's hedged request.  The backup is a real
        second request, so it only belongs on idempotent operations;
        a fresh id (rather than a dedupe-suppressed duplicate) is
        deliberate, because a gray peer's problem is slowness, not
        loss, and only an independently-executed copy cuts that tail.
        """
        if self._closed:
            raise TransportError(f"endpoint {self._address!r} is closed")
        timeout_s = self._default_timeout_s if timeout_s is None else timeout_s
        max_attempts = self._max_attempts if max_attempts is None else max_attempts
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if hedge_delay_s is not None and hedge_delay_s >= timeout_s:
            hedge_delay_s = None
        policy = retry_policy or self._retry_policy
        network = self._network
        started = self._sim.now
        from repro.sim.events import AnyOf

        for attempt in range(1, max_attempts + 1):
            if self._closed:
                # Closed while backing off (e.g. our host crashed).
                raise TransportError(f"endpoint {self._address!r} is closed")
            message = Message(
                source=self._address,
                destination=destination,
                payload=payload,
                size_bytes=size_bytes,
                kind="request",
                term=term,
            )
            reply_event = self._sim.event(name=f"reply#{message.message_id}")
            self._pending_replies[message.message_id] = reply_event
            self._transmit(message)
            hedge_event = None
            if hedge_delay_s is None:
                timeout = self._sim.timeout(timeout_s)
                outcome = yield AnyOf(self._sim, [reply_event, timeout])
            else:
                hedge_timer = self._sim.timeout(hedge_delay_s)
                outcome = yield AnyOf(self._sim, [reply_event, hedge_timer])
                if reply_event in outcome:
                    hedge_timer.cancel()
                    timeout = hedge_timer  # only for the shared cancel below
                else:
                    # Primary is late: race a backup copy against it for
                    # the remainder of the attempt budget.
                    backup = Message(
                        source=self._address,
                        destination=destination,
                        payload=payload,
                        size_bytes=size_bytes,
                        kind="request",
                        term=term,
                    )
                    hedge_event = self._sim.event(name=f"reply#{backup.message_id}")
                    self._pending_replies[backup.message_id] = hedge_event
                    self._transmit(backup)
                    network.count("transport.hedges")
                    timeout = self._sim.timeout(timeout_s - hedge_delay_s)
                    outcome = yield AnyOf(
                        self._sim, [reply_event, hedge_event, timeout]
                    )
                    self._pending_replies.pop(backup.message_id, None)
            self._pending_replies.pop(message.message_id, None)
            winner = None
            if reply_event in outcome:
                winner = outcome[reply_event]
            elif hedge_event is not None and hedge_event in outcome:
                winner = outcome[hedge_event]
                network.count("transport.hedge_wins")
                network.health_observe(destination, "hedge_win")
            if winner is not None:
                # A reply won the race: cancel the guard timeout so it
                # stops occupying the event queue and keeping run() alive.
                timeout.cancel()
                if isinstance(winner.payload, _ErrorReply):
                    network.health_observe(destination, "success")
                    raise RemoteError(destination, winner.payload.cause)
                network.health_observe(destination, "success")
                return winner.payload
            if attempt < max_attempts:
                network.count("retry.request_attempts")
                backoff = policy.backoff_s(attempt)
                if backoff > 0:
                    network.count("retry.backoff_waits")
                    yield self._sim.timeout(backoff)
        network.health_observe(destination, "timeout")
        raise RequestTimeout(destination, max_attempts, self._sim.now - started)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def _run(self):
        from repro.sim.errors import Interrupt

        try:
            while True:
                message = yield self._port.inbox.get()
                self._dispatch_inbound(message)
        except Interrupt:
            return

    def _dispatch_inbound(self, message):
        if message.kind == "batch":
            # Unpack a coalesced batch: each record is a complete
            # message with its own id, so dedupe and reply correlation
            # behave exactly as if the records had travelled alone.
            self._network.count("transport.batches_received")
            for sub in message.payload:
                self._dispatch_inbound(sub)
        elif message.kind == "reply":
            self._handle_reply(message)
        elif message.kind == "request":
            self._sim.spawn(
                self._serve_request(message),
                name=f"serve#{message.message_id}",
            )
        else:
            self._handle_oneway(message)

    def _handle_reply(self, message):
        event = self._pending_replies.pop(message.correlation_id, None)
        if event is not None and not event.triggered:
            event.succeed(message)
        # Replies to abandoned (timed-out) requests are dropped, which
        # is exactly the at-most-once behaviour the binding layer
        # depends on for its stale-binding timings.

    def _handle_oneway(self, message):
        if self._oneway_handler is None:
            return
        result = self._oneway_handler(message)
        if result is not None and hasattr(result, "__next__"):
            self._sim.spawn(result, name=f"oneway#{message.message_id}")

    def _serve_request(self, message):
        if message.message_id in self._seen_requests:
            # Duplicate of a request we served or are still serving (a
            # retry racing our reply); at-most-once execution drops it.
            self._network.count("transport.duplicate_requests")
            return
        self._evict_seen_requests()
        self._seen_requests[message.message_id] = None
        if self._request_handler is None:
            self._reply(message, _ErrorReply(TransportError("no request handler")))
            return
        try:
            result = yield from self._request_handler(message)
        except Exception as exc:  # noqa: BLE001 - marshalled to caller
            self._reply(message, _ErrorReply(exc))
            return
        payload, reply_size = result if isinstance(result, tuple) else (result, 0)
        if self._reply(message, payload, size_bytes=reply_size):
            self.requests_served += 1

    def _reply(self, message, payload, size_bytes=0):
        """Send a reply unless we closed mid-service; True if it went out.

        A crashed/closed endpoint must not keep talking from a detached
        address — the fabric would reject the unknown source.  The
        served-request id stays remembered either way, stamped with the
        completion time so TTL eviction can reclaim it.
        """
        if message.message_id in self._seen_requests:
            self._seen_requests[message.message_id] = self._sim.now
        if self._closed:
            return False
        self._transmit(message.reply_to(payload, size_bytes=size_bytes))
        return True

    def _evict_seen_requests(self):
        """Drop remembered request ids that are expired or over the cap.

        Entries are insertion-ordered and only completed entries (a
        non-``None`` completion time) are evictable; an in-flight entry
        halts the walk since everything after it is newer.
        """
        now = self._sim.now
        while self._seen_requests:
            done = next(iter(self._seen_requests.values()))
            if done is None:
                break
            expired = now - done > self._dedupe_ttl_s
            over_cap = len(self._seen_requests) >= self.SEEN_REQUEST_LIMIT
            if not (expired or over_cap):
                break
            self._seen_requests.popitem(last=False)

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return f"<Endpoint {self._address} {state}>"
